//! Recovery-path GC regressions: the interaction of disaster recovery
//! (`recover_index_from_cloud`) with session deletion.
//!
//! Two historical bugs are pinned here:
//!
//! 1. Recovery restored the index but left the per-container refcounts
//!    empty, so the first `delete_session` after a recovery panicked on
//!    a missing refcount. Recovery must rebuild refcounts from the
//!    manifests, and a delete on an engine whose GC state is missing
//!    must surface a typed [`BackupError::Corrupt`], never panic.
//! 2. `delete_session` removes index entries in memory but uploads no
//!    fresh snapshot, so a later recovery resurrected the deleted
//!    fingerprints from the stale snapshot; backing up the same data
//!    again then deduplicated against containers that no longer exist —
//!    silently unrestorable sessions. Recovery must reconcile the
//!    snapshot against the live manifests.

use std::sync::Arc;

use aa_dedupe::cloud::{CloudSim, ObjectBackend, ObjectStore, PriceModel, WanModel};
use aa_dedupe::core::{AaDedupe, AaDedupeConfig, BackupError, BackupScheme};
use aa_dedupe::filetype::{MemoryFile, SourceFile};

fn cloud_over(backend: Arc<dyn ObjectBackend>) -> CloudSim {
    CloudSim::with_backend(backend, WanModel::paper_defaults(), PriceModel::s3_april_2011())
}

fn config() -> AaDedupeConfig {
    AaDedupeConfig { index_sync_interval: 1, ..AaDedupeConfig::default() }
}

fn base_files() -> Vec<MemoryFile> {
    vec![
        MemoryFile::new("user/doc/a.doc", b"important words ".repeat(4000)),
        MemoryFile::new("user/pdf/b.pdf", vec![0x42; 120_000]),
        MemoryFile::new("user/txt/note.txt", b"tiny note".to_vec()),
    ]
}

fn changed_files() -> Vec<MemoryFile> {
    let mut files = base_files();
    files[0] = MemoryFile::new("user/doc/a.doc", b"important words ".repeat(4500));
    files.push(MemoryFile::new("user/jpg/new.jpg", vec![9u8; 60_000]));
    files
}

fn backup(engine: &mut AaDedupe, files: &[MemoryFile]) {
    let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
    engine.backup_session(&sources).expect("backup");
}

fn assert_restores_bit_exact(engine: &AaDedupe, session: usize, expect: &[MemoryFile]) {
    let restored = engine.restore_session(session).expect("restore");
    let by_path: std::collections::BTreeMap<_, _> =
        restored.into_iter().map(|f| (f.path, f.data)).collect();
    assert_eq!(by_path.len(), expect.len(), "session {session} file count");
    for f in expect {
        assert_eq!(by_path.get(&f.path), Some(&f.data), "session {session} file {}", f.path);
    }
}

#[test]
fn delete_after_recovery_succeeds() {
    // Regression for bug 1: the recovered engine must be able to delete.
    let inner: Arc<dyn ObjectBackend> = Arc::new(ObjectStore::new());
    let (files, changed) = (base_files(), changed_files());
    {
        let mut e0 = AaDedupe::with_config(cloud_over(Arc::clone(&inner)), config());
        backup(&mut e0, &files);
        backup(&mut e0, &changed);
    }
    // Disaster recovery onto a blank engine, then delete the old session.
    let mut e = AaDedupe::with_config(cloud_over(Arc::clone(&inner)), config());
    e.recover_index_from_cloud().expect("recover");
    e.delete_session(0).expect("delete after recovery must not panic or fail");
    assert!(e.restore_session(0).is_err(), "session 0 is gone");
    assert_restores_bit_exact(&e, 1, &changed);
    // The shared chunks' containers survived the delete's sweep.
    assert!(!inner.list("aa-dedupe/containers/").is_empty());
}

#[test]
fn delete_without_gc_state_is_a_typed_error_not_a_panic() {
    // A blank engine pointed at a populated repository has no refcounts.
    // Deleting through it must refuse with Corrupt — the alternative was
    // a panic (historically) or silently corrupting shared containers.
    let inner: Arc<dyn ObjectBackend> = Arc::new(ObjectStore::new());
    let files = base_files();
    {
        let mut e0 = AaDedupe::with_config(cloud_over(Arc::clone(&inner)), config());
        backup(&mut e0, &files);
    }
    let mut blank = AaDedupe::with_config(cloud_over(Arc::clone(&inner)), config());
    let err = blank.delete_session(0).expect_err("no GC state");
    assert!(matches!(err, BackupError::Corrupt(_)), "{err:?}");
    // The refusal happened before the un-commit point: the session is
    // fully intact and restorable through a properly opened engine.
    let e = AaDedupe::open(cloud_over(Arc::clone(&inner)), config()).expect("open");
    assert_restores_bit_exact(&e, 0, &files);
}

#[test]
fn recovery_does_not_resurrect_deleted_fingerprints() {
    // Regression for bug 2: backup -> delete -> recover -> backup the
    // same data again -> restore must be bit-exact. With a stale-snapshot
    // recovery the second backup dedups against deleted containers and
    // the restore fails.
    let inner: Arc<dyn ObjectBackend> = Arc::new(ObjectStore::new());
    let files = base_files();
    {
        let mut e0 = AaDedupe::with_config(cloud_over(Arc::clone(&inner)), config());
        backup(&mut e0, &files);
        // An extra session so a manifest (and its index snapshot) remains
        // after the delete — the resurrection scenario needs a snapshot
        // that still lists session 0's fingerprints.
        backup(&mut e0, &changed_files());
        e0.delete_session(0).expect("delete");
    }
    let mut e = AaDedupe::with_config(cloud_over(Arc::clone(&inner)), config());
    e.recover_index_from_cloud().expect("recover");
    // Back up the *same* data the deleted session held. Every chunk the
    // recovered index remembers must point at a container that exists.
    backup(&mut e, &files);
    let session = e.sessions_completed() - 1;
    assert_restores_bit_exact(&e, session, &files);

    // And a fully fresh engine (no shared in-memory state) agrees.
    let verifier = AaDedupe::open(cloud_over(Arc::clone(&inner)), config()).expect("open");
    assert_restores_bit_exact(&verifier, session, &files);
}

#[test]
fn recovery_rebuilds_refcounts_that_match_open() {
    // The refcounts recovery rebuilds must agree with what a fresh `open`
    // computes from the same cloud state: deleting every session through
    // the recovered engine reclaims every container.
    let inner: Arc<dyn ObjectBackend> = Arc::new(ObjectStore::new());
    {
        let mut e0 = AaDedupe::with_config(cloud_over(Arc::clone(&inner)), config());
        backup(&mut e0, &base_files());
        backup(&mut e0, &changed_files());
    }
    let mut e = AaDedupe::with_config(cloud_over(Arc::clone(&inner)), config());
    e.recover_index_from_cloud().expect("recover");
    e.delete_session(0).expect("delete 0");
    e.delete_session(1).expect("delete 1");
    let leftover = inner.list("aa-dedupe/containers/");
    assert!(leftover.is_empty(), "leaked containers: {leftover:?}");
}
