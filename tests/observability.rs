//! Integration tests for the observability subsystem wired through the
//! engine: stage stats must reconcile with `SessionReport` aggregates,
//! `dedup_cpu` must equal the sum of its stage parts, and turning the
//! recorder on must not perturb serial↔parallel determinism.

use std::collections::BTreeMap;
use std::sync::Arc;

use aa_dedupe::cloud::CloudSim;
use aa_dedupe::core::{AaDedupe, AaDedupeConfig, BackupScheme, PipelineConfig, PipelineMode};
use aa_dedupe::metrics::SessionReport;
use aa_dedupe::obs::{Counter, Recorder, Snapshot as ObsSnapshot, Stage};
use aa_dedupe::workload::{DatasetSpec, Generator, Snapshot};

fn config(workers: usize, serial: bool, recorder: Option<Arc<Recorder>>) -> AaDedupeConfig {
    let mode = if serial { PipelineMode::Serial } else { PipelineMode::Parallel };
    let mut config = AaDedupeConfig {
        pipeline: PipelineConfig { workers, queue_depth: 4, mode },
        ..AaDedupeConfig::default()
    };
    if let Some(rec) = recorder {
        config.recorder = rec;
    }
    config
}

fn dataset(sessions: usize) -> Vec<Snapshot> {
    let mut generator = Generator::new(DatasetSpec::tiny_test(), 77);
    (0..sessions).map(|w| generator.snapshot(w)).collect()
}

fn run(config: AaDedupeConfig, snaps: &[Snapshot]) -> (AaDedupe, Vec<SessionReport>) {
    let mut engine = AaDedupe::with_config(CloudSim::with_paper_defaults(), config);
    let reports = snaps
        .iter()
        .map(|s| engine.backup_session(&s.as_sources()).expect("backup"))
        .collect();
    (engine, reports)
}

/// Stage stats and per-AppType hit/miss counters must reconcile with the
/// session report, on both engine paths.
#[test]
fn stage_stats_reconcile_with_session_report() {
    for serial in [true, false] {
        let rec = Recorder::shared();
        let snaps = dataset(2);
        let (_, reports) = run(config(4, serial, Some(Arc::clone(&rec))), &snaps);
        let snap = rec.snapshot();
        let label = if serial { "serial" } else { "parallel" };

        // The hot pipeline stages all measured real work.
        for stage in [Stage::Classify, Stage::Chunk, Stage::Hash, Stage::Index, Stage::Upload] {
            assert!(snap.stage(stage).hist.count > 0, "{label}: stage {} idle", stage.name());
        }

        // Lifetime identities across both sessions. Every non-tiny chunk
        // does exactly one index lookup; hits split into duplicate chunks
        // minus tiny files carried forward by the packer (which count as
        // duplicates in the report but never touch the index).
        let chunks: u64 = reports.iter().map(|r| r.chunks_total).sum();
        let dups: u64 = reports.iter().map(|r| r.chunks_duplicate).sum();
        let tiny: u64 = reports.iter().map(|r| r.files_tiny).sum();
        let files: u64 = reports.iter().map(|r| r.files_total).sum();
        assert_eq!(
            snap.index_hits() + snap.index_misses(),
            chunks - tiny,
            "{label}: lookups vs chunks"
        );
        assert_eq!(
            snap.index_hits(),
            dups - snap.counter(Counter::TinyCarried),
            "{label}: hits vs duplicates"
        );
        assert_eq!(snap.counter(Counter::FilesClassified), files, "{label}: files");
        // Unchanged tiny files are carried forward by reference, not
        // re-packed: packed + carried covers every tiny sighting.
        assert_eq!(
            snap.counter(Counter::TinyPacked) + snap.counter(Counter::TinyCarried),
            tiny,
            "{label}: tiny packed+carried"
        );
        let chunk_count = snap.counter(Counter::ChunksCdc)
            + snap.counter(Counter::ChunksSc)
            + snap.counter(Counter::ChunksWfc);
        assert_eq!(chunk_count, chunks - tiny, "{label}: chunker output");
        assert_eq!(
            snap.counter(Counter::IndexDiskProbes),
            reports.iter().map(|r| r.index_disk_reads).sum::<u64>(),
            "{label}: disk probes"
        );
        assert_eq!(
            snap.counter(Counter::UploadBytes),
            reports.iter().map(|r| r.transferred_bytes).sum::<u64>(),
            "{label}: uploaded bytes"
        );
    }
}

/// With the recorder on, `dedup_cpu` is defined as the sum of the stage
/// parts — exactly, not approximately.
#[test]
fn dedup_cpu_is_sum_of_stage_parts() {
    let rec = Recorder::shared();
    let snaps = dataset(2);
    let (_, reports) = run(config(2, false, Some(rec)), &snaps);
    for r in &reports {
        let stage = r.stage_cpu.unwrap_or_else(|| panic!("session {}: no stage_cpu", r.session));
        assert_eq!(r.dedup_cpu, stage.total(), "session {}", r.session);
        assert!(stage.source_read > std::time::Duration::ZERO, "session {}", r.session);
        assert!(stage.chunk + stage.hash > std::time::Duration::ZERO, "session {}", r.session);
    }
}

/// With the default (disabled) recorder nothing is recorded and the report
/// keeps the legacy clock-derived `dedup_cpu`.
#[test]
fn disabled_recorder_records_nothing() {
    let rec = Recorder::shared_disabled();
    let snaps = dataset(1);
    let (_, reports) = run(config(2, false, Some(Arc::clone(&rec))), &snaps);
    assert!(reports[0].stage_cpu.is_none());
    assert!(!reports[0].dedup_cpu.is_zero(), "legacy clock still charges time");
    let snap = rec.snapshot();
    for stage in Stage::ALL {
        assert_eq!(snap.stage(stage).hist.count, 0, "stage {}", stage.name());
    }
    assert_eq!(snap.counter(Counter::FilesClassified), 0);
    assert_eq!(snap.index_hits() + snap.index_misses(), 0);
}

/// Everything deterministic about the cloud state, with observability ON
/// for both engines. Recording must never influence chunking, dedup
/// decisions, packing or upload order.
#[test]
fn differential_serial_parallel_with_observability_enabled() {
    fn observe(config: AaDedupeConfig, snaps: &[Snapshot]) -> BTreeMap<String, Vec<u8>> {
        let (engine, _) = run(config, snaps);
        let store = engine.cloud().store();
        store.list("").into_iter().map(|k| {
            let bytes = store.get(&k).unwrap().expect("listed key present");
            (k, bytes)
        }).collect()
    }
    let snaps = dataset(2);
    let serial = observe(config(1, true, Some(Recorder::shared())), &snaps);
    for workers in [1, 4] {
        let parallel = observe(config(workers, false, Some(Recorder::shared())), &snaps);
        assert_eq!(serial.len(), parallel.len(), "workers={workers}: object count");
        for (key, bytes) in &serial {
            assert_eq!(bytes, &parallel[key], "workers={workers}: cloud object {key}");
        }
    }
}

/// Per-session deltas: a second snapshot minus the first must describe
/// exactly the second session's work.
#[test]
fn snapshot_delta_isolates_a_session() {
    let rec = Recorder::shared();
    let snaps = dataset(2);
    let mut engine =
        AaDedupe::with_config(CloudSim::with_paper_defaults(), config(1, true, Some(Arc::clone(&rec))));
    engine.backup_session(&snaps[0].as_sources()).expect("backup 0");
    let mid: ObsSnapshot = rec.snapshot();
    let r1 = engine.backup_session(&snaps[1].as_sources()).expect("backup 1");
    let delta = rec.snapshot().delta_since(&mid);
    assert_eq!(delta.counter(Counter::FilesClassified), r1.files_total);
    assert_eq!(delta.counter(Counter::UploadBytes), r1.transferred_bytes);
    assert_eq!(
        delta.index_hits() + delta.index_misses(),
        r1.chunks_total - r1.files_tiny
    );
}
