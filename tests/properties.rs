//! Property-based integration tests (proptest) over the public API.

use proptest::prelude::*;

use aa_dedupe::baselines::all_schemes;
use aa_dedupe::chunking::{spans_cover, CdcChunker, Chunker, ScChunker, WfcChunker};
use aa_dedupe::cloud::CloudSim;
use aa_dedupe::filetype::{MemoryFile, SourceFile};
use aa_dedupe::hashing::{Fingerprint, HashAlgorithm};

/// Strategy: a small file with a path whose extension picks an app type,
/// and content with some internal repetition (so dedup paths are hit).
fn arb_file() -> impl Strategy<Value = MemoryFile> {
    let ext = prop_oneof![
        Just("txt"),
        Just("doc"),
        Just("pdf"),
        Just("mp3"),
        Just("vmdk"),
        Just("zzz"),
    ];
    (
        "[a-z]{1,8}",
        ext,
        proptest::collection::vec(any::<u8>(), 0..4096),
        1u8..6,
    )
        .prop_map(|(stem, ext, unit, reps)| {
            let mut data = Vec::with_capacity(unit.len() * reps as usize);
            for _ in 0..reps {
                data.extend_from_slice(&unit);
            }
            MemoryFile::new(format!("user/{stem}.{ext}"), data)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// restore(backup(x)) == x, for every scheme, on arbitrary file sets.
    #[test]
    fn backup_restore_identity_all_schemes(
        files in proptest::collection::vec(arb_file(), 1..8),
        scheme_index in 0usize..5,
    ) {
        // Paths must be unique or the manifest legitimately keeps both.
        let mut files = files;
        files.sort_by(|a, b| a.path.cmp(&b.path));
        files.dedup_by(|a, b| a.path == b.path);

        let cloud = CloudSim::with_paper_defaults();
        let mut scheme = all_schemes(&cloud).remove(scheme_index);
        let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
        scheme.backup_session(&sources).expect("backup");
        let restored = scheme.restore_session(0).expect("restore");
        prop_assert_eq!(restored.len(), files.len());
        for (orig, rest) in files.iter().zip(&restored) {
            prop_assert_eq!(&orig.path, &rest.path);
            prop_assert_eq!(&orig.data, &rest.data);
        }
    }

    /// Two sessions of the same data never store new bytes the second time
    /// for dedup schemes (index 1..=4: BackupPC, Avamar, SAM, AA-Dedupe —
    /// except AA-Dedupe's unindexed tiny files, excluded by sizing).
    #[test]
    fn second_session_stores_nothing_new(
        files in proptest::collection::vec(arb_file(), 1..6),
        scheme_index in 1usize..5,
    ) {
        let mut files = files;
        files.sort_by(|a, b| a.path.cmp(&b.path));
        files.dedup_by(|a, b| a.path == b.path);
        // Pad every file above the 10 KiB tiny threshold.
        for f in &mut files {
            while f.data.len() < 11 * 1024 {
                let extension: Vec<u8> = f.data.iter().copied().chain([7u8]).collect();
                f.data.extend_from_slice(&extension);
            }
            *f = MemoryFile::new(f.path.clone(), f.data.clone());
        }
        let cloud = CloudSim::with_paper_defaults();
        let mut scheme = all_schemes(&cloud).remove(scheme_index);
        let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
        scheme.backup_session(&sources).expect("s0");
        let r1 = scheme.backup_session(&sources).expect("s1");
        prop_assert_eq!(r1.stored_bytes, 0, "scheme {}", scheme.name());
    }

    /// All three chunkers exactly tile arbitrary inputs.
    #[test]
    fn chunkers_tile_arbitrary_input(data in proptest::collection::vec(any::<u8>(), 0..100_000)) {
        let chunkers: [&dyn Chunker; 3] = [
            &WfcChunker::new(),
            &ScChunker::new(8 * 1024),
            &CdcChunker::default(),
        ];
        for c in chunkers {
            let spans = c.chunk(&data);
            prop_assert!(spans_cover(&data, &spans), "{:?}", c.method());
        }
    }

    /// CDC respects min/max bounds on arbitrary input (final chunk exempt
    /// from the minimum).
    #[test]
    fn cdc_bounds_hold(data in proptest::collection::vec(any::<u8>(), 0..200_000)) {
        let cdc = CdcChunker::default();
        let spans = cdc.chunk(&data);
        for (i, s) in spans.iter().enumerate() {
            prop_assert!(s.len <= cdc.params().max_size);
            if i + 1 < spans.len() {
                prop_assert!(s.len >= cdc.params().min_size);
            }
        }
    }

    /// Fingerprints are deterministic and algorithm-tagged.
    #[test]
    fn fingerprint_determinism(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        for algo in [HashAlgorithm::Rabin96, HashAlgorithm::Md5, HashAlgorithm::Sha1] {
            let a = Fingerprint::compute(algo, &data);
            let b = Fingerprint::compute(algo, &data);
            prop_assert_eq!(a, b);
            prop_assert_eq!(a.algorithm(), algo);
            prop_assert_eq!(a.digest().len(), algo.digest_len());
            // Encode/decode round-trips.
            let mut buf = Vec::new();
            a.encode(&mut buf);
            let (decoded, used) = Fingerprint::decode(&buf).expect("decodes");
            prop_assert_eq!(decoded, a);
            prop_assert_eq!(used, buf.len());
        }
    }

    /// A single byte flip anywhere changes every digest.
    #[test]
    fn fingerprints_detect_single_bit_damage(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        idx in 0usize..2048,
        bit in 0u8..8,
    ) {
        let idx = idx % data.len();
        let mut mutated = data.clone();
        mutated[idx] ^= 1 << bit;
        for algo in [HashAlgorithm::Rabin96, HashAlgorithm::Md5, HashAlgorithm::Sha1] {
            prop_assert_ne!(
                Fingerprint::compute(algo, &data),
                Fingerprint::compute(algo, &mutated),
                "{:?} missed a bit flip at {}:{}", algo, idx, bit
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Compaction + relocation preserves every live `(fingerprint, bytes)`
    /// pair — the invariant the vacuum pass stakes restores on. For every
    /// sealed container and every liveness subset: survivors keep their
    /// original order, `moves[i]` describes exactly the `i`-th surviving
    /// descriptor (the zip vacuum's relocation map relies on, duplicate
    /// fingerprints included), the rewritten bytes verify, and a
    /// container with no live chunk compacts to `None`.
    #[test]
    fn compaction_preserves_live_fingerprint_bytes_pairs(
        chunks in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..600), any::<bool>()),
            1..24,
        ),
    ) {
        use aa_dedupe::container::{compact_container, ContainerStore, ParsedContainer};
        use std::collections::BTreeSet;

        let mut store = ContainerStore::new(4096);
        let mut live_fps: BTreeSet<Fingerprint> = BTreeSet::new();
        for (data, live) in &chunks {
            let fp = Fingerprint::compute(HashAlgorithm::Sha1, data);
            // Duplicate contents are appended as duplicate descriptors on
            // purpose (the tiny stream skips dedup); liveness is by
            // fingerprint, so a duplicate marked live anywhere is live.
            store.add_chunk(0, fp, data);
            if *live {
                live_fps.insert(fp);
            }
        }
        store.seal_all();
        for sealed in store.drain_sealed() {
            let parsed = ParsedContainer::parse(&sealed.bytes).expect("own container parses");
            let survivors: Vec<_> = parsed
                .descriptors
                .iter()
                .filter(|d| live_fps.contains(&d.fingerprint))
                .collect();
            let compacted =
                compact_container(&parsed, &|fp| live_fps.contains(fp), 999, 4096);
            let Some((bytes, moves)) = compacted else {
                prop_assert!(survivors.is_empty(), "live chunks dropped entirely");
                continue;
            };
            prop_assert!(!survivors.is_empty(), "a dead container must compact to None");
            prop_assert_eq!(moves.len(), survivors.len());
            let rewritten = ParsedContainer::parse(&bytes).expect("rewritten parses");
            rewritten.verify().expect("rewritten verifies");
            prop_assert_eq!(rewritten.container_id, 999);
            prop_assert_eq!(rewritten.descriptors.len(), survivors.len());
            for (i, (survivor, (fp, placement))) in
                survivors.iter().zip(&moves).enumerate()
            {
                prop_assert_eq!(survivor.fingerprint, *fp, "survivor {} fingerprint", i);
                prop_assert_eq!(placement.container, 999);
                let d = &rewritten.descriptors[i];
                prop_assert_eq!(d.fingerprint, *fp);
                prop_assert_eq!(d.offset, placement.offset);
                prop_assert_eq!(
                    rewritten.chunk_bytes(d),
                    parsed.chunk_bytes(survivor),
                    "survivor {} bytes moved intact", i
                );
            }
        }
    }
}
