//! Differential test: the pipelined bounded-memory restore engine must be
//! observationally identical to the serial restore oracle.
//!
//! For a fixed manifest, `restore_session_pipelined` with any worker
//! count and any cache capacity must return — bit for bit — the same
//! files in the same order as `restore_session`, and `restore_file` must
//! match the corresponding entry. This is the restore determinism
//! contract of DESIGN.md §11; any scheduling-dependent divergence in
//! fetch order, cache eviction or error surfacing shows up here.
//!
//! Set `AA_DIFF_WORKERS=1,4` (comma-separated) to restrict the worker
//! matrix — used by CI to split the sweep across jobs.

use std::sync::Arc;

use aa_dedupe::cloud::{
    BackendError, CloudSim, ObjectBackend, ObjectStore, ObjectStoreStats, PriceModel, WanModel,
};
use aa_dedupe::core::{
    restore_session, restore_session_pipelined, AaDedupe, AaDedupeConfig, BackupScheme, Manifest,
    PipelineConfig, RestoreOptions, RestoredFile, RetryPolicy,
};
use aa_dedupe::filetype::{MemoryFile, SourceFile};
use aa_dedupe::obs::{Queue, Recorder};
use aa_dedupe::workload::{DatasetSpec, Generator, Snapshot};

const SEEDS: [u64; 3] = [11, 42, 1337];
const SESSIONS: usize = 2;
const SCHEME: &str = "aa-dedupe";

fn worker_matrix() -> Vec<usize> {
    match std::env::var("AA_DIFF_WORKERS") {
        Ok(s) => s
            .split(',')
            .map(|w| w.trim().parse().expect("AA_DIFF_WORKERS entries must be integers"))
            .collect(),
        Err(_) => vec![1, 2, 4, 8],
    }
}

fn backed_up(sessions: &[Vec<&dyn SourceFile>]) -> CloudSim {
    let mut engine = AaDedupe::with_config(
        CloudSim::with_paper_defaults(),
        AaDedupeConfig { pipeline: PipelineConfig::with_workers(4), ..AaDedupeConfig::default() },
    );
    for sources in sessions {
        engine.backup_session(sources).expect("backup");
    }
    engine.cloud().clone()
}

fn pipelined(
    cloud: &CloudSim,
    session: u64,
    workers: usize,
    cache: usize,
) -> Vec<RestoredFile> {
    restore_session_pipelined(
        cloud,
        SCHEME,
        session,
        &RestoreOptions { workers, cache_capacity: cache },
        &RetryPolicy::default(),
        &Recorder::disabled(),
    )
    .unwrap_or_else(|e| panic!("workers={workers} cache={cache}: {e}"))
}

#[test]
fn pipelined_matches_serial_across_seeds_workers_and_caches() {
    for seed in SEEDS {
        let mut generator = Generator::new(DatasetSpec::tiny_test(), seed);
        let snaps: Vec<Snapshot> = (0..SESSIONS).map(|w| generator.snapshot(w)).collect();
        let sessions: Vec<Vec<&dyn SourceFile>> = snaps.iter().map(|s| s.as_sources()).collect();
        let cloud = backed_up(&sessions);
        for session in 0..SESSIONS as u64 {
            let serial = restore_session(&cloud, SCHEME, session).expect("serial oracle");
            for workers in worker_matrix() {
                // A roomy cache and a pathologically tight one must agree:
                // capacity changes GET traffic, never bytes.
                for cache in [16usize, 2] {
                    let label = format!("seed={seed} s={session} workers={workers} cache={cache}");
                    let para = pipelined(&cloud, session, workers, cache);
                    assert_eq!(serial.len(), para.len(), "{label}: file count");
                    for (s, p) in serial.iter().zip(&para) {
                        assert_eq!(s.path, p.path, "{label}: order/path");
                        assert_eq!(s.data, p.data, "{label}: bytes of {}", s.path);
                    }
                }
            }
        }
    }
}

#[test]
fn restore_file_matches_the_session_entry_for_every_path() {
    let mut generator = Generator::new(DatasetSpec::tiny_test(), SEEDS[1]);
    let snap = generator.snapshot(0);
    let sessions = vec![snap.as_sources()];
    let cloud = backed_up(&sessions);
    let serial = restore_session(&cloud, SCHEME, 0).expect("serial oracle");
    assert!(!serial.is_empty());
    let engine = AaDedupe::open(cloud, AaDedupeConfig::default()).expect("open");
    for workers in worker_matrix() {
        let mut e = engine.config().clone();
        e.restore = RestoreOptions { workers, ..RestoreOptions::default() };
        let engine = AaDedupe::open(engine.cloud().clone(), e).expect("open");
        for expect in &serial {
            let got = engine
                .restore_file(0, &expect.path)
                .unwrap_or_else(|e| panic!("workers={workers} {}: {e}", expect.path));
            assert_eq!(&got, expect, "workers={workers}");
        }
    }
}

#[test]
fn restore_file_fetches_only_that_files_containers() {
    // The single-file regression: restoring one file must GET exactly
    // 1 (manifest) + the file's distinct container count — not the whole
    // session's container set.
    let inner = Arc::new(ObjectStore::new());
    let cloud = CloudSim::with_backend(
        Arc::clone(&inner) as Arc<dyn ObjectBackend>,
        WanModel::paper_defaults(),
        PriceModel::s3_april_2011(),
    );
    // Small containers so the session spans many of them and a single
    // file references a strict subset.
    let config = AaDedupeConfig { container_size: 16 * 1024, ..AaDedupeConfig::default() };
    let mut engine = AaDedupe::with_config(cloud, config);
    let files = [
        MemoryFile::new("user/doc/a.doc", b"important words ".repeat(8000)),
        MemoryFile::new("user/pdf/b.pdf", (0..160_000u32).map(|i| (i % 241) as u8).collect()),
        MemoryFile::new("user/mp3/c.mp3", (0..120_000u32).map(|i| (i % 249) as u8).collect()),
    ];
    let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
    engine.backup_session(&sources).expect("backup");

    let manifest_bytes =
        inner.get(&Manifest::key(SCHEME, 0)).unwrap().expect("manifest committed");
    let manifest = Manifest::decode(&manifest_bytes).expect("decode");
    let session_containers: std::collections::HashSet<u64> =
        manifest.files.iter().flat_map(|f| f.chunks.iter().map(|c| c.container)).collect();

    for f in &manifest.files {
        let file_containers: std::collections::HashSet<u64> =
            f.chunks.iter().map(|c| c.container).collect();
        let before = inner.stats().get_requests;
        let restored = engine.restore_file(0, &f.path).expect("restore_file");
        let gets = inner.stats().get_requests - before;
        assert_eq!(
            gets,
            1 + file_containers.len() as u64,
            "{}: one manifest GET plus one GET per distinct container",
            f.path
        );
        let original = files.iter().find(|m| m.path == f.path).expect("source file");
        assert_eq!(restored.data, original.data, "{}", f.path);
    }
    // The point of the fix: at least one file references strictly fewer
    // containers than the session, so per-file GETs really are a subset.
    assert!(
        manifest.files.iter().any(|f| {
            let n: std::collections::HashSet<u64> =
                f.chunks.iter().map(|c| c.container).collect();
            n.len() < session_containers.len()
        }),
        "workload too small to distinguish per-file from per-session fetching"
    );
}

#[test]
fn cache_capacity_bounds_resident_containers() {
    // A session referencing far more containers than the cache holds must
    // restore correctly while never keeping more than `cache_capacity`
    // containers resident — the RestoreCache gauge high-water mark is the
    // witness.
    let config = AaDedupeConfig { container_size: 16 * 1024, ..AaDedupeConfig::default() };
    let mut engine = AaDedupe::with_config(CloudSim::with_paper_defaults(), config);
    let files = [
        MemoryFile::new("user/doc/big.doc", b"cache bound drill words ".repeat(20_000)),
        MemoryFile::new("user/pdf/big.pdf", (0..400_000u32).map(|i| (i % 251) as u8).collect()),
    ];
    let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
    engine.backup_session(&sources).expect("backup");
    let cloud = engine.cloud().clone();

    let containers = cloud.store().list("aa-dedupe/containers/").len();
    let capacity = 4usize;
    assert!(
        containers > 2 * capacity,
        "drill needs >2x capacity containers, got {containers}"
    );

    let serial = restore_session(&cloud, SCHEME, 0).expect("serial oracle");
    for workers in worker_matrix() {
        let rec = Recorder::new();
        let restored = restore_session_pipelined(
            &cloud,
            SCHEME,
            0,
            &RestoreOptions { workers, cache_capacity: capacity },
            &RetryPolicy::default(),
            &rec,
        )
        .expect("bounded restore");
        assert_eq!(restored, serial, "workers={workers}");
        let hwm = rec.snapshot().queue(Queue::RestoreCache).hwm;
        assert!(hwm > 0, "workers={workers}: the gauge must have moved");
        assert!(
            hwm <= capacity as u64,
            "workers={workers}: {hwm} resident containers exceeds the bound {capacity}"
        );
    }
}

#[test]
fn single_slot_cache_still_restores_bit_exact() {
    // The degenerate bound: capacity 1 forces evict-and-refetch whenever
    // container references interleave; bytes must not change.
    let mut generator = Generator::new(DatasetSpec::tiny_test(), SEEDS[2]);
    let snap = generator.snapshot(0);
    let sessions = vec![snap.as_sources()];
    let cloud = backed_up(&sessions);
    let serial = restore_session(&cloud, SCHEME, 0).expect("serial oracle");
    for workers in [1usize, 4] {
        assert_eq!(pipelined(&cloud, 0, workers, 1), serial, "workers={workers}");
    }
}

// ---------------------------------------------------------------------------
// list_sessions ordering regression.
// ---------------------------------------------------------------------------

/// A backend whose `list` returns keys in *reverse* lexicographic order —
/// the adversarial listing the `list_sessions` contract must survive.
struct ReverseListing(Arc<dyn ObjectBackend>);

impl ObjectBackend for ReverseListing {
    fn put(&self, key: &str, bytes: Vec<u8>) -> Result<(), BackendError> {
        self.0.put(key, bytes)
    }
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, BackendError> {
        self.0.get(key)
    }
    fn delete(&self, key: &str) -> Result<bool, BackendError> {
        self.0.delete(key)
    }
    fn contains(&self, key: &str) -> bool {
        self.0.contains(key)
    }
    fn list(&self, prefix: &str) -> Vec<String> {
        let mut keys = self.0.list(prefix);
        keys.reverse();
        keys
    }
    fn object_count(&self) -> usize {
        self.0.object_count()
    }
    fn stored_bytes(&self) -> u64 {
        self.0.stored_bytes()
    }
    fn stats(&self) -> ObjectStoreStats {
        self.0.stats()
    }
    fn corrupt(&self, key: &str, byte_index: usize) -> bool {
        self.0.corrupt(key, byte_index)
    }
}

#[test]
fn list_sessions_is_numerically_ascending_regardless_of_backend_order() {
    let scrambled: Arc<dyn ObjectBackend> =
        Arc::new(ReverseListing(Arc::new(ObjectStore::new())));
    let cloud = CloudSim::with_backend(
        scrambled,
        WanModel::paper_defaults(),
        PriceModel::s3_april_2011(),
    );
    let mut engine = AaDedupe::new(cloud);
    let f = MemoryFile::new("user/txt/x.txt", b"session zero ".repeat(2000));
    engine.backup_session(&[&f as &dyn SourceFile]).expect("session 0");
    // Past ten sessions so a lexicographic (or reversed) ordering of the
    // manifest keys can no longer masquerade as numeric.
    for s in 1..=11 {
        engine.backup_session(&[]).unwrap_or_else(|e| panic!("session {s}: {e}"));
    }
    let sessions = engine.list_sessions();
    assert_eq!(sessions, (0..=11).collect::<Vec<usize>>(), "ascending by session number");
}
