//! Differential test: the parallel pipeline must be observationally
//! identical to the serial engine.
//!
//! For a fixed file ordering, `workers = k` must produce — bit for bit —
//! the same cloud state as `workers = 1` on the serial path: the same
//! restored files, the same `SessionReport` counters, the same cloud
//! objects (containers, manifests, index snapshots) under the same keys,
//! and the same per-partition index statistics. This is the determinism
//! contract documented in `DESIGN.md`; any scheduling-dependent divergence
//! in chunking, dedup decisions, container packing or upload order shows
//! up here as a hard failure.
//!
//! Set `AA_DIFF_WORKERS=1,4` (comma-separated) to restrict the worker
//! matrix and `AA_DIFF_CHUNKER=rabin` (or `fastcdc`, comma-separated) to
//! restrict the CDC boundary-algorithm dimension — used by CI to split
//! the sweep across jobs. The contract is algorithm-independent: for
//! every algorithm, parallel output must equal that algorithm's serial
//! output.

use std::collections::{BTreeMap, HashMap};

use aa_dedupe::chunking::CdcAlgorithm;
use aa_dedupe::cloud::CloudSim;
use aa_dedupe::core::{AaDedupe, AaDedupeConfig, BackupScheme, PipelineConfig, PipelineMode};
use aa_dedupe::filetype::{MemoryFile, SourceFile};
use aa_dedupe::index::IndexStats;
use aa_dedupe::metrics::SessionReport;
use aa_dedupe::workload::{DatasetSpec, Generator, Snapshot};

const SEEDS: [u64; 3] = [11, 42, 1337];
const SESSIONS: usize = 2;

fn worker_matrix() -> Vec<usize> {
    match std::env::var("AA_DIFF_WORKERS") {
        Ok(s) => s
            .split(',')
            .map(|w| w.trim().parse().expect("AA_DIFF_WORKERS entries must be integers"))
            .collect(),
        Err(_) => vec![1, 2, 4, 8],
    }
}

fn chunker_matrix() -> Vec<CdcAlgorithm> {
    match std::env::var("AA_DIFF_CHUNKER") {
        Ok(s) => s
            .split(',')
            .map(|a| {
                CdcAlgorithm::parse(a.trim()).expect("AA_DIFF_CHUNKER entries: rabin|fastcdc")
            })
            .collect(),
        Err(_) => CdcAlgorithm::ALL.to_vec(),
    }
}

/// Everything observable about an engine after a run, in comparable form.
struct Observation {
    reports: Vec<SessionReport>,
    /// Restored (path, bytes) per session, in restore order.
    restores: Vec<Vec<(String, Vec<u8>)>>,
    /// Full cloud object namespace: key → bytes.
    objects: BTreeMap<String, Vec<u8>>,
    /// Per-partition index statistics, keyed by app tag.
    partition_stats: BTreeMap<u8, IndexStats>,
}

fn observe(engine: &AaDedupe, reports: Vec<SessionReport>, sessions: usize) -> Observation {
    let restores = (0..sessions)
        .map(|s| {
            engine
                .restore_session(s)
                .unwrap_or_else(|e| panic!("restore of session {s} failed: {e}"))
                .into_iter()
                .map(|f| (f.path, f.data))
                .collect()
        })
        .collect();
    let store = engine.cloud().store();
    let objects = store
        .list("")
        .into_iter()
        .map(|key| {
            let bytes =
                store.get(&key).unwrap().unwrap_or_else(|| panic!("listed key {key} missing"));
            (key, bytes)
        })
        .collect();
    let partition_stats =
        engine.index().partitions().map(|(app, p)| (app.tag(), p.stats())).collect();
    Observation { reports, restores, objects, partition_stats }
}

fn run_sessions(config: AaDedupeConfig, sessions: &[Vec<&dyn SourceFile>]) -> Observation {
    let mut engine = AaDedupe::with_config(CloudSim::with_paper_defaults(), config);
    let reports = sessions
        .iter()
        .map(|sources| engine.backup_session(sources).expect("backup"))
        .collect();
    observe(&engine, reports, sessions.len())
}

fn serial_config(algorithm: CdcAlgorithm) -> AaDedupeConfig {
    let mut config = AaDedupeConfig {
        pipeline: PipelineConfig { workers: 1, queue_depth: 4, mode: PipelineMode::Serial },
        ..AaDedupeConfig::default()
    };
    config.cdc.algorithm = algorithm;
    config
}

fn parallel_config(workers: usize, algorithm: CdcAlgorithm) -> AaDedupeConfig {
    let mut config = AaDedupeConfig {
        // Force the pipeline even at workers = 1 so the machinery itself
        // is differentially tested, not just the Auto-mode dispatch.
        pipeline: PipelineConfig { workers, queue_depth: 4, mode: PipelineMode::Parallel },
        ..AaDedupeConfig::default()
    };
    config.cdc.algorithm = algorithm;
    config
}

/// Asserts every deterministic observable matches between two runs.
/// `dedup_cpu` and `transfer_time` are wall-clock measurements and are
/// deliberately excluded; everything else must be bit-identical.
fn assert_equivalent(serial: &Observation, parallel: &Observation, label: &str) {
    assert_eq!(serial.reports.len(), parallel.reports.len(), "{label}: session count");
    for (s, p) in serial.reports.iter().zip(&parallel.reports) {
        let session = s.session;
        assert_eq!(s.logical_bytes, p.logical_bytes, "{label} s{session}: logical_bytes");
        assert_eq!(s.stored_bytes, p.stored_bytes, "{label} s{session}: stored_bytes");
        assert_eq!(
            s.transferred_bytes, p.transferred_bytes,
            "{label} s{session}: transferred_bytes"
        );
        assert_eq!(s.put_requests, p.put_requests, "{label} s{session}: put_requests");
        assert_eq!(s.chunks_total, p.chunks_total, "{label} s{session}: chunks_total");
        assert_eq!(
            s.chunks_duplicate, p.chunks_duplicate,
            "{label} s{session}: chunks_duplicate"
        );
        assert_eq!(s.files_total, p.files_total, "{label} s{session}: files_total");
        assert_eq!(s.files_tiny, p.files_tiny, "{label} s{session}: files_tiny");
        assert_eq!(
            s.index_disk_reads, p.index_disk_reads,
            "{label} s{session}: index_disk_reads"
        );
    }
    for (session, (s, p)) in serial.restores.iter().zip(&parallel.restores).enumerate() {
        assert_eq!(s.len(), p.len(), "{label} s{session}: restored file count");
        for ((sp, sd), (pp, pd)) in s.iter().zip(p) {
            assert_eq!(sp, pp, "{label} s{session}: restore order/path");
            assert_eq!(sd, pd, "{label} s{session}: bytes of {sp}");
        }
    }
    let serial_keys: Vec<&String> = serial.objects.keys().collect();
    let parallel_keys: Vec<&String> = parallel.objects.keys().collect();
    assert_eq!(serial_keys, parallel_keys, "{label}: cloud key set");
    for (key, bytes) in &serial.objects {
        assert_eq!(bytes, &parallel.objects[key], "{label}: cloud object {key}");
    }
    assert_eq!(
        serial.partition_stats, parallel.partition_stats,
        "{label}: per-partition index stats"
    );
}

#[test]
fn parallel_matches_serial_across_seeds_workers_and_chunkers() {
    for algorithm in chunker_matrix() {
        for seed in SEEDS {
            let mut generator = Generator::new(DatasetSpec::tiny_test(), seed);
            let snaps: Vec<Snapshot> = (0..SESSIONS).map(|w| generator.snapshot(w)).collect();
            let sessions: Vec<Vec<&dyn SourceFile>> =
                snaps.iter().map(|s| s.as_sources()).collect();
            let serial = run_sessions(serial_config(algorithm), &sessions);
            for workers in worker_matrix() {
                let parallel = run_sessions(parallel_config(workers, algorithm), &sessions);
                assert_equivalent(
                    &serial,
                    &parallel,
                    &format!("chunker={algorithm} seed={seed} workers={workers}"),
                );
            }
        }
    }
}

#[test]
fn parallel_matches_serial_on_tiny_file_heavy_set() {
    // The size filter bypasses dedup for files < 10 KiB; those are packed
    // on the main thread in the parallel pipeline, so the tiny path needs
    // its own differential coverage: all-tiny, boundary sizes, and a mix
    // where tiny and big files interleave in the input ordering.
    let sizes: [usize; 9] = [0, 1, 512, 4 * 1024, 10 * 1024 - 1, 10 * 1024, 20 * 1024, 37, 9999];
    let exts = ["txt", "doc", "pdf", "mp3", "c", "html", "jpg", "avi", "zip"];
    let files: Vec<MemoryFile> = sizes
        .iter()
        .zip(exts)
        .enumerate()
        .map(|(i, (&len, ext))| {
            let data: Vec<u8> = (0..len).map(|j| ((i * 131 + j * 7) % 251) as u8).collect();
            MemoryFile::new(format!("tiny/f{i}.{ext}"), data)
        })
        .collect();
    let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
    // Two identical sessions: the second exercises the change-token
    // carry-forward for tiny files and full-duplicate paths for big ones.
    let sessions = vec![sources.clone(), sources];
    for algorithm in chunker_matrix() {
        let serial = run_sessions(serial_config(algorithm), &sessions);
        for workers in worker_matrix() {
            let parallel = run_sessions(parallel_config(workers, algorithm), &sessions);
            assert_equivalent(
                &serial,
                &parallel,
                &format!("tiny-set chunker={algorithm} workers={workers}"),
            );
        }
    }
}

#[test]
fn restores_are_bit_exact_against_source_data() {
    // The matrix test proves parallel ≡ serial; this anchors both to the
    // ground truth so an identical-but-wrong pair cannot slip through.
    let mut generator = Generator::new(DatasetSpec::tiny_test(), SEEDS[0]);
    let snap = generator.snapshot(0);
    for algorithm in chunker_matrix() {
        for workers in worker_matrix() {
            let mut engine = AaDedupe::with_config(
                CloudSim::with_paper_defaults(),
                parallel_config(workers, algorithm),
            );
            engine.backup_session(&snap.as_sources()).expect("backup");
            let restored = engine.restore_session(0).expect("restore");
            let by_path: HashMap<&str, &[u8]> =
                restored.iter().map(|f| (f.path.as_str(), f.data.as_slice())).collect();
            assert_eq!(restored.len(), snap.file_count(), "chunker={algorithm} workers={workers}");
            for f in &snap.files {
                assert_eq!(
                    by_path[f.path.as_str()],
                    f.materialize().as_slice(),
                    "chunker={algorithm} workers={workers}: {}",
                    f.path
                );
            }
        }
    }
}
