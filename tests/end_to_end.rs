//! Cross-crate integration: every scheme, multi-session backup + restore.
//!
//! The correctness oracle for the whole workspace: for each of the five
//! backup schemes, run several weekly sessions of the synthetic PC
//! workload and require every session to restore bit-exactly.

use std::collections::HashMap;

use aa_dedupe::baselines::all_schemes;
use aa_dedupe::cloud::CloudSim;
use aa_dedupe::workload::{DatasetSpec, Generator, Snapshot};

const SESSIONS: usize = 3;

fn snapshots(seed: u64) -> Vec<Snapshot> {
    let mut generator = Generator::new(DatasetSpec::tiny_test(), seed);
    (0..SESSIONS).map(|w| generator.snapshot(w)).collect()
}

#[test]
fn every_scheme_restores_every_session_bit_exactly() {
    let snaps = snapshots(31);
    for scheme_index in 0..5 {
        let cloud = CloudSim::with_paper_defaults();
        let mut scheme = all_schemes(&cloud).remove(scheme_index);
        let name = scheme.name();
        for snap in &snaps {
            scheme.backup_session(&snap.as_sources()).unwrap_or_else(|e| {
                panic!("{name}: backup of week {} failed: {e}", snap.week)
            });
        }
        assert_eq!(scheme.sessions_completed(), SESSIONS, "{name}");
        for (week, snap) in snaps.iter().enumerate() {
            let restored = scheme
                .restore_session(week)
                .unwrap_or_else(|e| panic!("{name}: restore of week {week} failed: {e}"));
            let by_path: HashMap<&str, &[u8]> =
                restored.iter().map(|f| (f.path.as_str(), f.data.as_slice())).collect();
            assert_eq!(restored.len(), snap.file_count(), "{name} week {week}");
            for f in &snap.files {
                let got = by_path
                    .get(f.path.as_str())
                    .unwrap_or_else(|| panic!("{name} week {week}: missing {}", f.path));
                assert_eq!(*got, f.materialize().as_slice(), "{name} week {week}: {}", f.path);
            }
        }
    }
}

#[test]
fn schemes_rank_as_the_paper_reports() {
    // Coarse shape assertions on a small workload: cumulative storage
    // ordering and request-count ordering across strategies.
    let snaps = snapshots(77);
    let mut stored: HashMap<&'static str, u64> = HashMap::new();
    let mut puts: HashMap<&'static str, u64> = HashMap::new();
    let mut cpu: HashMap<&'static str, f64> = HashMap::new();
    for scheme_index in 0..5 {
        let cloud = CloudSim::with_paper_defaults();
        let mut scheme = all_schemes(&cloud).remove(scheme_index);
        let mut s = 0u64;
        let mut p = 0u64;
        let mut c = 0f64;
        for snap in &snaps {
            let r = scheme.backup_session(&snap.as_sources()).expect("backup");
            s += r.stored_bytes;
            p += r.put_requests;
            c += r.dedup_cpu.as_secs_f64();
        }
        stored.insert(scheme.name(), s);
        puts.insert(scheme.name(), p);
        cpu.insert(scheme.name(), c);
    }
    // Fig. 7 ordering: incremental stores the most; chunk-level the least.
    assert!(
        stored["Jungle Disk"] >= stored["Avamar"],
        "incremental must store at least as much as CDC dedup: {stored:?}"
    );
    assert!(
        stored["BackupPC"] >= stored["Avamar"],
        "file-level dedup cannot beat chunk-level on stored bytes: {stored:?}"
    );
    // AA-Dedupe approaches fine-grained storage (within 35% of Avamar on
    // this workload; the gap is tiny-file bypass + per-app partitioning).
    assert!(
        (stored["AA-Dedupe"] as f64) <= 1.35 * stored["Avamar"] as f64,
        "AA-Dedupe should approach Avamar's space efficiency: {stored:?}"
    );
    // Fig. 10 mechanism: container aggregation means far fewer PUTs than
    // per-chunk upload.
    assert!(
        puts["AA-Dedupe"] * 3 <= puts["Avamar"],
        "containers must slash request counts: {puts:?}"
    );
    // Fig. 11 mechanism: Avamar burns the most dedup CPU (SHA-1 + CDC over
    // everything + monolithic index probes).
    assert!(
        cpu["Avamar"] >= cpu["AA-Dedupe"],
        "Avamar must cost at least as much dedup CPU as AA-Dedupe: {cpu:?}"
    );
}

#[test]
fn unchanged_second_week_is_cheap_for_all_dedup_schemes() {
    // Freeze the workload: two identical sessions. Every dedup scheme
    // (not Jungle Disk, which is also cheap here; include it anyway) must
    // transfer (almost) nothing the second time.
    let mut generator = Generator::new(DatasetSpec::tiny_test(), 5);
    let snap = generator.snapshot(0);
    for scheme_index in 0..5 {
        let cloud = CloudSim::with_paper_defaults();
        let mut scheme = all_schemes(&cloud).remove(scheme_index);
        let r0 = scheme.backup_session(&snap.as_sources()).expect("s0");
        let r1 = scheme.backup_session(&snap.as_sources()).expect("s1");
        let name = scheme.name();
        // AA-Dedupe re-packs tiny files each session (the paper's filter
        // trades that off); everyone else should be near zero too.
        assert!(
            r1.stored_bytes <= r0.logical_bytes / 20,
            "{name}: second identical session stored {} of {} logical",
            r1.stored_bytes,
            r0.logical_bytes
        );
    }
}
