//! Meta-test: the workspace's own sources pass `aalint`.
//!
//! This is the enforcement point that keeps `cargo test` equivalent to
//! `cargo run -p aalint -- check` — a violation anywhere in first-party
//! code fails the ordinary test suite, not just the dedicated CI job.

use std::path::Path;

#[test]
fn workspace_is_aalint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = aalint::scan_workspace(root).expect("scan workspace");
    assert!(
        report.files_scanned > 50,
        "walker lost the workspace: only {} files scanned",
        report.files_scanned
    );
    assert!(report.clean(), "aalint violations in first-party code:\n{}", report.render_text());
    // The interprocedural pass must actually see the workspace: a graph
    // that collapses to a handful of nodes means the symbol pass broke,
    // and L5–L7 would be vacuously green.
    assert!(
        report.graph.nodes > 1000,
        "call graph lost the workspace: only {} fns",
        report.graph.nodes
    );
    assert!(report.graph.edges > report.graph.nodes, "call graph has almost no edges");
    assert!(
        report.graph.panic_tainted > 0,
        "zero panic-tainted fns is implausible — leaf detection broke"
    );
    // Every suppression carries a justification by construction; keep the
    // inventory visible in test output so reviewers see the count move.
    println!(
        "aalint: {} files, {} allows inventoried, graph {} fns / {} edges / {} panic-tainted",
        report.files_scanned,
        report.allows.len(),
        report.graph.nodes,
        report.graph.edges,
        report.graph.panic_tainted
    );
}
