//! Meta-test: the workspace's own sources pass `aalint`.
//!
//! This is the enforcement point that keeps `cargo test` equivalent to
//! `cargo run -p aalint -- check` — a violation anywhere in first-party
//! code fails the ordinary test suite, not just the dedicated CI job.

use std::path::Path;

#[test]
fn workspace_is_aalint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = aalint::scan_workspace(root).expect("scan workspace");
    assert!(
        report.files_scanned > 50,
        "walker lost the workspace: only {} files scanned",
        report.files_scanned
    );
    assert!(report.clean(), "aalint violations in first-party code:\n{}", report.render_text());
    // Every suppression carries a justification by construction; keep the
    // inventory visible in test output so reviewers see the count move.
    println!(
        "aalint: {} files, {} allows inventoried",
        report.files_scanned,
        report.allows.len()
    );
}
