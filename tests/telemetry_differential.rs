//! Differential test for the continuous-telemetry layer: a backup/restore
//! run with the recorder enabled AND a live background sampler attached
//! (the `--metrics` configuration) must be bit-exact against the same run
//! with observability fully off — same restored bytes, same report
//! counters, same cloud namespace — across worker counts {1, 4}.
//!
//! This is the observe-only contract from DESIGN.md extended to the
//! sampler: a thread concurrently snapshotting the recorder mid-pipeline
//! must never influence chunking, dedup decisions, packing, upload order,
//! or restore assembly.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use aa_dedupe::cloud::CloudSim;
use aa_dedupe::core::{
    AaDedupe, AaDedupeConfig, BackupScheme, PipelineConfig, PipelineMode, RestoreOptions,
};
use aa_dedupe::metrics::SessionReport;
use aa_dedupe::obs::{Counter, Recorder, Sampler, SamplerConfig, Scope, TimeSeries};
use aa_dedupe::workload::{DatasetSpec, Generator, Snapshot};

const SESSIONS: usize = 2;

fn dataset() -> Vec<Snapshot> {
    let mut generator = Generator::new(DatasetSpec::tiny_test(), 4242);
    (0..SESSIONS).map(|w| generator.snapshot(w)).collect()
}

/// Everything observable about one full backup+restore run: the cloud
/// namespace, the per-session report counters, and the restored bytes.
struct Observed {
    objects: BTreeMap<String, Vec<u8>>,
    reports: Vec<(u64, u64, u64, u64, u64)>,
    restored: Vec<(String, Vec<u8>)>,
}

fn report_key(r: &SessionReport) -> (u64, u64, u64, u64, u64) {
    (r.files_total, r.chunks_total, r.chunks_duplicate, r.stored_bytes, r.transferred_bytes)
}

/// Runs the whole workload; when `telemetry` is set, the recorder is on
/// and a fast background sampler (1 ms ticks, well below any stage
/// duration) hammers delta-snapshots throughout, exactly as `--metrics`
/// would. Returns the observed state plus the sampled series.
fn run(workers: usize, telemetry: bool) -> (Observed, Option<TimeSeries>) {
    let rec = if telemetry { Recorder::shared() } else { Recorder::shared_disabled() };
    let mode = if workers == 1 { PipelineMode::Serial } else { PipelineMode::Parallel };
    let config = AaDedupeConfig {
        pipeline: PipelineConfig { workers, queue_depth: 4, mode },
        restore: RestoreOptions { workers, ..RestoreOptions::default() },
        recorder: Arc::clone(&rec),
        ..AaDedupeConfig::default()
    };
    let sampler = telemetry.then(|| {
        Sampler::spawn(
            Arc::clone(&rec),
            Scope::session("diff"),
            SamplerConfig { interval: Duration::from_millis(1), capacity: 1 << 16 },
        )
    });

    let mut engine = AaDedupe::with_config(CloudSim::with_paper_defaults(), config);
    let snaps = dataset();
    let reports: Vec<_> = snaps
        .iter()
        .map(|s| report_key(&engine.backup_session(&s.as_sources()).expect("backup")))
        .collect();
    let mut restored = Vec::new();
    for session in 0..SESSIONS {
        for f in engine.restore_session(session).expect("restore") {
            restored.push((f.path, f.data));
        }
    }
    let store = engine.cloud().store();
    let objects = store
        .list("")
        .into_iter()
        .map(|k| {
            let bytes = store.get(&k).expect("store get").expect("listed key present");
            (k, bytes)
        })
        .collect();
    let series = sampler.map(Sampler::stop);
    (Observed { objects, reports, restored }, series)
}

#[test]
fn sampler_on_is_bit_exact_vs_obs_off_across_worker_counts() {
    for workers in [1, 4] {
        let (off, none) = run(workers, false);
        let (on, series) = run(workers, true);
        assert!(none.is_none());

        // Report counters: identical, session by session.
        assert_eq!(off.reports, on.reports, "workers={workers}: session reports");

        // Restored bytes: identical files in identical order.
        assert_eq!(off.restored.len(), on.restored.len(), "workers={workers}: file count");
        for ((p0, d0), (p1, d1)) in off.restored.iter().zip(&on.restored) {
            assert_eq!(p0, p1, "workers={workers}: restored path order");
            assert_eq!(d0, d1, "workers={workers}: restored bytes of {p0}");
        }

        // Cloud namespace: identical keys and identical object bytes.
        assert_eq!(
            off.objects.keys().collect::<Vec<_>>(),
            on.objects.keys().collect::<Vec<_>>(),
            "workers={workers}: cloud keys"
        );
        for (key, bytes) in &off.objects {
            assert_eq!(bytes, &on.objects[key], "workers={workers}: cloud object {key}");
        }

        // The telemetry run really sampled live pipeline state: totals
        // across all intervals must equal the recorder's own counters
        // (delta decomposition loses nothing).
        let series = series.expect("telemetry run has a series");
        assert!(!series.is_empty(), "workers={workers}: sampler ticked");
        let logical: u64 = series.iter().map(|s| s.source_bytes).sum();
        let restored: u64 = series.iter().map(|s| s.restored_bytes).sum();
        assert!(logical > 0, "workers={workers}: source bytes sampled");
        assert_eq!(
            restored,
            off.restored.iter().map(|(_, d)| d.len() as u64).sum::<u64>(),
            "workers={workers}: sampled restore bytes equal actual restored bytes"
        );
    }
}

/// The sampler's interval decomposition is lossless: summing every
/// interval delta reproduces the recorder's cumulative counters exactly,
/// even with 1 ms ticks racing a live parallel pipeline.
#[test]
fn interval_deltas_sum_to_cumulative_counters() {
    let rec = Recorder::shared();
    let sampler = Sampler::spawn(
        Arc::clone(&rec),
        Scope::session("sum"),
        SamplerConfig { interval: Duration::from_millis(1), capacity: 1 << 16 },
    );
    let config = AaDedupeConfig {
        pipeline: PipelineConfig { workers: 4, queue_depth: 4, mode: PipelineMode::Parallel },
        recorder: Arc::clone(&rec),
        ..AaDedupeConfig::default()
    };
    let mut engine = AaDedupe::with_config(CloudSim::with_paper_defaults(), config);
    for s in &dataset() {
        engine.backup_session(&s.as_sources()).expect("backup");
    }
    let series = sampler.stop();
    let snap = rec.snapshot();
    assert!(series.dropped() == 0, "ring sized for the whole run");
    for (counter, pick) in [
        (Counter::SourceBytes, 0usize),
        (Counter::StoredBytes, 1),
        (Counter::UploadBytes, 2),
    ] {
        let total: u64 = series
            .iter()
            .map(|s| [s.source_bytes, s.stored_bytes, s.upload_bytes][pick])
            .sum();
        assert_eq!(total, snap.counter(counter), "{}", counter.name());
    }
    let app_lookups: u64 = series.iter().flat_map(|s| s.apps.iter()).map(|a| a.hits + a.misses).sum();
    assert_eq!(app_lookups, snap.index_hits() + snap.index_misses(), "per-app deltas");
}
