//! Failure injection: corruption and loss must be *detected*, never
//! silently restored.

use aa_dedupe::cloud::CloudSim;
use aa_dedupe::core::{AaDedupe, AaDedupeConfig, BackupError, BackupScheme};
use aa_dedupe::filetype::{MemoryFile, SourceFile};

fn backed_up_engine() -> (AaDedupe, Vec<MemoryFile>) {
    let cloud = CloudSim::with_paper_defaults();
    let mut engine = AaDedupe::new(cloud);
    let files = vec![
        MemoryFile::new("user/doc/a.doc", b"important words ".repeat(4000)),
        MemoryFile::new("user/pdf/b.pdf", vec![0x42; 120_000]),
        MemoryFile::new("user/mp3/c.mp3", (0..90_000u32).map(|i| (i % 249) as u8).collect()),
    ];
    let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
    engine.backup_session(&sources).expect("backup");
    (engine, files)
}

#[test]
fn healthy_restore_sanity() {
    let (engine, files) = backed_up_engine();
    let restored = engine.restore_session(0).expect("restore");
    for (orig, rest) in files.iter().zip(&restored) {
        assert_eq!(orig.data, rest.data);
    }
}

#[test]
fn corrupted_container_data_is_detected() {
    let (engine, _) = backed_up_engine();
    // Corrupt one byte *inside the first chunk's payload* of every
    // container (containers are padded, so positions near the end may be
    // harmless zero-fill — aim precisely).
    for key in engine.cloud().store().list("aa-dedupe/containers/") {
        let raw = engine.cloud().store().get(&key).unwrap().unwrap();
        let parsed = aa_dedupe::container::ParsedContainer::parse(&raw).unwrap();
        let desc_len: usize = parsed.descriptors.iter().map(aa_dedupe::container::ChunkDescriptor::encoded_len).sum();
        let first = parsed.descriptors.first().expect("non-empty container");
        let abs = aa_dedupe::container::format::HEADER_LEN + desc_len + first.offset as usize;
        assert!(engine.cloud().store().corrupt(&key, abs));
    }
    let err = engine.restore_session(0).expect_err("must detect corruption");
    assert!(
        matches!(err, BackupError::Verification(_) | BackupError::Corrupt(_)),
        "unexpected error: {err:?}"
    );
}

#[test]
fn corrupted_container_header_is_detected() {
    let (engine, _) = backed_up_engine();
    for key in engine.cloud().store().list("aa-dedupe/containers/") {
        engine.cloud().store().corrupt(&key, 0); // magic byte
    }
    let err = engine.restore_session(0).expect_err("must detect bad magic");
    assert!(matches!(err, BackupError::Corrupt(_)), "{err:?}");
}

#[test]
fn missing_container_is_detected() {
    let (engine, _) = backed_up_engine();
    for key in engine.cloud().store().list("aa-dedupe/containers/") {
        engine.cloud().store().delete(&key).unwrap();
    }
    let err = engine.restore_session(0).expect_err("must detect loss");
    assert!(matches!(err, BackupError::MissingObject(_)), "{err:?}");
}

#[test]
fn corrupted_manifest_is_detected() {
    let (engine, _) = backed_up_engine();
    for key in engine.cloud().store().list("aa-dedupe/manifests/") {
        engine.cloud().store().corrupt(&key, 1);
    }
    let err = engine.restore_session(0).expect_err("must detect manifest damage");
    assert!(matches!(err, BackupError::Corrupt(_)), "{err:?}");
}

#[test]
fn restore_of_never_backed_up_session_fails_cleanly() {
    let (engine, _) = backed_up_engine();
    assert!(matches!(
        engine.restore_session(99).expect_err("unknown session"),
        BackupError::UnknownSession(99)
    ));
}

#[test]
fn index_recovery_requires_a_snapshot() {
    let cloud = CloudSim::with_paper_defaults();
    // Index sync disabled: recovery must fail with a missing object.
    let config = AaDedupeConfig { index_sync_interval: 0, ..AaDedupeConfig::default() };
    let mut engine = AaDedupe::with_config(cloud, config);
    let f = MemoryFile::new("user/txt/x.txt", b"words ".repeat(3000));
    engine.backup_session(&[&f as &dyn SourceFile]).expect("backup");
    let err = engine.recover_index_from_cloud().expect_err("no snapshot exists");
    assert!(matches!(err, BackupError::MissingObject(_)), "{err:?}");
}

#[test]
fn corrupted_index_snapshot_is_detected() {
    let cloud = CloudSim::with_paper_defaults();
    let mut engine = AaDedupe::new(cloud);
    let f = MemoryFile::new("user/txt/x.txt", b"words ".repeat(3000));
    engine.backup_session(&[&f as &dyn SourceFile]).expect("backup");
    for key in engine.cloud().store().list("aa-dedupe/index/") {
        engine.cloud().store().corrupt(&key, 3);
    }
    let err = engine.recover_index_from_cloud().expect_err("snapshot corrupt");
    assert!(matches!(err, BackupError::Corrupt(_)), "{err:?}");
}

#[test]
fn double_delete_of_a_session_fails_cleanly() {
    let (mut engine, _) = backed_up_engine();
    engine.backup_session(&[]).expect("empty session 1");
    engine.delete_session(0).expect("first delete");
    assert!(matches!(
        engine.delete_session(0).expect_err("second delete"),
        BackupError::UnknownSession(0)
    ));
}

// ---------------------------------------------------------------------------
// Fault drills: deterministic injected upload failures, retry/backoff, and
// the crash-consistent commit protocol.
// ---------------------------------------------------------------------------

use aa_dedupe::cloud::{
    FaultInjectingBackend, FaultPlan, ObjectBackend, ObjectStore, PriceModel, WanModel,
};
use aa_dedupe::core::{PipelineConfig, RetryPolicy};
use aa_dedupe::obs::{Counter, Recorder};
use std::collections::BTreeMap;
use std::sync::Arc;

fn drill_files() -> Vec<MemoryFile> {
    vec![
        MemoryFile::new("user/doc/a.doc", b"important words ".repeat(4000)),
        MemoryFile::new("user/pdf/b.pdf", vec![0x42; 120_000]),
        MemoryFile::new("user/mp3/c.mp3", (0..90_000u32).map(|i| (i % 249) as u8).collect()),
        MemoryFile::new("user/txt/note.txt", b"tiny note".to_vec()),
    ]
}

fn changed_files() -> Vec<MemoryFile> {
    let mut files = drill_files();
    files[0] = MemoryFile::new("user/doc/a.doc", b"important words ".repeat(4500));
    files.push(MemoryFile::new("user/jpg/new.jpg", vec![9u8; 60_000]));
    files
}

fn cloud_over(backend: Arc<dyn ObjectBackend>) -> CloudSim {
    CloudSim::with_backend(backend, WanModel::paper_defaults(), PriceModel::s3_april_2011())
}

fn config_with(workers: usize, retry: RetryPolicy, rec: Option<Arc<Recorder>>) -> AaDedupeConfig {
    let mut config = AaDedupeConfig {
        pipeline: PipelineConfig::with_workers(workers),
        retry,
        ..AaDedupeConfig::default()
    };
    if let Some(rec) = rec {
        config.recorder = rec;
    }
    config
}

fn assert_restores_bit_exact(engine: &AaDedupe, session: usize, expect: &[MemoryFile]) {
    let restored = engine.restore_session(session).expect("restore");
    let by_path: BTreeMap<_, _> = restored.into_iter().map(|f| (f.path, f.data)).collect();
    assert_eq!(by_path.len(), expect.len(), "session {session} file count");
    for f in expect {
        assert_eq!(by_path.get(&f.path), Some(&f.data), "session {session} file {}", f.path);
    }
}

#[test]
fn transient_faults_every_upload_point_retries_to_success() {
    for workers in [1usize, 4] {
        // Every put in the engine's namespace fails exactly once before
        // succeeding — hits containers, the manifest and the index
        // snapshot alike.
        let inner: Arc<dyn ObjectBackend> = Arc::new(ObjectStore::new());
        let faulty = Arc::new(FaultInjectingBackend::new(
            Arc::clone(&inner),
            FaultPlan::new(7).fail_prefix_puts("aa-dedupe/", 1, true),
        ));
        let rec = Recorder::shared();
        let mut engine = AaDedupe::with_config(
            cloud_over(faulty.clone() as Arc<dyn ObjectBackend>),
            config_with(workers, RetryPolicy::default(), Some(rec.clone())),
        );
        let files = drill_files();
        let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
        engine.backup_session(&sources).expect("transient faults must be survivable");
        assert!(!engine.is_poisoned());
        assert_restores_bit_exact(&engine, 0, &files);

        // Exactly one retry per distinct uploaded key, none abandoned.
        let snap = rec.snapshot();
        let distinct_keys = inner.list("aa-dedupe/").len() as u64;
        assert!(distinct_keys > 0);
        assert_eq!(snap.counter(Counter::UploadRetries), distinct_keys, "workers={workers}");
        assert_eq!(snap.counter(Counter::UploadGiveups), 0, "workers={workers}");
        assert_eq!(faulty.faults_injected(), distinct_keys, "workers={workers}");
    }
}

#[test]
fn persistent_fault_aborts_without_a_manifest_and_poisons_the_engine() {
    for workers in [1usize, 4] {
        let inner: Arc<dyn ObjectBackend> = Arc::new(ObjectStore::new());
        let faulty: Arc<dyn ObjectBackend> = Arc::new(FaultInjectingBackend::new(
            Arc::clone(&inner),
            FaultPlan::new(7).fail_prefix_puts("aa-dedupe/containers/", u32::MAX, false),
        ));
        let rec = Recorder::shared();
        let mut engine = AaDedupe::with_config(
            cloud_over(faulty),
            config_with(workers, RetryPolicy::default(), Some(rec.clone())),
        );
        let files = drill_files();
        let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
        let err = engine.backup_session(&sources).expect_err("permanent fault must abort");
        assert!(matches!(err, BackupError::Cloud(_)), "{err:?}");
        // Permanent errors are not retried.
        assert_eq!(rec.snapshot().counter(Counter::UploadRetries), 0);
        assert_eq!(rec.snapshot().counter(Counter::UploadGiveups), 1);
        // The commit point was never reached: no manifest, so no session —
        // a reopened engine sees a clean (empty) repository.
        assert!(inner.list("aa-dedupe/manifests/").is_empty());
        // The failed instance refuses further backups.
        assert!(engine.is_poisoned());
        let err = engine.backup_session(&sources).expect_err("poisoned");
        assert!(matches!(err, BackupError::Poisoned(_)), "{err:?}");
        let reopened = AaDedupe::open(
            cloud_over(Arc::clone(&inner)),
            config_with(workers, RetryPolicy::default(), None),
        )
        .expect("reopen over the bare store");
        assert!(reopened.list_sessions().is_empty());
    }
}

#[test]
fn retry_budget_exhaustion_gives_up() {
    let inner: Arc<dyn ObjectBackend> = Arc::new(ObjectStore::new());
    let faulty: Arc<dyn ObjectBackend> = Arc::new(FaultInjectingBackend::new(
        Arc::clone(&inner),
        FaultPlan::new(3).fail_prefix_puts("aa-dedupe/", u32::MAX, true),
    ));
    let rec = Recorder::shared();
    let policy = RetryPolicy { max_attempts: 3, session_retry_budget: 2, ..RetryPolicy::default() };
    let mut engine =
        AaDedupe::with_config(cloud_over(faulty), config_with(1, policy, Some(rec.clone())));
    let files = drill_files();
    let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
    let err = engine.backup_session(&sources).expect_err("budget exhausted");
    assert!(matches!(err, BackupError::Cloud(_)), "{err:?}");
    let snap = rec.snapshot();
    assert_eq!(snap.counter(Counter::UploadRetries), 2, "whole session budget spent");
    assert_eq!(snap.counter(Counter::UploadGiveups), 1);
}

#[test]
fn truncated_container_write_is_swept_on_reopen() {
    // A truncated put leaves a partial object visible (a torn multipart
    // upload). Without retries the session aborts before its manifest, so
    // reopening sweeps the partial container as an orphan.
    let inner: Arc<dyn ObjectBackend> = Arc::new(ObjectStore::new());
    let faulty: Arc<dyn ObjectBackend> = Arc::new(FaultInjectingBackend::new(
        Arc::clone(&inner),
        FaultPlan::new(11).truncate_nth_put(1, 16),
    ));
    let mut engine =
        AaDedupe::with_config(cloud_over(faulty), config_with(1, RetryPolicy::no_retries(), None));
    let files = drill_files();
    let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
    engine.backup_session(&sources).expect_err("truncated write must fail the session");
    let partials = inner.list("aa-dedupe/containers/");
    assert_eq!(partials.len(), 1, "the torn object is visible before the sweep");
    assert_eq!(inner.get(&partials[0]).unwrap().unwrap().len(), 16);

    let reopened = AaDedupe::open(
        cloud_over(Arc::clone(&inner)),
        config_with(1, RetryPolicy::default(), None),
    )
    .expect("reopen");
    assert_eq!(reopened.orphans_swept(), 1);
    assert!(inner.list("aa-dedupe/containers/").is_empty());
}

#[test]
fn crash_at_every_operation_leaves_a_recoverable_repository() {
    for workers in [1usize, 4] {
        // Dry run to learn how many backend operations session 1 performs
        // (open's manifest fetches + the second session's uploads).
        let total_ops = {
            let inner: Arc<dyn ObjectBackend> = Arc::new(ObjectStore::new());
            let mut e0 = AaDedupe::with_config(
                cloud_over(Arc::clone(&inner)),
                config_with(workers, RetryPolicy::no_retries(), None),
            );
            let files = drill_files();
            let sources: Vec<&dyn SourceFile> =
                files.iter().map(|f| f as &dyn SourceFile).collect();
            e0.backup_session(&sources).expect("clean session 0");
            let counting =
                Arc::new(FaultInjectingBackend::new(Arc::clone(&inner), FaultPlan::new(0)));
            let mut e1 = AaDedupe::open(
                cloud_over(counting.clone() as Arc<dyn ObjectBackend>),
                config_with(workers, RetryPolicy::no_retries(), None),
            )
            .expect("open");
            let changed = changed_files();
            let sources: Vec<&dyn SourceFile> =
                changed.iter().map(|f| f as &dyn SourceFile).collect();
            e1.backup_session(&sources).expect("clean session 1");
            counting.ops_attempted()
        };
        assert!(total_ops >= 3, "expected open+upload traffic, got {total_ops}");

        let files = drill_files();
        let changed = changed_files();
        for crash_at in 1..=total_ops {
            // Fresh repository with a committed session 0.
            let inner: Arc<dyn ObjectBackend> = Arc::new(ObjectStore::new());
            {
                let mut e0 = AaDedupe::with_config(
                    cloud_over(Arc::clone(&inner)),
                    config_with(workers, RetryPolicy::no_retries(), None),
                );
                let sources: Vec<&dyn SourceFile> =
                    files.iter().map(|f| f as &dyn SourceFile).collect();
                e0.backup_session(&sources).expect("clean session 0");
            }
            // Crash-stop the backend at operation `crash_at` during
            // open + session 1. Failures here are expected and fine.
            let crashing = Arc::new(FaultInjectingBackend::new(
                Arc::clone(&inner),
                FaultPlan::new(0).crash_at_op(crash_at),
            ));
            let session1_committed = match AaDedupe::open(
                cloud_over(crashing.clone() as Arc<dyn ObjectBackend>),
                config_with(workers, RetryPolicy::no_retries(), None),
            ) {
                Ok(mut e1) => {
                    let sources: Vec<&dyn SourceFile> =
                        changed.iter().map(|f| f as &dyn SourceFile).collect();
                    e1.backup_session(&sources).is_ok()
                }
                Err(_) => false,
            };

            // Recovery: reopen over the bare store. Whatever the crash
            // point, session 0 must restore bit-exactly, session 1 exactly
            // when its manifest committed, and the orphan sweep must leave
            // only referenced containers behind.
            let e = AaDedupe::open(
                cloud_over(Arc::clone(&inner)),
                config_with(workers, RetryPolicy::no_retries(), None),
            )
            .unwrap_or_else(|err| {
                panic!("workers={workers} crash_at={crash_at}: reopen failed: {err}")
            });
            let sessions = e.list_sessions();
            assert!(sessions.contains(&0), "workers={workers} crash_at={crash_at}");
            assert_restores_bit_exact(&e, 0, &files);
            if sessions.contains(&1) {
                assert_restores_bit_exact(&e, 1, &changed);
            } else {
                assert!(
                    !session1_committed,
                    "workers={workers} crash_at={crash_at}: a session reported as committed \
                     must be restorable"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Restore fault drills: injected GET failures against the pipelined
// bounded-memory restore engine, and the delete-session crash sweep.
// ---------------------------------------------------------------------------

use aa_dedupe::core::{restore_session_pipelined, RestoreOptions, RestoredFile};

/// A clean one-session repository over a bare [`ObjectStore`], so restore
/// drills can wrap the store in faults without the backup seeing them.
fn clean_repository() -> (Arc<ObjectStore>, Vec<MemoryFile>) {
    let inner = Arc::new(ObjectStore::new());
    let mut engine = AaDedupe::new(cloud_over(Arc::clone(&inner) as Arc<dyn ObjectBackend>));
    let files = drill_files();
    let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
    engine.backup_session(&sources).expect("clean backup");
    (inner, files)
}

fn assert_files_bit_exact(restored: &[RestoredFile], expect: &[MemoryFile], label: &str) {
    let by_path: BTreeMap<_, _> =
        restored.iter().map(|f| (f.path.as_str(), f.data.as_slice())).collect();
    assert_eq!(by_path.len(), expect.len(), "{label}: file count");
    for f in expect {
        assert_eq!(by_path.get(f.path.as_str()), Some(&f.data.as_slice()), "{label}: {}", f.path);
    }
}

#[test]
fn restore_transient_fault_at_every_fetch_point_retries_to_success() {
    for workers in [1usize, 4] {
        let (inner, files) = clean_repository();
        // Every GET in the namespace fails exactly once before succeeding —
        // hits the manifest and every container alike.
        let faulty = Arc::new(FaultInjectingBackend::new(
            Arc::clone(&inner) as Arc<dyn ObjectBackend>,
            FaultPlan::new(7).fail_prefix_gets("aa-dedupe/", 1, true),
        ));
        let cloud = cloud_over(faulty.clone() as Arc<dyn ObjectBackend>);
        let rec = Recorder::new();
        let restored = restore_session_pipelined(
            &cloud,
            "aa-dedupe",
            0,
            &RestoreOptions { workers, cache_capacity: 16 },
            &RetryPolicy::default(),
            &rec,
        )
        .expect("transient faults must be survivable");
        assert_files_bit_exact(&restored, &files, &format!("workers={workers}"));

        // Exactly one retry per fetched key: the manifest plus each
        // distinct container, no more (each refetch, if any, is clean).
        let containers = inner.list("aa-dedupe/containers/").len() as u64;
        assert!(containers > 0);
        let snap = rec.snapshot();
        assert_eq!(
            snap.counter(Counter::RestoreRetries),
            1 + containers,
            "workers={workers}: one retry for the manifest and one per container"
        );
        assert_eq!(snap.counter(Counter::RestoreGiveups), 0, "workers={workers}");
        assert_eq!(faulty.faults_injected(), 1 + containers, "workers={workers}");
    }
}

#[test]
fn restore_permanent_fault_aborts_cleanly_and_deterministically() {
    // Permanent container GET failures: no retries, a clean abort (no
    // partial result), and — the determinism contract — the same error for
    // every worker count, surfaced at the first consumed reference.
    let mut errors = Vec::new();
    for workers in [1usize, 4] {
        let (inner, _) = clean_repository();
        let faulty: Arc<dyn ObjectBackend> = Arc::new(FaultInjectingBackend::new(
            Arc::clone(&inner) as Arc<dyn ObjectBackend>,
            FaultPlan::new(7).fail_prefix_gets("aa-dedupe/containers/", u32::MAX, false),
        ));
        let rec = Recorder::new();
        let err = restore_session_pipelined(
            &cloud_over(faulty),
            "aa-dedupe",
            0,
            &RestoreOptions { workers, cache_capacity: 16 },
            &RetryPolicy::default(),
            &rec,
        )
        .expect_err("permanent fault must abort");
        assert!(matches!(err, BackupError::Cloud(_)), "workers={workers}: {err:?}");
        let snap = rec.snapshot();
        assert_eq!(snap.counter(Counter::RestoreRetries), 0, "permanent errors are not retried");
        assert!(snap.counter(Counter::RestoreGiveups) >= 1, "workers={workers}");
        errors.push(err.to_string());
    }
    assert_eq!(errors[0], errors[1], "the surfaced error must not depend on worker count");
}

#[test]
fn restore_corruption_detected_identically_across_worker_counts() {
    // One corrupted container in the middle of a parallel restore: every
    // worker count must report the same verification failure the serial
    // oracle does.
    let (inner, _) = clean_repository();
    let keys = inner.list("aa-dedupe/containers/");
    let key = keys.last().expect("containers exist");
    let raw = inner.get(key).unwrap().unwrap();
    let parsed = aa_dedupe::container::ParsedContainer::parse(&raw).unwrap();
    let desc_len: usize = parsed.descriptors.iter().map(aa_dedupe::container::ChunkDescriptor::encoded_len).sum();
    let target = aa_dedupe::container::format::HEADER_LEN
        + desc_len
        + parsed.descriptors[0].offset as usize;
    assert!(inner.corrupt(key, target));

    let cloud = cloud_over(Arc::clone(&inner) as Arc<dyn ObjectBackend>);
    let serial_err =
        aa_dedupe::core::restore_session(&cloud, "aa-dedupe", 0).expect_err("oracle detects it");
    for workers in [1usize, 4] {
        let err = restore_session_pipelined(
            &cloud,
            "aa-dedupe",
            0,
            &RestoreOptions { workers, cache_capacity: 16 },
            &RetryPolicy::default(),
            &Recorder::disabled(),
        )
        .expect_err("must detect corruption");
        assert!(
            matches!(err, BackupError::Verification(_) | BackupError::Corrupt(_)),
            "workers={workers}: {err:?}"
        );
        assert_eq!(
            err.to_string(),
            serial_err.to_string(),
            "workers={workers}: pipelined error must match the serial oracle"
        );
    }
}

#[test]
fn restore_retry_budget_exhaustion_gives_up() {
    let (inner, _) = clean_repository();
    let faulty: Arc<dyn ObjectBackend> = Arc::new(FaultInjectingBackend::new(
        Arc::clone(&inner) as Arc<dyn ObjectBackend>,
        FaultPlan::new(3).fail_prefix_gets("aa-dedupe/", u32::MAX, true),
    ));
    let rec = Recorder::new();
    let policy = RetryPolicy { max_attempts: 3, session_retry_budget: 2, ..RetryPolicy::default() };
    let err = restore_session_pipelined(
        &cloud_over(faulty),
        "aa-dedupe",
        0,
        &RestoreOptions::default(),
        &policy,
        &rec,
    )
    .expect_err("budget exhausted");
    assert!(matches!(err, BackupError::Cloud(_)), "{err:?}");
    let snap = rec.snapshot();
    assert_eq!(snap.counter(Counter::RestoreRetries), 2, "whole restore budget spent");
    assert_eq!(snap.counter(Counter::RestoreGiveups), 1);
}

#[test]
fn delete_crash_at_every_operation_never_strands_a_listed_session() {
    // The delete commit protocol: the manifest delete is the un-commit
    // point. Crash-stopping the backend at every operation of a deletion
    // must leave the repository in one of exactly two states — the session
    // still fully restorable (un-commit never happened) or gone with its
    // exclusive containers reclaimable — and must never damage the other
    // session, which shares containers with the deleted one.
    let files = drill_files();
    let changed = changed_files();
    let two_sessions = |inner: &Arc<ObjectStore>| {
        let mut e = AaDedupe::with_config(
            cloud_over(Arc::clone(inner) as Arc<dyn ObjectBackend>),
            config_with(1, RetryPolicy::no_retries(), None),
        );
        let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
        e.backup_session(&sources).expect("clean session 0");
        let sources: Vec<&dyn SourceFile> = changed.iter().map(|f| f as &dyn SourceFile).collect();
        e.backup_session(&sources).expect("clean session 1");
    };

    // Dry run to learn how many backend operations open + delete perform.
    let total_ops = {
        let inner = Arc::new(ObjectStore::new());
        two_sessions(&inner);
        let counting = Arc::new(FaultInjectingBackend::new(
            Arc::clone(&inner) as Arc<dyn ObjectBackend>,
            FaultPlan::new(0),
        ));
        let mut e = AaDedupe::open(
            cloud_over(counting.clone() as Arc<dyn ObjectBackend>),
            config_with(1, RetryPolicy::no_retries(), None),
        )
        .expect("open");
        e.delete_session(0).expect("clean delete");
        counting.ops_attempted()
    };
    assert!(total_ops >= 3, "expected open+delete traffic, got {total_ops}");

    for crash_at in 1..=total_ops {
        let inner = Arc::new(ObjectStore::new());
        two_sessions(&inner);
        let crashing = Arc::new(FaultInjectingBackend::new(
            Arc::clone(&inner) as Arc<dyn ObjectBackend>,
            FaultPlan::new(0).crash_at_op(crash_at),
        ));
        let deleted = match AaDedupe::open(
            cloud_over(crashing.clone() as Arc<dyn ObjectBackend>),
            config_with(1, RetryPolicy::no_retries(), None),
        ) {
            Ok(mut e) => match e.delete_session(0) {
                Ok(()) => {
                    // Ok means the un-commit committed: the manifest is
                    // gone, and any container whose delete the crash ate is
                    // recorded as sweep debt, still present in the store.
                    assert!(
                        !inner.contains("aa-dedupe/manifests/00000000"),
                        "crash_at={crash_at}: Ok delete must have removed the manifest"
                    );
                    for id in e.sweep_debt() {
                        assert!(
                            inner.contains(&format!("aa-dedupe/containers/{id:012}")),
                            "crash_at={crash_at}: sweep debt {id} should still exist"
                        );
                    }
                    true
                }
                Err(_) => {
                    // Err can only arise before the manifest delete
                    // succeeded; nothing may have been mutated.
                    assert!(
                        inner.contains("aa-dedupe/manifests/00000000"),
                        "crash_at={crash_at}: failed delete must leave the manifest intact"
                    );
                    false
                }
            },
            Err(_) => false, // crash during open: delete never started
        };

        // Recovery: reopen over the bare store. Session 1 must always be
        // restorable; session 0 exactly when its manifest survived; and the
        // orphan sweep must leave only referenced containers behind.
        let e = AaDedupe::open(
            cloud_over(Arc::clone(&inner) as Arc<dyn ObjectBackend>),
            config_with(1, RetryPolicy::no_retries(), None),
        )
        .unwrap_or_else(|err| panic!("crash_at={crash_at}: reopen failed: {err}"));
        let sessions = e.list_sessions();
        assert!(sessions.contains(&1), "crash_at={crash_at}");
        assert_restores_bit_exact(&e, 1, &changed);
        if deleted {
            assert!(!sessions.contains(&0), "crash_at={crash_at}");
            // Every surviving container is referenced by the surviving
            // manifest — the sweep debt was reclaimed as orphans.
            let manifest_bytes = inner
                .get(&aa_dedupe::core::Manifest::key("aa-dedupe", 1))
                .unwrap()
                .expect("manifest 1");
            let manifest = aa_dedupe::core::Manifest::decode(&manifest_bytes).expect("decode");
            let referenced: std::collections::HashSet<String> = manifest
                .files
                .iter()
                .flat_map(|f| f.chunks.iter())
                .map(|c| format!("aa-dedupe/containers/{:012}", c.container))
                .collect();
            for key in inner.list("aa-dedupe/containers/") {
                assert!(
                    referenced.contains(&key),
                    "crash_at={crash_at}: unreferenced container {key} survived the sweep"
                );
            }
        } else {
            assert!(sessions.contains(&0), "crash_at={crash_at}");
            assert_restores_bit_exact(&e, 0, &files);
        }
    }
}

#[test]
fn recovered_engine_continues_the_session_sequence() {
    // Regression test: after disaster recovery the session counter must
    // resume after the last committed manifest, not restart at zero.
    let inner: Arc<dyn ObjectBackend> = Arc::new(ObjectStore::new());
    let files = drill_files();
    {
        let mut e0 = AaDedupe::with_config(
            cloud_over(Arc::clone(&inner)),
            AaDedupeConfig { index_sync_interval: 1, ..AaDedupeConfig::default() },
        );
        let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
        e0.backup_session(&sources).expect("session 0");
    }
    // "New machine": blank engine, index rebuilt from the cloud snapshot.
    let mut e = AaDedupe::with_config(
        cloud_over(Arc::clone(&inner)),
        AaDedupeConfig { index_sync_interval: 1, ..AaDedupeConfig::default() },
    );
    e.recover_index_from_cloud().expect("recover");
    assert_eq!(e.sessions_completed(), 1, "counter resumes after the recovered manifest");
    let changed = changed_files();
    let sources: Vec<&dyn SourceFile> = changed.iter().map(|f| f as &dyn SourceFile).collect();
    e.backup_session(&sources).expect("session 1 after recovery");
    assert_restores_bit_exact(&e, 0, &files);
    assert_restores_bit_exact(&e, 1, &changed);
}
