//! Failure injection: corruption and loss must be *detected*, never
//! silently restored.

use aa_dedupe::cloud::CloudSim;
use aa_dedupe::core::{AaDedupe, AaDedupeConfig, BackupError, BackupScheme};
use aa_dedupe::filetype::{MemoryFile, SourceFile};

fn backed_up_engine() -> (AaDedupe, Vec<MemoryFile>) {
    let cloud = CloudSim::with_paper_defaults();
    let mut engine = AaDedupe::new(cloud);
    let files = vec![
        MemoryFile::new("user/doc/a.doc", b"important words ".repeat(4000)),
        MemoryFile::new("user/pdf/b.pdf", vec![0x42; 120_000]),
        MemoryFile::new("user/mp3/c.mp3", (0..90_000u32).map(|i| (i % 249) as u8).collect()),
    ];
    let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
    engine.backup_session(&sources).expect("backup");
    (engine, files)
}

#[test]
fn healthy_restore_sanity() {
    let (engine, files) = backed_up_engine();
    let restored = engine.restore_session(0).expect("restore");
    for (orig, rest) in files.iter().zip(&restored) {
        assert_eq!(orig.data, rest.data);
    }
}

#[test]
fn corrupted_container_data_is_detected() {
    let (engine, _) = backed_up_engine();
    // Corrupt one byte *inside the first chunk's payload* of every
    // container (containers are padded, so positions near the end may be
    // harmless zero-fill — aim precisely).
    for key in engine.cloud().store().list("aa-dedupe/containers/") {
        let raw = engine.cloud().store().get(&key).unwrap();
        let parsed = aa_dedupe::container::ParsedContainer::parse(&raw).unwrap();
        let desc_len: usize = parsed.descriptors.iter().map(|d| d.encoded_len()).sum();
        let first = parsed.descriptors.first().expect("non-empty container");
        let abs = aa_dedupe::container::format::HEADER_LEN + desc_len + first.offset as usize;
        assert!(engine.cloud().store().corrupt(&key, abs));
    }
    let err = engine.restore_session(0).expect_err("must detect corruption");
    assert!(
        matches!(err, BackupError::Verification(_) | BackupError::Corrupt(_)),
        "unexpected error: {err:?}"
    );
}

#[test]
fn corrupted_container_header_is_detected() {
    let (engine, _) = backed_up_engine();
    for key in engine.cloud().store().list("aa-dedupe/containers/") {
        engine.cloud().store().corrupt(&key, 0); // magic byte
    }
    let err = engine.restore_session(0).expect_err("must detect bad magic");
    assert!(matches!(err, BackupError::Corrupt(_)), "{err:?}");
}

#[test]
fn missing_container_is_detected() {
    let (engine, _) = backed_up_engine();
    for key in engine.cloud().store().list("aa-dedupe/containers/") {
        engine.cloud().store().delete(&key);
    }
    let err = engine.restore_session(0).expect_err("must detect loss");
    assert!(matches!(err, BackupError::MissingObject(_)), "{err:?}");
}

#[test]
fn corrupted_manifest_is_detected() {
    let (engine, _) = backed_up_engine();
    for key in engine.cloud().store().list("aa-dedupe/manifests/") {
        engine.cloud().store().corrupt(&key, 1);
    }
    let err = engine.restore_session(0).expect_err("must detect manifest damage");
    assert!(matches!(err, BackupError::Corrupt(_)), "{err:?}");
}

#[test]
fn restore_of_never_backed_up_session_fails_cleanly() {
    let (engine, _) = backed_up_engine();
    assert!(matches!(
        engine.restore_session(99).expect_err("unknown session"),
        BackupError::UnknownSession(99)
    ));
}

#[test]
fn index_recovery_requires_a_snapshot() {
    let cloud = CloudSim::with_paper_defaults();
    // Index sync disabled: recovery must fail with a missing object.
    let config = AaDedupeConfig { index_sync_interval: 0, ..AaDedupeConfig::default() };
    let mut engine = AaDedupe::with_config(cloud, config);
    let f = MemoryFile::new("user/txt/x.txt", b"words ".repeat(3000));
    engine.backup_session(&[&f as &dyn SourceFile]).expect("backup");
    let err = engine.recover_index_from_cloud().expect_err("no snapshot exists");
    assert!(matches!(err, BackupError::MissingObject(_)), "{err:?}");
}

#[test]
fn corrupted_index_snapshot_is_detected() {
    let cloud = CloudSim::with_paper_defaults();
    let mut engine = AaDedupe::new(cloud);
    let f = MemoryFile::new("user/txt/x.txt", b"words ".repeat(3000));
    engine.backup_session(&[&f as &dyn SourceFile]).expect("backup");
    for key in engine.cloud().store().list("aa-dedupe/index/") {
        engine.cloud().store().corrupt(&key, 3);
    }
    let err = engine.recover_index_from_cloud().expect_err("snapshot corrupt");
    assert!(matches!(err, BackupError::Corrupt(_)), "{err:?}");
}

#[test]
fn double_delete_of_a_session_fails_cleanly() {
    let (mut engine, _) = backed_up_engine();
    engine.backup_session(&[]).expect("empty session 1");
    engine.delete_session(0).expect("first delete");
    assert!(matches!(
        engine.delete_session(0).expect_err("second delete"),
        BackupError::UnknownSession(0)
    ));
}
