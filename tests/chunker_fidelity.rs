//! Differential fidelity harness: gear-hash FastCDC versus the Rabin
//! oracle.
//!
//! FastCDC exists purely for speed; every *dedup-relevant* observable
//! must stay within contract when it replaces the Rabin scan. This suite
//! proves boundary-independence of the system's fidelity:
//!
//! * **Dedup-ratio parity** — over multi-session workload-generated
//!   corpora, the cumulative dedup ratio under FastCDC stays within a
//!   pinned tolerance of Rabin's. (The ratio is boundary-*sensitive* but
//!   not boundary-*fragile*: both algorithms find the same cross-version
//!   redundancy, just at different cut positions.)
//! * **Bit-exact restores** — each algorithm's engine restores every
//!   session byte-for-byte equal to the source data, across worker
//!   counts.
//! * **Size contract** — interior chunks respect `[min, max]` and the
//!   mean lands near the 8 KiB target for both algorithms; FastCDC's
//!   normalized distribution must not lean on forced max-size cuts.
//! * **Localized churn** — inserting or deleting bytes changes a bounded
//!   number of chunks; an edit must never cascade resplits through the
//!   remainder of the stream.

use std::collections::HashSet;

use aa_dedupe::chunking::{
    CdcAlgorithm, Chunker, ContentChunker, DEFAULT_CDC,
};
use aa_dedupe::cloud::CloudSim;
use aa_dedupe::core::{AaDedupe, AaDedupeConfig, BackupScheme, PipelineConfig};
use aa_dedupe::workload::{DatasetSpec, Generator, Prng};

const SEEDS: [u64; 2] = [11, 42];
const SESSIONS: usize = 3;

/// Relative dedup-ratio tolerance between the two algorithms. Measured
/// divergence on the evaluation corpora is under 2 %; 6 % leaves slack
/// for corpus drift without letting a broken chunker through (a FastCDC
/// that degraded to forced max-size cuts diverges by well over 10 % on
/// edit-heavy corpora).
const DR_TOLERANCE: f64 = 0.06;

fn engine_with(algorithm: CdcAlgorithm, workers: usize) -> AaDedupe {
    let mut config = AaDedupeConfig {
        pipeline: PipelineConfig::with_workers(workers),
        ..AaDedupeConfig::default()
    };
    config.cdc.algorithm = algorithm;
    AaDedupe::with_config(CloudSim::with_paper_defaults(), config)
}

/// Restored files of one session, in restore order: `(path, bytes)`.
type SessionFiles = Vec<(String, Vec<u8>)>;

/// Backs up `SESSIONS` weekly snapshots, returning the cumulative
/// (logical, stored) byte totals and the per-session restores.
fn run(algorithm: CdcAlgorithm, workers: usize, seed: u64) -> (u64, u64, Vec<SessionFiles>) {
    let mut generator = Generator::new(DatasetSpec::tiny_test(), seed);
    let mut engine = engine_with(algorithm, workers);
    let (mut logical, mut stored) = (0u64, 0u64);
    for week in 0..SESSIONS {
        let snap = generator.snapshot(week);
        let report = engine.backup_session(&snap.as_sources()).expect("backup");
        logical += report.logical_bytes;
        stored += report.stored_bytes;
    }
    let restores = (0..SESSIONS)
        .map(|s| {
            engine
                .restore_session(s)
                .expect("restore")
                .into_iter()
                .map(|f| (f.path, f.data))
                .collect()
        })
        .collect();
    (logical, stored, restores)
}

#[test]
fn dedup_ratio_within_tolerance_and_restores_bit_exact() {
    for seed in SEEDS {
        let (rl, rs, r_restores) = run(CdcAlgorithm::Rabin, 1, seed);
        let dr_rabin = rl as f64 / rs as f64;
        for workers in [1usize, 4] {
            let (fl, fs, f_restores) = run(CdcAlgorithm::FastCdc, workers, seed);
            // Same corpus in, same corpus out: logical bytes are
            // boundary-independent by definition.
            assert_eq!(rl, fl, "seed={seed} workers={workers}: logical bytes");
            let dr_fast = fl as f64 / fs as f64;
            let divergence = (dr_fast - dr_rabin).abs() / dr_rabin;
            assert!(
                divergence <= DR_TOLERANCE,
                "seed={seed} workers={workers}: dedup ratio diverged {:.1}% \
                 (rabin {dr_rabin:.4}, fastcdc {dr_fast:.4})",
                divergence * 100.0
            );
            // Restores bit-exact across chunkers: identical session
            // structure, identical paths, identical bytes.
            assert_eq!(r_restores.len(), f_restores.len());
            for (session, (r, f)) in r_restores.iter().zip(&f_restores).enumerate() {
                assert_eq!(r.len(), f.len(), "seed={seed} s{session}: file count");
                for ((rp, rd), (fp, fd)) in r.iter().zip(f) {
                    assert_eq!(rp, fp, "seed={seed} s{session}: path order");
                    assert_eq!(rd, fd, "seed={seed} s{session}: bytes of {rp}");
                }
            }
        }
    }
}

#[test]
fn restores_match_source_ground_truth_under_fastcdc() {
    // Parity alone could hide an identical-but-wrong pair; anchor the
    // FastCDC engine to the generator's source bytes directly.
    let mut generator = Generator::new(DatasetSpec::tiny_test(), SEEDS[1]);
    let snap = generator.snapshot(0);
    let mut engine = engine_with(CdcAlgorithm::FastCdc, 4);
    engine.backup_session(&snap.as_sources()).expect("backup");
    let restored = engine.restore_session(0).expect("restore");
    assert_eq!(restored.len(), snap.file_count());
    let by_path: std::collections::HashMap<&str, &[u8]> =
        restored.iter().map(|f| (f.path.as_str(), f.data.as_slice())).collect();
    for f in &snap.files {
        assert_eq!(by_path[f.path.as_str()], f.materialize().as_slice(), "{}", f.path);
    }
}

/// A deterministic high-entropy buffer (content-defined cuts everywhere,
/// no degenerate forced-cut runs).
fn entropy_buffer(len: usize, seed: u64) -> Vec<u8> {
    let mut data = vec![0u8; len];
    Prng::derive(&[0xF1DE_117F, seed]).fill(&mut data);
    data
}

#[test]
fn both_algorithms_honour_the_size_contract() {
    let data = entropy_buffer(8 << 20, 7);
    for algorithm in CdcAlgorithm::ALL {
        let chunker = ContentChunker::new(DEFAULT_CDC.with_algorithm(algorithm));
        let p = *chunker.params();
        let spans = chunker.chunk(&data);
        for (i, s) in spans.iter().enumerate() {
            assert!(s.len <= p.max_size, "{algorithm} span {i}: {} > max", s.len);
            if i + 1 < spans.len() {
                assert!(s.len >= p.min_size, "{algorithm} span {i}: {} < min", s.len);
            }
        }
        let mean = data.len() / spans.len();
        assert!(
            (4 * 1024..=14 * 1024).contains(&mean),
            "{algorithm}: mean chunk {mean} strays from the 8 KiB target"
        );
        let forced = spans.iter().filter(|s| s.len == p.max_size).count();
        if algorithm == CdcAlgorithm::FastCdc {
            // Normalization must do its job: almost no forced cuts on
            // high-entropy data.
            assert!(
                forced * 20 <= spans.len(),
                "{algorithm}: {forced}/{} forced max-size cuts",
                spans.len()
            );
        }
    }
}

/// Chunk fingerprints of a buffer under one algorithm.
fn digests(chunker: &ContentChunker, data: &[u8]) -> HashSet<[u8; 20]> {
    chunker.chunk(data).iter().map(|s| aa_dedupe::hashing::sha1(s.slice(data))).collect()
}

#[test]
fn edit_churn_is_localized_not_cascading() {
    let data = entropy_buffer(4 << 20, 21);
    for algorithm in CdcAlgorithm::ALL {
        let chunker = ContentChunker::new(DEFAULT_CDC.with_algorithm(algorithm));
        let original = digests(&chunker, &data);
        let edits: [(&str, Vec<u8>); 3] = [
            ("prepend 7 bytes", {
                let mut v = b"shifted".to_vec();
                v.extend_from_slice(&data);
                v
            }),
            ("insert 64 bytes mid-stream", {
                let mut v = data.clone();
                let patch = entropy_buffer(64, 99);
                v.splice(data.len() / 2..data.len() / 2, patch);
                v
            }),
            ("delete 1 KiB at two-thirds", {
                let mut v = data.clone();
                let at = data.len() * 2 / 3;
                v.drain(at..at + 1024);
                v
            }),
        ];
        for (label, edited) in &edits {
            let after = digests(&chunker, edited);
            let lost = original.difference(&after).count();
            // A single edit may invalidate the chunk it lands in plus a
            // bounded re-synchronisation window — never a cascade. With
            // ~512 chunks in the buffer, 8 lost chunks (~1.6 %) is
            // already generous; a cascading resplit loses hundreds.
            assert!(
                lost <= 8,
                "{algorithm} / {label}: {lost}/{} chunks changed — resplit cascade",
                original.len()
            );
        }
    }
}

#[test]
fn repeated_churn_keeps_cumulative_dedup_high() {
    // Engine-level churn: back up, apply a small edit to the CDC-routed
    // file, back up again. Almost everything must dedupe under both
    // algorithms — the end-to-end consequence of localized churn.
    use aa_dedupe::filetype::{MemoryFile, SourceFile};
    let base = entropy_buffer(2 << 20, 5);
    for algorithm in CdcAlgorithm::ALL {
        let mut engine = engine_with(algorithm, 1);
        let v0 = [MemoryFile::new("user/doc/report.doc", base.clone())];
        let s0: Vec<&dyn SourceFile> = v0.iter().map(|f| f as &dyn SourceFile).collect();
        engine.backup_session(&s0).expect("backup 0");

        let mut edited = base.clone();
        edited.splice(500_000..500_000, b"a few new words".iter().copied());
        let v1 = [MemoryFile::new("user/doc/report.doc", edited)];
        let s1: Vec<&dyn SourceFile> = v1.iter().map(|f| f as &dyn SourceFile).collect();
        let report = engine.backup_session(&s1).expect("backup 1");

        // The insert dirties a handful of chunks; the session must store
        // well under 5 % of the file.
        assert!(
            report.stored_bytes * 20 < report.logical_bytes,
            "{algorithm}: churn session stored {} of {} logical bytes",
            report.stored_bytes,
            report.logical_bytes
        );
        // And the edited file restores bit-exactly.
        let restored = engine.restore_session(1).expect("restore");
        assert_eq!(restored[0].data, v1[0].data, "{algorithm}: restore after churn");
    }
}
