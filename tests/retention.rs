//! Retention: deleting old sessions must reclaim space without ever
//! touching data that newer sessions still reference.

use aa_dedupe::cloud::CloudSim;
use aa_dedupe::core::{AaDedupe, BackupScheme};
use aa_dedupe::workload::{DatasetSpec, Generator};

#[test]
fn rolling_retention_window_preserves_live_sessions() {
    let cloud = CloudSim::with_paper_defaults();
    let mut engine = AaDedupe::new(cloud);
    let mut generator = Generator::new(DatasetSpec::tiny_test(), 13);

    const WEEKS: usize = 5;
    const KEEP: usize = 2;
    let mut snapshots = Vec::new();
    for week in 0..WEEKS {
        let snap = generator.snapshot(week);
        engine.backup_session(&snap.as_sources()).expect("backup");
        snapshots.push(snap);
        // Retention: drop everything older than the KEEP most recent.
        // Each delete must succeed — the target session was committed
        // above and is deleted exactly once.
        if week + 1 > KEEP {
            engine
                .delete_session(week + 1 - KEEP - 1)
                .unwrap_or_else(|e| panic!("week {week}: delete failed: {e}"));
        }
    }

    // Old sessions are gone...
    for week in 0..WEEKS - KEEP {
        assert!(engine.restore_session(week).is_err(), "week {week} should be deleted");
    }
    // ...and the retained ones restore bit-exactly despite sharing chunks
    // with deleted sessions.
    for (week, snap) in snapshots.iter().enumerate().skip(WEEKS - KEEP) {
        let restored = engine.restore_session(week).expect("retained restore");
        assert_eq!(restored.len(), snap.file_count(), "week {week}");
        let by_path: std::collections::HashMap<_, _> =
            restored.iter().map(|f| (f.path.as_str(), &f.data)).collect();
        for f in &snap.files {
            assert_eq!(
                by_path[f.path.as_str()],
                &f.materialize(),
                "week {week}: {}",
                f.path
            );
        }
    }
}

#[test]
fn deleting_everything_empties_container_space() {
    let cloud = CloudSim::with_paper_defaults();
    let mut engine = AaDedupe::new(cloud);
    let mut generator = Generator::new(DatasetSpec::tiny_test(), 21);
    for week in 0..3 {
        let snap = generator.snapshot(week);
        engine.backup_session(&snap.as_sources()).expect("backup");
    }
    for week in 0..3 {
        engine.delete_session(week).expect("delete");
    }
    // All containers reclaimed; only index snapshots may remain.
    let leftover = engine.cloud().store().list("aa-dedupe/containers/");
    assert!(leftover.is_empty(), "leaked containers: {leftover:?}");
    let manifests = engine.cloud().store().list("aa-dedupe/manifests/");
    assert!(manifests.is_empty(), "leaked manifests: {manifests:?}");
}
