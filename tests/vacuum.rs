//! Vacuum drills: space reclamation must never cost a byte of restorable
//! data — not under crashes at any commit operation, not across worker
//! counts, not on reruns.

use std::collections::BTreeMap;
use std::sync::Arc;

use aa_dedupe::cloud::{
    CloudSim, FaultInjectingBackend, FaultPlan, ObjectBackend, ObjectStore, PriceModel, WanModel,
};
use aa_dedupe::core::{
    AaDedupe, AaDedupeConfig, BackupScheme, PipelineConfig, RetentionPolicy, RetryPolicy,
    VacuumOptions,
};
use aa_dedupe::filetype::{MemoryFile, SourceFile};

fn cloud_over(backend: Arc<dyn ObjectBackend>) -> CloudSim {
    CloudSim::with_backend(backend, WanModel::paper_defaults(), PriceModel::s3_april_2011())
}

fn config_with(workers: usize) -> AaDedupeConfig {
    AaDedupeConfig {
        pipeline: PipelineConfig::with_workers(workers),
        retry: RetryPolicy::no_retries(),
        index_sync_interval: 1,
        ..AaDedupeConfig::default()
    }
}

/// Churned sessions: a stable shared core plus per-session unique data, so
/// deleting old sessions strands dead chunks inside containers that newer
/// sessions still reference — exactly what vacuum exists to reclaim.
fn churn_files(session: usize) -> Vec<MemoryFile> {
    let stable = b"the quick brown fox jumps over the lazy dog ".repeat(3000);
    let mut doc = stable.clone();
    doc.extend(format!("session {session} edits ").repeat(2000 + session * 37).into_bytes());
    vec![
        MemoryFile::new("user/doc/report.doc", doc),
        MemoryFile::new("user/pdf/shared.pdf", vec![0x42; 150_000]),
        MemoryFile::new(
            "user/mp3/track.mp3",
            (0..120_000u32).map(|i| ((i as usize * (session + 3)) % 251) as u8).collect(),
        ),
        MemoryFile::new("user/txt/note.txt", format!("tiny note v{session}").into_bytes()),
    ]
}

fn backup(engine: &mut AaDedupe, files: &[MemoryFile]) {
    let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
    engine.backup_session(&sources).expect("backup");
}

fn assert_restores_bit_exact(engine: &AaDedupe, session: usize, expect: &[MemoryFile]) {
    let restored = engine.restore_session(session).expect("restore");
    let by_path: BTreeMap<_, _> = restored.into_iter().map(|f| (f.path, f.data)).collect();
    assert_eq!(by_path.len(), expect.len(), "session {session} file count");
    for f in expect {
        assert_eq!(by_path.get(&f.path), Some(&f.data), "session {session} file {}", f.path);
    }
}

/// A repository with `sessions` churned sessions, the first `deleted` of
/// them already deleted — dead chunks stranded in shared containers.
fn churned_repository(
    sessions: usize,
    deleted: usize,
    workers: usize,
) -> (Arc<ObjectStore>, Vec<Vec<MemoryFile>>) {
    let inner = Arc::new(ObjectStore::new());
    let mut engine = AaDedupe::with_config(
        cloud_over(Arc::clone(&inner) as Arc<dyn ObjectBackend>),
        config_with(workers),
    );
    let mut corpus = Vec::new();
    for s in 0..sessions {
        let files = churn_files(s);
        backup(&mut engine, &files);
        corpus.push(files);
    }
    for s in 0..deleted {
        engine.delete_session(s).expect("delete");
    }
    (inner, corpus)
}

#[test]
fn vacuum_reclaims_space_and_preserves_every_restore() {
    for workers in [1usize, 4] {
        let (inner, corpus) = churned_repository(6, 3, workers);
        let mut engine = AaDedupe::open(
            cloud_over(Arc::clone(&inner) as Arc<dyn ObjectBackend>),
            config_with(workers),
        )
        .expect("open");
        let report = engine.vacuum(&VacuumOptions::default()).expect("vacuum");
        assert!(!report.dry_run);
        assert!(report.containers_rewritten > 0, "workers={workers}: churn must leave prey");
        assert!(report.bytes_reclaimed > 0, "workers={workers}");
        assert!(
            report.stored_bytes_after < report.stored_bytes_before,
            "workers={workers}: {report:?}"
        );
        // Every retained session restores bit-exactly through the
        // vacuumed engine...
        for (s, files) in corpus.iter().enumerate().skip(3) {
            assert_restores_bit_exact(&engine, s, files);
        }
        // ...and through a cold reopen over the bare store.
        let cold = AaDedupe::open(
            cloud_over(Arc::clone(&inner) as Arc<dyn ObjectBackend>),
            config_with(workers),
        )
        .expect("cold reopen");
        assert_eq!(cold.orphans_swept(), 0, "workers={workers}: vacuum left orphans");
        for (s, files) in corpus.iter().enumerate().skip(3) {
            assert_restores_bit_exact(&cold, s, files);
        }
    }
}

#[test]
fn vacuum_rerun_is_idempotent() {
    let (inner, _corpus) = churned_repository(6, 3, 1);
    let mut engine = AaDedupe::open(
        cloud_over(Arc::clone(&inner) as Arc<dyn ObjectBackend>),
        config_with(1),
    )
    .expect("open");
    let first = engine.vacuum(&VacuumOptions::default()).expect("first pass");
    assert!(first.containers_rewritten > 0);
    let second = engine.vacuum(&VacuumOptions::default()).expect("second pass");
    assert_eq!(second.containers_rewritten, 0, "{second:?}");
    assert_eq!(second.containers_deleted, 0, "{second:?}");
    assert_eq!(second.bytes_reclaimed, 0, "{second:?}");
    assert_eq!(second.stored_bytes_after, first.stored_bytes_after);
}

#[test]
fn dry_run_mutates_nothing_and_predicts_the_real_pass() {
    let (inner, _corpus) = churned_repository(6, 3, 1);
    let listing_before: Vec<String> = inner.list("aa-dedupe/");
    let bytes_before = inner.stored_bytes();

    let mut engine = AaDedupe::open(
        cloud_over(Arc::clone(&inner) as Arc<dyn ObjectBackend>),
        config_with(1),
    )
    .expect("open");
    let dry =
        engine.vacuum(&VacuumOptions { dry_run: true, ..VacuumOptions::default() }).expect("dry");
    assert!(dry.dry_run);
    assert!(dry.containers_rewritten > 0);
    assert_eq!(inner.list("aa-dedupe/"), listing_before, "dry run wrote or deleted objects");
    assert_eq!(inner.stored_bytes(), bytes_before);
    assert_eq!(dry.stored_bytes_after, dry.stored_bytes_before);

    // The engine is untouched: a real pass right after sees the same work
    // and reclaims at least what the dry run predicted (deletes can only
    // add sweep-debt objects the dry run also counted).
    let real = engine.vacuum(&VacuumOptions::default()).expect("real");
    assert_eq!(real.containers_rewritten, dry.containers_rewritten);
    assert_eq!(real.relocations, dry.relocations);
    assert_eq!(real.bytes_reclaimed, dry.bytes_reclaimed);
}

#[test]
fn backup_after_vacuum_dedups_identically() {
    // Vacuum must be invisible to dedup: the same next session over a
    // vacuumed and an un-vacuumed clone of the repository must produce
    // identical dedup decisions (placements move, fingerprints do not).
    let next = churn_files(7);
    let mut reports = Vec::new();
    for vacuum in [false, true] {
        let (inner, _corpus) = churned_repository(6, 3, 1);
        let mut engine = AaDedupe::open(
            cloud_over(Arc::clone(&inner) as Arc<dyn ObjectBackend>),
            config_with(1),
        )
        .expect("open");
        if vacuum {
            let r = engine.vacuum(&VacuumOptions::default()).expect("vacuum");
            assert!(r.containers_rewritten > 0);
        }
        let sources: Vec<&dyn SourceFile> = next.iter().map(|f| f as &dyn SourceFile).collect();
        let report = engine.backup_session(&sources).expect("backup after vacuum");
        assert_restores_bit_exact(&engine, 6, &next);
        reports.push((report.stored_bytes, report.chunks_duplicate, report.chunks_total));
    }
    assert_eq!(reports[0], reports[1], "vacuum changed dedup behavior");
}

#[test]
fn poisoned_engine_refuses_to_vacuum() {
    use aa_dedupe::core::BackupError;
    let inner: Arc<dyn ObjectBackend> = Arc::new(ObjectStore::new());
    let faulty: Arc<dyn ObjectBackend> = Arc::new(FaultInjectingBackend::new(
        Arc::clone(&inner),
        FaultPlan::new(7).fail_prefix_puts("aa-dedupe/containers/", u32::MAX, false),
    ));
    let mut engine = AaDedupe::with_config(cloud_over(faulty), config_with(1));
    let files = churn_files(0);
    let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
    engine.backup_session(&sources).expect_err("permanent fault poisons");
    let err = engine.vacuum(&VacuumOptions::default()).expect_err("poisoned");
    assert!(matches!(err, BackupError::Poisoned(_)), "{err:?}");
}

// ---------------------------------------------------------------------------
// The acceptance drill: a 20-session churned corpus under keep-last-5
// retention must reclaim at least 30% of stored bytes, without touching
// the retained sessions or the dedup ratio of subsequent backups.
// ---------------------------------------------------------------------------

/// One session of the longitudinal corpus: a stable archive, a growing
/// append-only log, and a rolling window of three per-session unique
/// "photo imports" — the kind of churn (media comes, media goes) that
/// strands dead chunks inside shared containers.
fn longitudinal_session(s: usize) -> Vec<MemoryFile> {
    let mut files = vec![
        MemoryFile::new("user/doc/archive.doc", b"stable archived words ".repeat(14_000)),
        MemoryFile::new(
            "user/txt/journal.txt",
            (0..=s).flat_map(|w| format!("week {w} journal entry ").repeat(1200).into_bytes()).collect::<Vec<u8>>(),
        ),
    ];
    for roll in s.saturating_sub(2)..=s {
        files.push(MemoryFile::new(
            format!("user/jpg/roll-{roll:03}.jpg"),
            (0..250_000u32).map(|i| ((i as usize).wrapping_mul(roll + 7) % 253) as u8).collect::<Vec<u8>>(),
        ));
    }
    files
}

#[test]
fn longitudinal_churn_with_keep_last_five_reclaims_thirty_percent() {
    const WEEKS: usize = 20;
    const KEEP: usize = 5;
    let build = |apply_vacuum: bool| {
        let inner = Arc::new(ObjectStore::new());
        let mut engine = AaDedupe::with_config(
            cloud_over(Arc::clone(&inner) as Arc<dyn ObjectBackend>),
            config_with(1),
        );
        let mut corpus = Vec::new();
        for week in 0..WEEKS {
            let files = longitudinal_session(week);
            backup(&mut engine, &files);
            corpus.push(files);
        }
        let before = inner.stored_bytes();
        let retention =
            engine.apply_retention(&RetentionPolicy::KeepLast(KEEP)).expect("retention");
        assert_eq!(retention.examined, WEEKS);
        assert_eq!(retention.retained, KEEP);
        assert_eq!(retention.deleted, WEEKS - KEEP);
        let vacuum_report = apply_vacuum
            .then(|| engine.vacuum(&VacuumOptions::default()).expect("vacuum"));
        let after = inner.stored_bytes();
        // Retained sessions restore bit-exactly, deleted ones are gone.
        for week in 0..WEEKS - KEEP {
            assert!(engine.restore_session(week).is_err(), "week {week} deleted");
        }
        for (week, files) in corpus.iter().enumerate().skip(WEEKS - KEEP) {
            assert_restores_bit_exact(&engine, week, files);
        }
        // The next backup after pruning: its dedup behavior is the
        // vacuum-invariance probe.
        let next = longitudinal_session(WEEKS);
        let sources: Vec<&dyn SourceFile> = next.iter().map(|f| f as &dyn SourceFile).collect();
        let report = engine.backup_session(&sources).expect("week 20");
        assert_restores_bit_exact(&engine, WEEKS, &next);
        (before, after, vacuum_report, (report.stored_bytes, report.chunks_duplicate))
    };

    let (before, after, vacuum_report, dedup_with_vacuum) = build(true);
    let vacuum_report = vacuum_report.expect("vacuum ran");
    assert!(vacuum_report.bytes_reclaimed > 0, "{vacuum_report:?}");
    let reclaimed = before - after;
    assert!(
        reclaimed as f64 >= 0.30 * before as f64,
        "retention+vacuum reclaimed {reclaimed} of {before} bytes ({:.1}%), need >= 30%",
        100.0 * reclaimed as f64 / before as f64
    );

    // Control: the same pruning without vacuum. The subsequent backup's
    // dedup decisions must be identical — vacuum moves placements, never
    // fingerprints.
    let (_, control_after, _, dedup_without_vacuum) = build(false);
    assert_eq!(dedup_with_vacuum, dedup_without_vacuum, "vacuum changed the dedup ratio");
    assert!(after < control_after, "vacuum reclaimed nothing beyond retention");
}

// ---------------------------------------------------------------------------
// Crash drills: crash-stop the backend at every backend operation of
// open + vacuum; every retained session must stay restorable, and a rerun
// must converge.
// ---------------------------------------------------------------------------

#[test]
fn vacuum_crash_at_every_operation_preserves_all_sessions() {
    for workers in [1usize, 4] {
        const SESSIONS: usize = 4;
        const DELETED: usize = 2;
        // Dry run: count backend operations of open + vacuum.
        let total_ops = {
            let (inner, _) = churned_repository(SESSIONS, DELETED, workers);
            let counting = Arc::new(FaultInjectingBackend::new(
                Arc::clone(&inner) as Arc<dyn ObjectBackend>,
                FaultPlan::new(0),
            ));
            let mut e = AaDedupe::open(
                cloud_over(counting.clone() as Arc<dyn ObjectBackend>),
                config_with(workers),
            )
            .expect("open");
            let report = e.vacuum(&VacuumOptions::default()).expect("clean vacuum");
            assert!(report.containers_rewritten > 0, "drill needs a non-trivial pass");
            counting.ops_attempted()
        };
        assert!(total_ops >= 5, "expected open+vacuum traffic, got {total_ops}");

        for crash_at in 1..=total_ops {
            let (inner, corpus) = churned_repository(SESSIONS, DELETED, workers);
            let crashing = Arc::new(FaultInjectingBackend::new(
                Arc::clone(&inner) as Arc<dyn ObjectBackend>,
                FaultPlan::new(0).crash_at_op(crash_at),
            ));
            // Crash anywhere during open + vacuum; failures are expected.
            if let Ok(mut e) = AaDedupe::open(
                cloud_over(crashing.clone() as Arc<dyn ObjectBackend>),
                config_with(workers),
            ) {
                let _interrupted = e.vacuum(&VacuumOptions::default());
            }

            // Recovery: reopen over the bare store. Every retained
            // session restores bit-exactly whatever the crash point.
            let e = AaDedupe::open(
                cloud_over(Arc::clone(&inner) as Arc<dyn ObjectBackend>),
                config_with(workers),
            )
            .unwrap_or_else(|err| {
                panic!("workers={workers} crash_at={crash_at}: reopen failed: {err}")
            });
            for (s, files) in corpus.iter().enumerate().skip(DELETED) {
                assert_restores_bit_exact(&e, s, files);
            }

            // And a rerun converges: vacuum to completion, verify again.
            let mut e = e;
            e.vacuum(&VacuumOptions::default()).unwrap_or_else(|err| {
                panic!("workers={workers} crash_at={crash_at}: rerun failed: {err}")
            });
            for (s, files) in corpus.iter().enumerate().skip(DELETED) {
                assert_restores_bit_exact(&e, s, files);
            }
        }
    }
}
