//! Concurrency stress: colliding chunks racing through the pipeline.
//!
//! Two files of the same application type share identical content, so
//! every chunk of the second file collides with a chunk of the first.
//! With eight workers the chunk+hash stage races both files, and the
//! per-app dedup shard must still make exactly one store decision per
//! unique fingerprint. A lost-update (insert racing lookup) or a
//! double-append would inflate `stored_bytes`; run the session in a loop
//! so a rare interleaving still has many chances to show up.
//!
//! `EXPERIMENTS.md` documents the ThreadSanitizer invocation that runs
//! this same binary under TSan.

use aa_dedupe::cloud::CloudSim;
use aa_dedupe::core::{AaDedupe, AaDedupeConfig, BackupScheme, PipelineConfig, PipelineMode};
use aa_dedupe::filetype::{MemoryFile, SourceFile};

const ITERATIONS: usize = 16;

fn shared_content(len: usize) -> Vec<u8> {
    let mut x = 0x9e3779b97f4a7c15u64;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 32) as u8
        })
        .collect()
}

fn run_once(files: &[MemoryFile], pipeline: PipelineConfig) -> (u64, u64, u64) {
    let config = AaDedupeConfig { pipeline, ..AaDedupeConfig::default() };
    let mut engine = AaDedupe::with_config(CloudSim::with_paper_defaults(), config);
    let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
    let r = engine.backup_session(&sources).expect("backup");
    (r.stored_bytes, r.chunks_total, r.chunks_duplicate)
}

#[test]
fn colliding_chunks_never_double_count_stored_bytes() {
    // Two 64 KiB .doc files (static 8 KiB chunking, same AppType ⇒ same
    // index partition and container stream) with identical bytes: the
    // second file must dedup completely against the first.
    let content = shared_content(64 * 1024);
    let files = vec![
        MemoryFile::new("stress/a.doc".to_string(), content.clone()),
        MemoryFile::new("stress/b.doc".to_string(), content),
    ];

    let serial = run_once(
        &files,
        PipelineConfig { workers: 1, queue_depth: 4, mode: PipelineMode::Serial },
    );
    let (stored, total, duplicate) = serial;
    assert_eq!(stored, 64 * 1024, "serial: second file must fully dedup");
    assert_eq!(duplicate * 2, total, "serial: exactly half the chunks are duplicates");

    for iteration in 0..ITERATIONS {
        let parallel = run_once(
            &files,
            PipelineConfig { workers: 8, queue_depth: 2, mode: PipelineMode::Parallel },
        );
        assert_eq!(
            parallel, serial,
            "iteration {iteration}: (stored, total, duplicate) diverged under workers=8"
        );
    }
}

#[test]
fn many_identical_files_across_apps_stay_consistent() {
    // Harder interleaving: ten file pairs across several app types, each
    // pair internally identical. Streams race each other end-to-end but
    // per-pair dedup totals must match the serial run every iteration.
    let exts = ["doc", "pdf", "txt", "mp3", "zip"];
    let mut files = Vec::new();
    for (i, ext) in exts.iter().enumerate() {
        let content = shared_content(48 * 1024 + i * 4096);
        files.push(MemoryFile::new(format!("m/{i}a.{ext}"), content.clone()));
        files.push(MemoryFile::new(format!("m/{i}b.{ext}"), content));
    }

    let serial = run_once(
        &files,
        PipelineConfig { workers: 1, queue_depth: 4, mode: PipelineMode::Serial },
    );
    for iteration in 0..ITERATIONS {
        let parallel = run_once(
            &files,
            PipelineConfig { workers: 8, queue_depth: 2, mode: PipelineMode::Parallel },
        );
        assert_eq!(parallel, serial, "iteration {iteration}: dedup counters diverged");
    }
}
