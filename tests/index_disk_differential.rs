//! Differential test: a disk-backed index must be observationally
//! identical to the RAM-resident one.
//!
//! The disk-backed `IndexPartition` (write-back LRU cache + on-disk
//! segments + cuckoo existence filter) changes *where* index entries
//! live, never *what* the index answers: for a fixed file ordering, every
//! dedup decision — and therefore every container, manifest and index
//! snapshot uploaded to the cloud, and every restored byte — must be
//! bit-identical to a run with the default RAM-resident partitions. Only
//! the RAM/disk stat classification (ram_hits vs disk_reads, filter
//! counters) may differ. This holds across the serial and parallel
//! pipelines, so the matrix here is {resident, disk} × workers {1, 4}.

use std::collections::BTreeMap;
use std::path::PathBuf;

use aa_dedupe::cloud::CloudSim;
use aa_dedupe::core::{AaDedupe, AaDedupeConfig, BackupScheme, PipelineConfig, PipelineMode};
use aa_dedupe::filetype::SourceFile;
use aa_dedupe::metrics::SessionReport;
use aa_dedupe::workload::{DatasetSpec, Generator, Snapshot};

const SEED: u64 = 20_260_807;
const SESSIONS: usize = 2;
/// Small enough that the generated corpus overflows every partition's
/// cache, forcing real segment spills and disk probes.
const RAM_BUDGET: usize = 32;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "aadedupe-diskdiff-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn config(workers: usize, index_dir: Option<PathBuf>) -> AaDedupeConfig {
    AaDedupeConfig {
        pipeline: PipelineConfig {
            workers,
            queue_depth: 4,
            mode: if workers > 1 { PipelineMode::Parallel } else { PipelineMode::Serial },
        },
        ram_entries_per_partition: RAM_BUDGET,
        index_dir,
        ..AaDedupeConfig::default()
    }
}

/// Cloud-visible state plus per-session reports after a run.
struct Observation {
    reports: Vec<SessionReport>,
    restores: Vec<Vec<(String, Vec<u8>)>>,
    objects: BTreeMap<String, Vec<u8>>,
}

fn run(cfg: AaDedupeConfig, sessions: &[Vec<&dyn SourceFile>]) -> Observation {
    let mut engine = AaDedupe::with_config(CloudSim::with_paper_defaults(), cfg);
    let reports: Vec<SessionReport> = sessions
        .iter()
        .map(|sources| engine.backup_session(sources).expect("backup"))
        .collect();
    assert!(engine.index().io_error().is_none(), "index storage must stay healthy");
    let restores = (0..sessions.len())
        .map(|s| {
            engine
                .restore_session(s)
                .unwrap_or_else(|e| panic!("restore of session {s} failed: {e}"))
                .into_iter()
                .map(|f| (f.path, f.data))
                .collect()
        })
        .collect();
    let store = engine.cloud().store();
    let objects = store
        .list("")
        .into_iter()
        .map(|key| {
            let bytes =
                store.get(&key).unwrap().unwrap_or_else(|| panic!("listed key {key} missing"));
            (key, bytes)
        })
        .collect();
    Observation { reports, restores, objects }
}

/// Everything except the RAM/disk stat classification must match.
fn assert_equivalent(resident: &Observation, disk: &Observation, label: &str) {
    for (r, d) in resident.reports.iter().zip(&disk.reports) {
        let s = r.session;
        assert_eq!(r.logical_bytes, d.logical_bytes, "{label} s{s}: logical_bytes");
        assert_eq!(r.stored_bytes, d.stored_bytes, "{label} s{s}: stored_bytes");
        assert_eq!(r.transferred_bytes, d.transferred_bytes, "{label} s{s}: transferred_bytes");
        assert_eq!(r.chunks_total, d.chunks_total, "{label} s{s}: chunks_total");
        assert_eq!(r.chunks_duplicate, d.chunks_duplicate, "{label} s{s}: chunks_duplicate");
        assert_eq!(r.put_requests, d.put_requests, "{label} s{s}: put_requests");
        // index_disk_reads is exactly the classification that differs:
        // modelled LRU misses vs real segment probes. Not compared.
    }
    for (session, (r, d)) in resident.restores.iter().zip(&disk.restores).enumerate() {
        assert_eq!(r.len(), d.len(), "{label} s{session}: restored file count");
        for ((rp, rd), (dp, dd)) in r.iter().zip(d) {
            assert_eq!(rp, dp, "{label} s{session}: restore order/path");
            assert_eq!(rd, dd, "{label} s{session}: bytes of {rp}");
        }
    }
    let rk: Vec<&String> = resident.objects.keys().collect();
    let dk: Vec<&String> = disk.objects.keys().collect();
    assert_eq!(rk, dk, "{label}: cloud key set");
    for (key, bytes) in &resident.objects {
        assert_eq!(bytes, &disk.objects[key], "{label}: cloud object {key}");
    }
}

#[test]
fn disk_backed_matches_resident_across_pipelines() {
    let mut generator = Generator::new(DatasetSpec::tiny_test(), SEED);
    let snaps: Vec<Snapshot> = (0..SESSIONS).map(|w| generator.snapshot(w)).collect();
    let sessions: Vec<Vec<&dyn SourceFile>> = snaps.iter().map(|s| s.as_sources()).collect();

    let resident_serial = run(config(1, None), &sessions);
    for workers in [1usize, 4] {
        let dir = temp_dir(&format!("w{workers}"));
        let disk = run(config(workers, Some(dir.clone())), &sessions);
        assert_equivalent(&resident_serial, &disk, &format!("disk workers={workers}"));
        std::fs::remove_dir_all(&dir).ok();

        if workers > 1 {
            let resident_parallel = run(config(workers, None), &sessions);
            assert_equivalent(
                &resident_serial,
                &resident_parallel,
                &format!("resident workers={workers}"),
            );
        }
    }
}

/// What the crash+recover drill observes: the third session's report,
/// the final cloud namespace, and the recovered restore of session 2.
type RecoveryObservation = (SessionReport, BTreeMap<String, Vec<u8>>, Vec<(String, Vec<u8>)>);

/// Runs the crash+recover flow: two sessions, lose all local state
/// (including any index segment directory), recover a fresh engine from
/// the cloud, run a third session.
fn crash_and_recover(
    sessions: &[Vec<&dyn SourceFile>],
    crash_dir: Option<PathBuf>,
    recovered_dir: Option<PathBuf>,
) -> RecoveryObservation {
    let mut engine =
        AaDedupe::with_config(CloudSim::with_paper_defaults(), config(1, crash_dir.clone()));
    for sources in &sessions[..2] {
        engine.backup_session(sources).expect("backup");
    }
    let cloud = engine.cloud().clone();
    drop(engine);
    if let Some(d) = &crash_dir {
        std::fs::remove_dir_all(d).ok(); // the local disk is gone
    }

    let mut recovered = AaDedupe::with_config(cloud, config(1, recovered_dir));
    recovered.recover_index_from_cloud().expect("recover");
    assert!(recovered.index().io_error().is_none());
    let report = recovered.backup_session(&sessions[2]).expect("post-recovery backup");

    let store = recovered.cloud().store();
    let objects = store
        .list("")
        .into_iter()
        .map(|key| {
            let bytes =
                store.get(&key).unwrap().unwrap_or_else(|| panic!("listed key {key} missing"));
            (key, bytes)
        })
        .collect();
    let restore = recovered
        .restore_session(2)
        .expect("post-recovery restore")
        .into_iter()
        .map(|f| (f.path, f.data))
        .collect();
    (report, objects, restore)
}

#[test]
fn disk_backed_recovery_drill() {
    // Disaster recovery with a disk-backed index: after losing all local
    // state (including the index segment directory), the engine rebuilt
    // from the cloud snapshot + manifests must behave bit-identically to
    // a RAM-resident engine recovered the same way — segments and
    // existence filters are rebuilt in a fresh directory as the snapshot
    // loads. (A recovered engine legitimately differs from a *never-
    // crashed* one in tiny-file packing: `tiny_seen` is not persisted, so
    // the first post-recovery session re-packs tiny files once. The
    // resident↔disk comparison is immune to that, and big-file dedup is
    // additionally pinned against the never-crashed ground truth below.)
    let mut generator = Generator::new(DatasetSpec::tiny_test(), SEED ^ 0xdead);
    let snaps: Vec<Snapshot> = (0..3).map(|w| generator.snapshot(w)).collect();
    let sessions: Vec<Vec<&dyn SourceFile>> = snaps.iter().map(|s| s.as_sources()).collect();

    let healthy_dir = temp_dir("healthy");
    let healthy = run(config(1, Some(healthy_dir.clone())), &sessions);
    std::fs::remove_dir_all(&healthy_dir).ok();

    let (resident_report, resident_objects, resident_restore) =
        crash_and_recover(&sessions, None, None);
    let crash_dir = temp_dir("crashed");
    let recovered_dir = temp_dir("recovered");
    let (disk_report, disk_objects, disk_restore) =
        crash_and_recover(&sessions, Some(crash_dir), Some(recovered_dir.clone()));
    std::fs::remove_dir_all(&recovered_dir).ok();

    // Disk-backed recovery ≡ resident recovery, bit for bit.
    assert_eq!(disk_report.stored_bytes, resident_report.stored_bytes, "recovery stored_bytes");
    assert_eq!(
        disk_report.transferred_bytes, resident_report.transferred_bytes,
        "recovery transferred_bytes"
    );
    assert_eq!(disk_report.chunks_total, resident_report.chunks_total, "recovery chunks_total");
    assert_eq!(
        disk_report.chunks_duplicate, resident_report.chunks_duplicate,
        "recovery chunks_duplicate"
    );
    let rk: Vec<&String> = resident_objects.keys().collect();
    let dk: Vec<&String> = disk_objects.keys().collect();
    assert_eq!(rk, dk, "recovery cloud key set");
    for (key, bytes) in &resident_objects {
        assert_eq!(bytes, &disk_objects[key], "recovery cloud object {key}");
    }

    // The recovered restores are bit-exact against the healthy one.
    // (Chunk counts are NOT compared against the never-crashed engine:
    // the re-packed tiny files count as chunks there too.)
    assert_eq!(disk_restore, resident_restore, "recovered restores diverge");
    assert_eq!(disk_restore, healthy.restores[2], "recovered session-2 restore");
}
