//! Scheme comparison: the paper's five backup clients on one workload.
//!
//! A miniature of the full evaluation (`cargo run -p aadedupe-bench --bin
//! evaluation`): Jungle Disk, BackupPC, Avamar, SAM and AA-Dedupe back up
//! the same three weekly snapshots; the table shows where each scheme's
//! strategy pays or costs.
//!
//! ```sh
//! cargo run --release --example scheme_comparison
//! ```

use aa_dedupe::baselines::all_schemes;
use aa_dedupe::cloud::CloudSim;
use aa_dedupe::workload::{DatasetSpec, Generator};

fn main() {
    let sessions = 3;
    let bytes_per_week = 12 << 20;

    println!(
        "{:<12} {:>10} {:>10} {:>8} {:>8} {:>10} {:>9}",
        "scheme", "stored", "uploaded", "PUTs", "DR", "DE", "cost $"
    );
    for scheme_index in 0..5 {
        // Fresh cloud + scheme + identical workload per contender.
        let cloud = CloudSim::with_paper_defaults();
        let mut scheme = all_schemes(&cloud).remove(scheme_index);
        let mut generator = Generator::new(DatasetSpec::paper_scaled(bytes_per_week), 7);

        let mut stored = 0u64;
        let mut uploaded = 0u64;
        let mut puts = 0u64;
        let mut logical = 0u64;
        let mut de_sum = 0.0;
        for week in 0..sessions {
            let snapshot = generator.snapshot(week);
            let r = scheme.backup_session(&snapshot.as_sources()).expect("backup failed");
            stored += r.stored_bytes;
            uploaded += r.transferred_bytes;
            puts += r.put_requests;
            logical += r.logical_bytes;
            de_sum += r.de();
        }
        // Every scheme must restore its last session bit-exactly; spot-check.
        let restored = scheme.restore_session(sessions - 1).expect("restore failed");
        assert!(!restored.is_empty());

        println!(
            "{:<12} {:>10} {:>10} {:>8} {:>8.2} {:>10} {:>9.4}",
            scheme.name(),
            format!("{} KiB", stored >> 10),
            format!("{} KiB", uploaded >> 10),
            puts,
            logical as f64 / stored.max(1) as f64,
            format!("{} KiB/s", (de_sum / sessions as f64) as u64 >> 10),
            cloud.monthly_cost().total(),
        );
    }
    println!(
        "\nexpected shape: Jungle Disk stores the most; Avamar/SAM store little but pay in \
         PUTs and CPU; AA-Dedupe matches their storage with far fewer requests."
    );
}
