//! Disaster recovery: resume a client from nothing but its cloud state.
//!
//! AA-Dedupe periodically synchronises its application-aware index into
//! cloud storage (paper §III.E), and its manifests + containers are
//! self-describing. This example wipes the client — the "stolen laptop"
//! scenario — resumes from the cloud alone with [`AaDedupe::open`],
//! cross-checks the uploaded index snapshot against the rebuilt state,
//! and shows that deduplication and restore continue seamlessly.
//!
//! ```sh
//! cargo run --release --example disaster_recovery
//! ```

use aa_dedupe::cloud::CloudSim;
use aa_dedupe::core::{AaDedupe, AaDedupeConfig, BackupScheme};
use aa_dedupe::workload::{DatasetSpec, Generator};

fn main() {
    let cloud = CloudSim::with_paper_defaults();
    // Sync the index to the cloud after every session.
    let config = AaDedupeConfig { index_sync_interval: 1, ..AaDedupeConfig::default() };
    let mut engine = AaDedupe::with_config(cloud.clone(), config.clone());

    let mut generator = Generator::new(DatasetSpec::paper_scaled(8 << 20), 99);
    let week0 = generator.snapshot(0);
    let r0 = engine.backup_session(&week0.as_sources()).expect("backup failed");
    let indexed = engine.index().len();
    println!("week 0 backed up: {} chunks indexed, {} bytes stored", indexed, r0.stored_bytes);

    // --- disaster: the laptop dies; a new client resumes from the cloud --
    drop(engine);
    let mut recovered = AaDedupe::open(cloud.clone(), config).expect("resume failed");
    assert_eq!(recovered.sessions_completed(), 1, "session counter resumed");
    assert_eq!(recovered.index().len(), indexed, "index rebuilt from manifests");
    println!("resumed from cloud: session counter at {}, {} chunks indexed",
        recovered.sessions_completed(), recovered.index().len());

    // The periodically-synced index snapshot agrees with the rebuilt state.
    recovered.recover_index_from_cloud().expect("snapshot recovery failed");
    assert_eq!(recovered.index().len(), indexed, "snapshot matches manifests");
    println!("cloud index snapshot cross-checked: {} chunks", recovered.index().len());

    // The resumed client dedupes week 1 against week 0's chunks.
    let week1 = generator.snapshot(1);
    let r1 = recovered.backup_session(&week1.as_sources()).expect("backup failed");
    println!(
        "week 1 on resumed client: {} logical, {} stored (dedup against recovered state works)",
        r1.logical_bytes, r1.stored_bytes
    );
    assert!(
        r1.stored_bytes < r0.stored_bytes / 2,
        "most of week 1 should dedupe against week 0"
    );

    // And week 0's data itself is still fully restorable.
    let restored = recovered.restore_session(0).expect("restore failed");
    assert_eq!(restored.len(), week0.file_count());
    for f in &week0.files {
        let got = restored.iter().find(|r| r.path == f.path).expect("file present");
        assert_eq!(got.data, f.materialize(), "{}", f.path);
    }
    println!("week 0 restores bit-exactly on the resumed client ({} files)", restored.len());
}
