//! Weekly backups: drive AA-Dedupe with the synthetic PC workload.
//!
//! Reproduces the paper's usage model in miniature — consecutive weekly
//! *full* backups of an evolving user directory — and prints the
//! per-session dedup measurements.
//!
//! ```sh
//! cargo run --release --example weekly_backups
//! ```

use aa_dedupe::cloud::CloudSim;
use aa_dedupe::core::{AaDedupe, BackupScheme};
use aa_dedupe::workload::{DatasetSpec, Generator};

fn main() {
    let weeks = 5;
    // ~16 MiB of logical data per weekly snapshot (scale up freely).
    let spec = DatasetSpec::paper_scaled(16 << 20);
    let mut generator = Generator::new(spec, 42);

    let cloud = CloudSim::with_paper_defaults();
    let mut engine = AaDedupe::new(cloud);

    println!("{:<6} {:>9} {:>10} {:>9} {:>7} {:>10} {:>9}",
        "week", "files", "logical", "stored", "DR", "DE", "window");
    for week in 0..weeks {
        let snapshot = generator.snapshot(week);
        let report = engine.backup_session(&snapshot.as_sources()).expect("backup failed");
        println!(
            "{:<6} {:>9} {:>10} {:>9} {:>7.2} {:>10} {:>8.1}s",
            week,
            report.files_total,
            format!("{} KiB", report.logical_bytes >> 10),
            format!("{} KiB", report.stored_bytes >> 10),
            report.dr(),
            format!("{} KiB/s", (report.de() as u64) >> 10),
            report.bws(500.0 * 1024.0),
        );
    }

    // Any past week restores bit-exactly. Verify the middle one.
    let week = weeks / 2;
    let restored = engine.restore_session(week).expect("restore failed");
    println!("\nrestored week {week}: {} files", restored.len());

    // Reclaim the oldest session; newer sessions stay restorable.
    engine.delete_session(0).expect("delete failed");
    assert!(engine.restore_session(0).is_err());
    assert!(engine.restore_session(weeks - 1).is_ok());
    println!("deleted week 0; week {} still restores", weeks - 1);
}
