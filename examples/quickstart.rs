//! Quickstart: back up a few files with AA-Dedupe and restore them.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use aa_dedupe::cloud::CloudSim;
use aa_dedupe::core::{AaDedupe, BackupScheme};
use aa_dedupe::filetype::{MemoryFile, SourceFile};

fn main() {
    // A simulated cloud with the paper's WAN (500 KB/s up) and Amazon S3
    // April-2011 prices.
    let cloud = CloudSim::with_paper_defaults();
    let mut engine = AaDedupe::new(cloud);

    // A small mixed workload: the extension determines the application
    // type, which determines chunking (WFC/SC/CDC) and hashing
    // (Rabin/MD5/SHA-1).
    let files = [
        MemoryFile::new("user/docs/report.doc", b"quarterly report text ".repeat(4000)),
        MemoryFile::new("user/photos/trip.jpg", (0..150_000u32).map(|i| (i * 31 % 251) as u8).collect()),
        MemoryFile::new("user/vm/dev.vmdk", vec![0xA5; 400_000]),
        MemoryFile::new("user/notes/todo.txt", b"buy milk\n".to_vec()), // tiny: bypasses dedup
    ];
    let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();

    // First backup session: everything is new.
    let s0 = engine.backup_session(&sources).expect("backup failed");
    println!("session 0: {} files, {} logical bytes, {} stored, DR {:.2}",
        s0.files_total, s0.logical_bytes, s0.stored_bytes, s0.dr());

    // Second session over identical data: everything dedupes.
    let s1 = engine.backup_session(&sources).expect("backup failed");
    println!("session 1: {} stored bytes (expected 0 — all duplicates), {} duplicate chunks",
        s1.stored_bytes, s1.chunks_duplicate);
    assert_eq!(s1.stored_bytes, 0);

    // Restore session 0 and verify bit-exactness.
    let restored = engine.restore_session(0).expect("restore failed");
    for (orig, rest) in files.iter().zip(&restored) {
        assert_eq!(orig.data, rest.data, "restore mismatch for {}", orig.path);
    }
    println!("restored {} files bit-exactly", restored.len());

    // What would the month cost on S3?
    let cost = engine.cloud().monthly_cost();
    println!("monthly cloud cost: ${:.4} (storage ${:.4} + transfer ${:.4} + requests ${:.4})",
        cost.total(), cost.storage, cost.transfer, cost.request);
}
