//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The workspace's air-gapped build environment cannot fetch crates.io
//! dependencies, so this crate provides the small slice of criterion's
//! API that `crates/bench/benches/*` uses: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`bench_with_input`](BenchmarkGroup::bench_with_input),
//! [`Throughput`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. It runs each benchmark with a short
//! calibrated measurement loop and prints mean wall time (plus
//! throughput when declared) — no statistics, plots, or CLI parsing.

use std::time::{Duration, Instant};

/// Target wall time spent measuring each benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(200);
/// Target wall time spent warming up each benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(50);

/// Benchmark driver; one per `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into(), throughput: None }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, None, f);
        self
    }
}

/// Declared per-iteration workload, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterised benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration workload for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, name), self.throughput, f);
        self
    }

    /// Runs a benchmark identified by a [`BenchmarkId`], passing `input`
    /// to the closure.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id.id), self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for the calibrated number of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(label: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: grow the iteration count until one batch covers the
    // warmup target, so per-iteration overhead is amortised.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= WARMUP_TARGET || iters >= 1 << 30 {
            let per_iter = b.elapsed.max(Duration::from_nanos(1)) / iters as u32;
            iters = (MEASURE_TARGET.as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64;
            break;
        }
        iters = iters.saturating_mul(4);
    }
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter_ns = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => {
            format!(" {:>10.1} MiB/s", n as f64 / (1 << 20) as f64 / (per_iter_ns / 1e9))
        }
        Throughput::Elements(n) => {
            format!(" {:>10.1} Melem/s", n as f64 / 1e6 / (per_iter_ns / 1e9))
        }
    });
    println!(
        "bench {label:<48} {:>12.1} ns/iter{}",
        per_iter_ns,
        rate.unwrap_or_default()
    );
}

/// Declares a benchmark group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Bytes(64));
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| std::hint::black_box(1u64 + 1));
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("inputs");
        let data = vec![3u8; 16];
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| d.iter().map(|&x| x as u64).sum::<u64>())
        });
        group.finish();
    }
}
