//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so the workspace cannot fetch the real `parking_lot`. This crate
//! provides the (small) API surface the workspace actually uses —
//! [`Mutex`] and [`RwLock`] with panic-free, non-poisoning `lock()` /
//! `read()` / `write()` — implemented on top of `std::sync`. Poisoning is
//! neutralised by unwrapping into the inner guard, which matches
//! parking_lot's semantics of not poisoning on panic.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with parking_lot's non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: lock is usable after a panicking holder.
        assert_eq!(*m.lock(), 7);
    }
}
