//! Offline shim for the `proptest` crate.
//!
//! The build environment has no network access, so the real proptest
//! cannot be fetched. This shim keeps the workspace's property tests
//! compiling and running unchanged by reimplementing the API surface they
//! use: the [`proptest!`] macro, `prop_assert*` macros, [`prop_oneof!`],
//! `any::<T>()`, integer-range and string-pattern strategies, tuple
//! strategies, `prop_map`, `Just`, and `proptest::collection::vec`.
//!
//! Semantics: each test runs `Config::cases` deterministic cases seeded
//! from the test's name, so failures reproduce exactly across runs. There
//! is no shrinking — a failing case reports the assertion as-is; the
//! deterministic seed makes it replayable under a debugger.

pub mod arbitrary;
pub mod collection;
pub mod rng;
pub mod strategy;
pub mod test_runner;

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config, ProptestConfig};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Mirrors proptest's macro of the same name:
/// an optional `#![proptest_config(..)]` inner attribute, then test
/// functions whose arguments are drawn from strategies via `pat in expr`.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_cases!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_cases!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::rng::TestRng::from_name(stringify!($name));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $( let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng); )+
                $body
            }
        }
        $crate::__proptest_cases!{ ($cfg) $($rest)* }
    };
}

/// Skips the current case when its precondition fails. Real proptest
/// rejects the input and redraws; with deterministic per-case draws the
/// shim just moves on to the next case (`$body` runs inside the case
/// loop, so `continue` targets it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// `assert!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($s:expr),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($s) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Put(String, Vec<u8>),
        Get(u8),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 0usize..=4, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            let _ = b;
        }

        #[test]
        fn string_patterns_match_shape(s in "[a-c]/[a-z]{1,4}") {
            let (dir, name) = s.split_once('/').expect("one slash");
            prop_assert_eq!(dir.len(), 1);
            prop_assert!(("a"..="c").contains(&dir));
            prop_assert!(!name.is_empty() && name.len() <= 4);
            prop_assert!(name.bytes().all(|b| b.is_ascii_lowercase()));
        }

        #[test]
        fn vec_and_tuple_and_map(
            items in crate::collection::vec((any::<u8>(), 1usize..5), 0..10),
            tagged in prop_oneof![
                ("[a-z]{1,3}", crate::collection::vec(any::<u8>(), 0..6))
                    .prop_map(|(k, v)| Op::Put(k, v)),
                any::<u8>().prop_map(Op::Get),
            ],
        ) {
            prop_assert!(items.len() < 10);
            for (_, n) in &items {
                prop_assert!((1..5).contains(n));
            }
            match tagged {
                Op::Put(k, v) => {
                    prop_assert!(!k.is_empty() && v.len() < 6);
                }
                Op::Get(_) => {}
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::rng::TestRng::from_name("fixed");
        let mut b = crate::rng::TestRng::from_name("fixed");
        let s = crate::collection::vec(any::<u64>(), 0..20);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
