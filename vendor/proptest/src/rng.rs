//! Deterministic test RNG (xorshift64* + splitmix seeding).

/// Small, fast, deterministic RNG for value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded from an explicit value.
    pub fn seeded(seed: u64) -> Self {
        // splitmix64 scramble so nearby seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        TestRng { state: (z ^ (z >> 31)) | 1 }
    }

    /// RNG seeded from a test name (FNV-1a), so each property test has a
    /// stable, independent stream.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::seeded(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi)`; `hi` must exceed `lo`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        let span = hi - lo;
        lo + self.next_u64() % span
    }

    /// Uniform value in `[lo, hi]` (inclusive), defined for the full span.
    pub fn range_inclusive_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi >= lo);
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (hi - lo + 1)
    }

    /// Uniform index below `n` (`n > 0`).
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = TestRng::seeded(7);
        for _ in 0..1000 {
            let v = r.range_u64(5, 12);
            assert!((5..12).contains(&v));
            let w = r.range_inclusive_u64(0, 3);
            assert!(w <= 3);
            assert!(r.index(4) < 4);
        }
        // Full-span inclusive range does not overflow.
        let _ = r.range_inclusive_u64(0, u64::MAX);
    }
}
