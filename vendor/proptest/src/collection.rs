//! Collection strategies (`proptest::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::{Range, RangeInclusive};

/// Accepted size specifications for [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// A `Vec` whose length is drawn from `size` and whose elements are drawn
/// from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { elem, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len =
            rng.range_inclusive_u64(self.size.lo as u64, self.size.hi_inclusive as u64) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::seeded(11);
        let s = vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn nested_vecs() {
        let mut rng = TestRng::seeded(12);
        let s = vec(vec(any::<u8>(), 0..3), 1..4);
        let v = s.generate(&mut rng);
        assert!(!v.is_empty() && v.len() < 4);
        for inner in v {
            assert!(inner.len() < 3);
        }
    }
}
