//! Test-runner configuration, mirroring `proptest::test_runner::Config`.

/// How many cases each property test executes.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // The real proptest defaults to 256 cases with shrinking; this
        // deterministic shim runs 64, which keeps the heavier workspace
        // properties (hundreds of KiB of data per case) fast in CI while
        // still sweeping a meaningful input space.
        Config { cases: 64 }
    }
}

/// proptest spells the config `ProptestConfig` in its prelude.
pub type ProptestConfig = Config;
