//! `any::<T>()` — the canonical strategy for a type.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::marker::PhantomData;

/// Types with a canonical whole-domain generator.
pub trait Arbitrary {
    /// Produces an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (uniform over the whole domain).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_small_domain() {
        let mut rng = TestRng::seeded(9);
        let s = any::<bool>();
        let mut t = false;
        let mut f = false;
        for _ in 0..64 {
            if s.generate(&mut rng) {
                t = true;
            } else {
                f = true;
            }
        }
        assert!(t && f);
    }
}
