//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically produces values from a [`TestRng`].
//! Implementations cover everything the workspace's tests use: integer
//! ranges, string patterns (a regex subset), tuples, [`Just`], unions
//! ([`prop_oneof!`](crate::prop_oneof)), and [`prop_map`](Strategy::prop_map).

use crate::rng::TestRng;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// Generates values of `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies with a common value type.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Union over `arms`; at least one arm is required.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.index(self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Map through u64 space; ranges in tests are non-negative.
                rng.range_u64(self.start as u64, self.end as u64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_inclusive_u64(*self.start() as u64, *self.end() as u64) as $t
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_inclusive_u64(self.start as u64, <$t>::MAX as u64) as $t
            }
        }

        impl crate::arbitrary::Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize);

macro_rules! float_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // 53 uniform mantissa bits in [0, 1).
                let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                (self.start as f64 + frac * (self.end as f64 - self.start as f64)) as $t
            }
        }
    )*};
}

float_strategy!(f32, f64);

impl crate::arbitrary::Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl crate::arbitrary::Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}

impl crate::arbitrary::Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// String-pattern strategy: a `&'static str` acts as a regex-subset
/// generator, exactly like proptest's string strategies. Supported
/// syntax: literal characters, character classes `[a-zA-Z0-9/_.]`
/// (ranges and literals; `-` last in the class is literal), and bounded
/// repetition `{n}` / `{m,n}` applied to the preceding atom.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"))
                + i;
            let class = &chars[i + 1..close];
            i = close + 1;
            expand_class(class, pattern)
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional {n} or {m,n} repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("repetition lower bound"),
                    n.trim().parse::<usize>().expect("repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = rng.range_inclusive_u64(lo as u64, hi as u64) as usize;
        for _ in 0..count {
            out.push(alphabet[rng.index(alphabet.len())]);
        }
    }
    out
}

fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
    assert!(!class.is_empty(), "empty class in pattern {pattern:?}");
    let mut set = Vec::new();
    let mut j = 0;
    while j < class.len() {
        if j + 2 < class.len() && class[j + 1] == '-' {
            let (a, b) = (class[j], class[j + 2]);
            assert!(a <= b, "inverted range in pattern {pattern:?}");
            for c in a..=b {
                set.push(c);
            }
            j += 3;
        } else {
            set.push(class[j]);
            j += 1;
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::seeded(1);
        let s = (0u8..4, 10usize..=12);
        for _ in 0..100 {
            let (a, b) = s.generate(&mut rng);
            assert!(a < 4);
            assert!((10..=12).contains(&b));
        }
    }

    #[test]
    fn pattern_class_expansion() {
        let mut rng = TestRng::seeded(2);
        for _ in 0..100 {
            let s = "[a-zA-Z0-9/_.]{1,40}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 40);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "/_.".contains(c)));
        }
    }

    #[test]
    fn pattern_literals_and_exact_repetition() {
        let mut rng = TestRng::seeded(3);
        let s = "ab[01]{3}z".generate(&mut rng);
        assert_eq!(s.len(), 6);
        assert!(s.starts_with("ab") && s.ends_with('z'));
        assert!(s[2..5].chars().all(|c| c == '0' || c == '1'));
    }

    #[test]
    fn union_picks_every_arm_eventually() {
        let mut rng = TestRng::seeded(4);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn map_applies() {
        let mut rng = TestRng::seeded(5);
        let s = (1u8..5).prop_map(|x| x * 10);
        for _ in 0..20 {
            let v = s.generate(&mut rng);
            assert!((10..50).contains(&v) && v.is_multiple_of(10));
        }
    }
}
