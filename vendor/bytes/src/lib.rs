//! Offline shim for the `bytes` crate.
//!
//! Provides the minimal [`BufMut`] surface the workspace uses
//! (`put_slice`, `put_u8` over `Vec<u8>`); the build environment cannot
//! fetch the real crate.

/// Minimal write-side buffer trait, matching the subset of
/// `bytes::BufMut` the workspace calls.
pub trait BufMut {
    /// Appends `src` to the buffer.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_slice_appends() {
        let mut v: Vec<u8> = vec![1];
        v.put_slice(&[2, 3]);
        v.put_u8(4);
        assert_eq!(v, vec![1, 2, 3, 4]);
    }
}
