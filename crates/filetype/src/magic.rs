//! Magic-byte content sniffing.
//!
//! Used as a fallback when a file has no (or an unknown) extension. Only
//! formats relevant to the paper's twelve application types are recognised;
//! anything else returns `None` and the caller falls back to
//! [`AppType::Other`](crate::AppType::Other).

use crate::AppType;

/// A magic signature: pattern bytes matched at a fixed offset.
struct Signature {
    offset: usize,
    pattern: &'static [u8],
    app: AppType,
}

/// Signature table, first match wins. Longer/more-specific signatures are
/// listed before shorter prefixes they could shadow.
const SIGNATURES: &[Signature] = &[
    // RIFF....AVI LIST
    Signature { offset: 0, pattern: b"RIFF", app: AppType::Avi },
    // MP3: ID3 tag or MPEG frame sync.
    Signature { offset: 0, pattern: b"ID3", app: AppType::Mp3 },
    Signature { offset: 0, pattern: &[0xFF, 0xFB], app: AppType::Mp3 },
    // ISO 9660: "CD001" at offset 0x8001 — too deep for a head buffer, so
    // also accept the El Torito boot record head many images carry.
    Signature { offset: 0x8001, pattern: b"CD001", app: AppType::Iso },
    // DMG (UDIF) trailers aren't in the head; zlib-compressed UDIF blocks
    // frequently start with "koly" when tools copy the trailer first.
    Signature { offset: 0, pattern: b"koly", app: AppType::Dmg },
    // RAR 4.x and 5.x.
    Signature { offset: 0, pattern: b"Rar!\x1a\x07", app: AppType::Rar },
    // ZIP (classified with archives).
    Signature { offset: 0, pattern: b"PK\x03\x04", app: AppType::Rar },
    // GZIP.
    Signature { offset: 0, pattern: &[0x1F, 0x8B], app: AppType::Rar },
    // JPEG/JFIF.
    Signature { offset: 0, pattern: &[0xFF, 0xD8, 0xFF], app: AppType::Jpg },
    // PNG (classified with images).
    Signature { offset: 0, pattern: &[0x89, b'P', b'N', b'G'], app: AppType::Jpg },
    // PDF.
    Signature { offset: 0, pattern: b"%PDF-", app: AppType::Pdf },
    // PE executables ("MZ"), ELF, Mach-O.
    Signature { offset: 0, pattern: b"MZ", app: AppType::Exe },
    Signature { offset: 0, pattern: &[0x7F, b'E', b'L', b'F'], app: AppType::Exe },
    Signature { offset: 0, pattern: &[0xFE, 0xED, 0xFA, 0xCE], app: AppType::Exe },
    Signature { offset: 0, pattern: &[0xCF, 0xFA, 0xED, 0xFE], app: AppType::Exe },
    // VMware sparse-extent VMDK ("KDMV") and descriptor files.
    Signature { offset: 0, pattern: b"KDMV", app: AppType::Vmdk },
    Signature { offset: 0, pattern: b"# Disk DescriptorFile", app: AppType::Vmdk },
    // Legacy MS Office compound file (DOC/PPT/XLS share it; map to DOC).
    Signature {
        offset: 0,
        pattern: &[0xD0, 0xCF, 0x11, 0xE0, 0xA1, 0xB1, 0x1A, 0xE1],
        app: AppType::Doc,
    },
];

/// Sniffs the application type from the first bytes of a file.
///
/// `head` should contain at least the first few hundred bytes; deep-offset
/// signatures (ISO 9660) are only checked when the buffer is long enough.
pub fn sniff(head: &[u8]) -> Option<AppType> {
    for sig in SIGNATURES {
        let end = sig.offset + sig.pattern.len();
        // aalint: allow(panic-path) -- head.len() >= end short-circuits before the slice
        if head.len() >= end && &head[sig.offset..end] == sig.pattern {
            return Some(sig.app);
        }
    }
    // Mostly-printable heads are treated as text.
    if !head.is_empty() && head.len() >= 16 {
        let printable = head
            .iter()
            .take(512)
            .filter(|&&b| b == b'\n' || b == b'\r' || b == b'\t' || (0x20..0x7f).contains(&b))
            .count();
        let scanned = head.len().min(512);
        if printable * 100 >= scanned * 97 {
            return Some(AppType::Txt);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognises_common_formats() {
        assert_eq!(sniff(b"%PDF-1.4 blah"), Some(AppType::Pdf));
        assert_eq!(sniff(&[0xFF, 0xD8, 0xFF, 0xE0, 0, 0]), Some(AppType::Jpg));
        assert_eq!(sniff(b"Rar!\x1a\x07\x00"), Some(AppType::Rar));
        assert_eq!(sniff(b"PK\x03\x04...."), Some(AppType::Rar));
        assert_eq!(sniff(b"MZ\x90\x00"), Some(AppType::Exe));
        assert_eq!(sniff(&[0x7F, b'E', b'L', b'F', 2, 1]), Some(AppType::Exe));
        assert_eq!(sniff(b"KDMV\x01\x00"), Some(AppType::Vmdk));
        assert_eq!(sniff(b"ID3\x04\x00"), Some(AppType::Mp3));
        assert_eq!(sniff(b"RIFF\x24\x00\x00\x00AVI LIST"), Some(AppType::Avi));
        assert_eq!(
            sniff(&[0xD0, 0xCF, 0x11, 0xE0, 0xA1, 0xB1, 0x1A, 0xE1, 0, 0]),
            Some(AppType::Doc)
        );
    }

    #[test]
    fn iso_deep_offset() {
        let mut img = vec![0u8; 0x8010];
        img[0x8001..0x8006].copy_from_slice(b"CD001");
        assert_eq!(sniff(&img), Some(AppType::Iso));
        // Too-short head cannot see the deep signature.
        assert_eq!(sniff(&img[..0x100]), None);
    }

    #[test]
    fn printable_text_heuristic() {
        let text = b"fn main() {\n    println!(\"hello\");\n}\nmore text to pass the minimum\n";
        assert_eq!(sniff(text), Some(AppType::Txt));
        // Binary noise is not text.
        let noise: Vec<u8> = (0..256u16).map(|i| (i as u8).wrapping_mul(37)).collect();
        assert_eq!(sniff(&noise), None);
    }

    #[test]
    fn short_or_empty_heads() {
        assert_eq!(sniff(b""), None);
        assert_eq!(sniff(b"ab"), None); // below the 16-byte text minimum
        assert_eq!(sniff(b"MZ"), Some(AppType::Exe)); // exact-length signature still matches
    }
}
