#![forbid(unsafe_code)]
//! Application/file-type classification for AA-Dedupe.
//!
//! The paper's central premise is that the dedup pipeline should be
//! specialised per *application*: "the selection for the proper chunking
//! methods and hash functions in deduplication is entirely based on file
//! type" (§III.E). This crate supplies that type system:
//!
//! * [`AppType`] — the twelve concrete application types of the paper's
//!   Table 1 (AVI, MP3, ISO, DMG, RAR, JPG, PDF, EXE, VMDK, DOC, TXT, PPT)
//!   plus an `Other` catch-all.
//! * [`Category`] — the paper's three dedup categories (§III.C):
//!   compressed, static uncompressed, dynamic uncompressed.
//! * [`classify`] / [`classify_with_content`] — extension tables plus
//!   magic-byte sniffing.
//! * [`DedupPolicy`] — the category → (chunking method, hash algorithm)
//!   table of the paper's Fig. 6.

pub mod magic;
pub mod policy;
pub mod source;

pub use policy::DedupPolicy;
pub use source::{MemoryFile, SourceFile};

use std::fmt;
use std::path::Path;

/// The concrete application types studied in the paper's Table 1.
///
/// Each variant carries the paper's measured dataset characteristics via
/// [`AppType::profile`], which the workload generator uses for calibration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppType {
    /// AVI video (compressed).
    Avi,
    /// MP3 audio (compressed).
    Mp3,
    /// ISO disc images (compressed contents).
    Iso,
    /// macOS disk images (compressed).
    Dmg,
    /// RAR archives (compressed).
    Rar,
    /// JPEG images (compressed).
    Jpg,
    /// PDF documents (static uncompressed container).
    Pdf,
    /// Executables / installed binaries (static uncompressed).
    Exe,
    /// VMware virtual disk images (static uncompressed, block-updated).
    Vmdk,
    /// Word-processor documents (dynamic uncompressed).
    Doc,
    /// Plain text / source code (dynamic uncompressed).
    Txt,
    /// Presentations (dynamic uncompressed).
    Ppt,
    /// Anything else; treated as dynamic uncompressed (the conservative
    /// choice: CDC + SHA-1 never loses redundancy, only efficiency).
    Other,
}

/// The paper's three dedup categories (§III.C), which drive chunking and
/// hash selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Compressed application data: negligible sub-file redundancy → WFC.
    Compressed,
    /// Static uncompressed data (rarely edited, or block-updated like VM
    /// images) → SC.
    StaticUncompressed,
    /// Dynamic uncompressed data (frequently edited documents) → CDC.
    DynamicUncompressed,
}

impl Category {
    /// Human-readable name.
    pub const fn name(self) -> &'static str {
        match self {
            Category::Compressed => "compressed",
            Category::StaticUncompressed => "static-uncompressed",
            Category::DynamicUncompressed => "dynamic-uncompressed",
        }
    }

    /// All categories, in a stable order.
    pub const ALL: [Category; 3] = [
        Category::Compressed,
        Category::StaticUncompressed,
        Category::DynamicUncompressed,
    ];
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-application dataset characteristics from the paper's Table 1,
/// used to calibrate the synthetic workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppProfile {
    /// Dataset size in MB in the paper's corpus.
    pub dataset_mb: u64,
    /// Mean file size in bytes.
    pub mean_file_size: u64,
    /// Dedup ratio achieved by 8 KiB static chunking after file-level dedup.
    pub sc_dr: f64,
    /// Dedup ratio achieved by 8 KiB-average CDC after file-level dedup.
    pub cdc_dr: f64,
}

impl AppType {
    /// All twelve paper application types (excluding `Other`), in Table 1
    /// order.
    pub const TABLE1: [AppType; 12] = [
        AppType::Avi,
        AppType::Mp3,
        AppType::Iso,
        AppType::Dmg,
        AppType::Rar,
        AppType::Jpg,
        AppType::Pdf,
        AppType::Exe,
        AppType::Vmdk,
        AppType::Doc,
        AppType::Txt,
        AppType::Ppt,
    ];

    /// All types including `Other`.
    pub const ALL: [AppType; 13] = [
        AppType::Avi,
        AppType::Mp3,
        AppType::Iso,
        AppType::Dmg,
        AppType::Rar,
        AppType::Jpg,
        AppType::Pdf,
        AppType::Exe,
        AppType::Vmdk,
        AppType::Doc,
        AppType::Txt,
        AppType::Ppt,
        AppType::Other,
    ];

    /// Canonical lowercase extension for the type.
    pub const fn extension(self) -> &'static str {
        match self {
            AppType::Avi => "avi",
            AppType::Mp3 => "mp3",
            AppType::Iso => "iso",
            AppType::Dmg => "dmg",
            AppType::Rar => "rar",
            AppType::Jpg => "jpg",
            AppType::Pdf => "pdf",
            AppType::Exe => "exe",
            AppType::Vmdk => "vmdk",
            AppType::Doc => "doc",
            AppType::Txt => "txt",
            AppType::Ppt => "ppt",
            AppType::Other => "bin",
        }
    }

    /// Uppercase display name matching the paper's tables.
    pub const fn name(self) -> &'static str {
        match self {
            AppType::Avi => "AVI",
            AppType::Mp3 => "MP3",
            AppType::Iso => "ISO",
            AppType::Dmg => "DMG",
            AppType::Rar => "RAR",
            AppType::Jpg => "JPG",
            AppType::Pdf => "PDF",
            AppType::Exe => "EXE",
            AppType::Vmdk => "VMDK",
            AppType::Doc => "DOC",
            AppType::Txt => "TXT",
            AppType::Ppt => "PPT",
            AppType::Other => "OTHER",
        }
    }

    /// The dedup category of this application type (paper §III.C).
    pub const fn category(self) -> Category {
        match self {
            AppType::Avi
            | AppType::Mp3
            | AppType::Iso
            | AppType::Dmg
            | AppType::Rar
            | AppType::Jpg => Category::Compressed,
            AppType::Pdf | AppType::Exe | AppType::Vmdk => Category::StaticUncompressed,
            AppType::Doc | AppType::Txt | AppType::Ppt | AppType::Other => {
                Category::DynamicUncompressed
            }
        }
    }

    /// Stable single-byte tag for on-disk encodings and index partitioning.
    pub const fn tag(self) -> u8 {
        match self {
            AppType::Avi => 1,
            AppType::Mp3 => 2,
            AppType::Iso => 3,
            AppType::Dmg => 4,
            AppType::Rar => 5,
            AppType::Jpg => 6,
            AppType::Pdf => 7,
            AppType::Exe => 8,
            AppType::Vmdk => 9,
            AppType::Doc => 10,
            AppType::Txt => 11,
            AppType::Ppt => 12,
            AppType::Other => 13,
        }
    }

    /// Inverse of [`AppType::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        AppType::ALL.into_iter().find(|t| t.tag() == tag)
    }

    /// Table 1 characteristics for calibration of synthetic corpora.
    /// Mean file sizes are the paper's values; dedup ratios are SC/CDC DR
    /// after file-level dedup.
    pub const fn profile(self) -> AppProfile {
        const MB: u64 = 1 << 20;
        const KB: u64 = 1 << 10;
        match self {
            AppType::Avi => AppProfile { dataset_mb: 2243, mean_file_size: 198 * MB, sc_dr: 1.0002, cdc_dr: 1.0002 },
            AppType::Mp3 => AppProfile { dataset_mb: 1410, mean_file_size: 5 * MB, sc_dr: 1.001, cdc_dr: 1.002 },
            AppType::Iso => AppProfile { dataset_mb: 1291, mean_file_size: 646 * MB, sc_dr: 1.002, cdc_dr: 1.002 },
            AppType::Dmg => AppProfile { dataset_mb: 1032, mean_file_size: 86 * MB, sc_dr: 1.004, cdc_dr: 1.004 },
            AppType::Rar => AppProfile { dataset_mb: 1452, mean_file_size: 12 * MB, sc_dr: 1.008, cdc_dr: 1.008 },
            AppType::Jpg => AppProfile { dataset_mb: 1797, mean_file_size: 2 * MB, sc_dr: 1.009, cdc_dr: 1.009 },
            AppType::Pdf => AppProfile { dataset_mb: 910, mean_file_size: 403 * KB, sc_dr: 1.015, cdc_dr: 1.014 },
            AppType::Exe => AppProfile { dataset_mb: 400, mean_file_size: 298 * KB, sc_dr: 1.063, cdc_dr: 1.062 },
            AppType::Vmdk => AppProfile { dataset_mb: 28473, mean_file_size: 312 * MB, sc_dr: 1.286, cdc_dr: 1.168 },
            AppType::Doc => AppProfile { dataset_mb: 550, mean_file_size: 180 * KB, sc_dr: 1.231, cdc_dr: 1.234 },
            AppType::Txt => AppProfile { dataset_mb: 906, mean_file_size: 615 * KB, sc_dr: 1.232, cdc_dr: 1.259 },
            AppType::Ppt => AppProfile { dataset_mb: 320, mean_file_size: 977 * KB, sc_dr: 1.275, cdc_dr: 1.3 },
            AppType::Other => AppProfile { dataset_mb: 0, mean_file_size: 64 * KB, sc_dr: 1.1, cdc_dr: 1.12 },
        }
    }
}

impl fmt::Display for AppType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Classifies a file by its path extension alone.
///
/// Unknown or missing extensions map to [`AppType::Other`]. Matching is
/// case-insensitive and understands common aliases (`jpeg` → JPG,
/// `docx` → DOC, …).
pub fn classify(path: &Path) -> AppType {
    let ext = match path.extension().and_then(|e| e.to_str()) {
        Some(e) => e.to_ascii_lowercase(),
        None => return AppType::Other,
    };
    classify_extension(&ext)
}

/// Classifies a lowercase extension string.
pub fn classify_extension(ext: &str) -> AppType {
    match ext {
        "avi" | "mov" | "mp4" | "mkv" | "wmv" => AppType::Avi,
        "mp3" | "aac" | "m4a" | "ogg" | "flac" => AppType::Mp3,
        "iso" | "img" => AppType::Iso,
        "dmg" => AppType::Dmg,
        "rar" | "zip" | "gz" | "bz2" | "7z" | "xz" | "tgz" => AppType::Rar,
        "jpg" | "jpeg" | "png" | "gif" => AppType::Jpg,
        "pdf" => AppType::Pdf,
        "exe" | "dll" | "so" | "dylib" | "app" | "msi" => AppType::Exe,
        "vmdk" | "vdi" | "qcow2" | "vhd" => AppType::Vmdk,
        "doc" | "docx" | "rtf" | "odt" | "pages" => AppType::Doc,
        "txt" | "md" | "log" | "csv" | "xml" | "json" | "html" | "c" | "h" | "rs" | "py"
        | "java" | "cpp" | "tex" => AppType::Txt,
        "ppt" | "pptx" | "key" | "odp" | "xls" | "xlsx" => AppType::Ppt,
        _ => AppType::Other,
    }
}

/// Classifies using the extension first, falling back to magic-byte
/// sniffing of the content head when the extension is unknown.
///
/// This mirrors real backup clients: extensions are authoritative when
/// present (users rename files rarely; applications never do), and content
/// sniffing rescues extension-less files.
pub fn classify_with_content(path: &Path, head: &[u8]) -> AppType {
    match classify(path) {
        AppType::Other => magic::sniff(head).unwrap_or(AppType::Other),
        t => t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn table1_categories_match_paper() {
        use Category::*;
        let expect = [
            (AppType::Avi, Compressed),
            (AppType::Mp3, Compressed),
            (AppType::Iso, Compressed),
            (AppType::Dmg, Compressed),
            (AppType::Rar, Compressed),
            (AppType::Jpg, Compressed),
            (AppType::Pdf, StaticUncompressed),
            (AppType::Exe, StaticUncompressed),
            (AppType::Vmdk, StaticUncompressed),
            (AppType::Doc, DynamicUncompressed),
            (AppType::Txt, DynamicUncompressed),
            (AppType::Ppt, DynamicUncompressed),
        ];
        for (t, c) in expect {
            assert_eq!(t.category(), c, "{t}");
        }
    }

    #[test]
    fn extension_classification() {
        assert_eq!(classify(&PathBuf::from("a/b/movie.AVI")), AppType::Avi);
        assert_eq!(classify(&PathBuf::from("x.jpeg")), AppType::Jpg);
        assert_eq!(classify(&PathBuf::from("report.docx")), AppType::Doc);
        assert_eq!(classify(&PathBuf::from("notes.txt")), AppType::Txt);
        assert_eq!(classify(&PathBuf::from("image.vmdk")), AppType::Vmdk);
        assert_eq!(classify(&PathBuf::from("noext")), AppType::Other);
        assert_eq!(classify(&PathBuf::from("weird.zzz")), AppType::Other);
    }

    #[test]
    fn tags_round_trip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for t in AppType::ALL {
            assert!(seen.insert(t.tag()), "duplicate tag for {t}");
            assert_eq!(AppType::from_tag(t.tag()), Some(t));
        }
        assert_eq!(AppType::from_tag(0), None);
        assert_eq!(AppType::from_tag(200), None);
    }

    #[test]
    fn profiles_match_table1() {
        // Spot-check the values driving workload calibration.
        let vmdk = AppType::Vmdk.profile();
        assert_eq!(vmdk.dataset_mb, 28473);
        assert!(vmdk.sc_dr > vmdk.cdc_dr, "Observation 3: SC beats CDC on VMDK");
        let txt = AppType::Txt.profile();
        assert!(txt.cdc_dr > txt.sc_dr, "CDC beats SC on dynamic TXT");
        let avi = AppType::Avi.profile();
        assert!(avi.sc_dr < 1.01, "compressed data has negligible sub-file redundancy");
    }

    #[test]
    fn content_fallback() {
        // Extension wins when known.
        assert_eq!(
            classify_with_content(&PathBuf::from("x.txt"), b"\xFF\xD8\xFF\xE0"),
            AppType::Txt
        );
        // Magic rescues unknown extensions.
        assert_eq!(
            classify_with_content(&PathBuf::from("photo"), b"\xFF\xD8\xFF\xE0xxxx"),
            AppType::Jpg
        );
        assert_eq!(
            classify_with_content(&PathBuf::from("unknown"), b"garbage"),
            AppType::Other
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(AppType::Vmdk.to_string(), "VMDK");
        assert_eq!(Category::Compressed.to_string(), "compressed");
    }
}
