//! The backup-input abstraction.
//!
//! Backup schemes (AA-Dedupe and the baselines) consume *source files*:
//! anything with a path, an application type, a size, readable bytes, and a
//! cheap change token (the moral equivalent of an mtime/generation number,
//! which incremental schemes use to skip unchanged files without reading
//! them). The trait lives in this vocabulary crate so that both the engine
//! crates and the workload generator can see it without depending on each
//! other.

use crate::AppType;

/// A file presented to a backup scheme.
pub trait SourceFile: Sync {
    /// Repository-relative path (stable across sessions for the same
    /// logical file).
    fn path(&self) -> &str;

    /// The file's application type.
    fn app_type(&self) -> AppType;

    /// Size in bytes.
    fn size(&self) -> u64;

    /// Reads the file contents.
    fn read(&self) -> Vec<u8>;

    /// A cheap token that changes whenever the contents change — what a
    /// real client derives from (mtime, size, inode generation) without
    /// reading data. Incremental schemes (Jungle Disk) rely on it; content
    /// hashes must not be used to implement it.
    fn change_token(&self) -> u64;
}

/// A trivially owned source file, for tests and small callers.
#[derive(Debug, Clone)]
pub struct MemoryFile {
    /// Path.
    pub path: String,
    /// Application type (usually `classify(&path)`).
    pub app: AppType,
    /// Contents.
    pub data: Vec<u8>,
    /// Change token (bump when `data` changes).
    pub token: u64,
}

impl MemoryFile {
    /// Builds a memory file, classifying the app type from the path.
    pub fn new(path: impl Into<String>, data: Vec<u8>) -> Self {
        let path = path.into();
        let app = crate::classify(std::path::Path::new(&path));
        // A change token derived from length + a weak rolling sum stands in
        // for mtime in tests.
        let token = data
            .iter()
            .fold(data.len() as u64, |acc, &b| acc.rotate_left(7) ^ b as u64);
        MemoryFile { path, app, data, token }
    }
}

impl SourceFile for MemoryFile {
    fn path(&self) -> &str {
        &self.path
    }

    fn app_type(&self) -> AppType {
        self.app
    }

    fn size(&self) -> u64 {
        self.data.len() as u64
    }

    fn read(&self) -> Vec<u8> {
        self.data.clone()
    }

    fn change_token(&self) -> u64 {
        self.token
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_file_classifies_and_tokens() {
        let f = MemoryFile::new("docs/report.doc", vec![1, 2, 3]);
        assert_eq!(f.app_type(), AppType::Doc);
        assert_eq!(f.size(), 3);
        assert_eq!(f.read(), vec![1, 2, 3]);
        let g = MemoryFile::new("docs/report.doc", vec![1, 2, 4]);
        assert_ne!(f.change_token(), g.change_token());
        let h = MemoryFile::new("docs/report.doc", vec![1, 2, 3]);
        assert_eq!(f.change_token(), h.change_token());
    }

    #[test]
    fn trait_object_usable() {
        let f = MemoryFile::new("a.txt", b"hello".to_vec());
        let d: &dyn SourceFile = &f;
        assert_eq!(d.path(), "a.txt");
        assert_eq!(d.app_type(), AppType::Txt);
    }
}
