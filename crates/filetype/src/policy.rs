//! The category → (chunking method, hash function) policy table.
//!
//! This is the paper's Fig. 6 in code form:
//!
//! | Category              | Chunking | Fingerprint      |
//! |-----------------------|----------|------------------|
//! | compressed            | WFC      | 12 B Rabin       |
//! | static uncompressed   | SC 8 KiB | 16 B MD5         |
//! | dynamic uncompressed  | CDC      | 20 B SHA-1       |
//!
//! Baseline schemes construct different policies (e.g. Avamar uses
//! CDC + SHA-1 for *everything*), so the policy is a value, not a constant.

use crate::{AppType, Category};
use aadedupe_chunking::ChunkingMethod;
use aadedupe_hashing::HashAlgorithm;

/// A dedup policy: which chunking method and which fingerprint algorithm to
/// apply to each category of file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupPolicy {
    compressed: (ChunkingMethod, HashAlgorithm),
    static_uncompressed: (ChunkingMethod, HashAlgorithm),
    dynamic_uncompressed: (ChunkingMethod, HashAlgorithm),
}

impl DedupPolicy {
    /// The AA-Dedupe policy of the paper's Fig. 6.
    pub const fn aa_dedupe() -> Self {
        DedupPolicy {
            compressed: (ChunkingMethod::Wfc, HashAlgorithm::Rabin96),
            static_uncompressed: (ChunkingMethod::Sc, HashAlgorithm::Md5),
            dynamic_uncompressed: (ChunkingMethod::Cdc, HashAlgorithm::Sha1),
        }
    }

    /// A uniform policy: the same method/hash for every category (how the
    /// monolithic baselines like Avamar behave).
    pub const fn uniform(method: ChunkingMethod, hash: HashAlgorithm) -> Self {
        DedupPolicy {
            compressed: (method, hash),
            static_uncompressed: (method, hash),
            dynamic_uncompressed: (method, hash),
        }
    }

    /// AA-Dedupe's chunking dispatch but a uniform strong hash — the
    /// `ablation_hash` configuration isolating the weak-hash contribution.
    pub const fn aa_chunking_strong_hash() -> Self {
        DedupPolicy {
            compressed: (ChunkingMethod::Wfc, HashAlgorithm::Sha1),
            static_uncompressed: (ChunkingMethod::Sc, HashAlgorithm::Sha1),
            dynamic_uncompressed: (ChunkingMethod::Cdc, HashAlgorithm::Sha1),
        }
    }

    /// The (method, hash) pair for a category.
    pub const fn for_category(&self, cat: Category) -> (ChunkingMethod, HashAlgorithm) {
        match cat {
            Category::Compressed => self.compressed,
            Category::StaticUncompressed => self.static_uncompressed,
            Category::DynamicUncompressed => self.dynamic_uncompressed,
        }
    }

    /// The (method, hash) pair for a concrete application type.
    pub const fn for_app(&self, app: AppType) -> (ChunkingMethod, HashAlgorithm) {
        self.for_category(app.category())
    }
}

impl Default for DedupPolicy {
    fn default() -> Self {
        Self::aa_dedupe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aa_dedupe_policy_matches_fig6() {
        let p = DedupPolicy::aa_dedupe();
        assert_eq!(
            p.for_app(AppType::Mp3),
            (ChunkingMethod::Wfc, HashAlgorithm::Rabin96)
        );
        assert_eq!(
            p.for_app(AppType::Vmdk),
            (ChunkingMethod::Sc, HashAlgorithm::Md5)
        );
        assert_eq!(
            p.for_app(AppType::Doc),
            (ChunkingMethod::Cdc, HashAlgorithm::Sha1)
        );
        assert_eq!(
            p.for_app(AppType::Other),
            (ChunkingMethod::Cdc, HashAlgorithm::Sha1)
        );
    }

    #[test]
    fn uniform_policy() {
        let p = DedupPolicy::uniform(ChunkingMethod::Cdc, HashAlgorithm::Sha1);
        for cat in Category::ALL {
            assert_eq!(p.for_category(cat), (ChunkingMethod::Cdc, HashAlgorithm::Sha1));
        }
    }

    #[test]
    fn ablation_policy_keeps_chunking() {
        let p = DedupPolicy::aa_chunking_strong_hash();
        assert_eq!(p.for_category(Category::Compressed).0, ChunkingMethod::Wfc);
        assert_eq!(p.for_category(Category::Compressed).1, HashAlgorithm::Sha1);
        assert_eq!(p.for_category(Category::StaticUncompressed).0, ChunkingMethod::Sc);
    }

    #[test]
    fn default_is_aa_dedupe() {
        assert_eq!(DedupPolicy::default(), DedupPolicy::aa_dedupe());
    }
}
