//! Property-based tests for classification and policy.

use proptest::prelude::*;
use std::path::PathBuf;

use aadedupe_chunking::ChunkingMethod;
use aadedupe_filetype::{classify, classify_extension, magic, AppType, Category, DedupPolicy};
use aadedupe_hashing::HashAlgorithm;

proptest! {
    /// Classification is case-insensitive on extensions.
    #[test]
    fn classification_case_insensitive(stem in "[a-z]{1,10}", ext in "[a-zA-Z]{1,5}") {
        let lower = classify(&PathBuf::from(format!("{stem}.{}", ext.to_lowercase())));
        let upper = classify(&PathBuf::from(format!("{stem}.{}", ext.to_uppercase())));
        prop_assert_eq!(lower, upper);
    }

    /// Every canonical extension maps back to its own type.
    #[test]
    fn canonical_extensions_round_trip(_x in any::<u8>()) {
        for app in AppType::TABLE1 {
            prop_assert_eq!(classify_extension(app.extension()), app, "{}", app);
        }
    }

    /// Policy totality: every (policy, app) pair yields a coherent
    /// (chunking, hash) combination — WFC implies a whole-file-grade hash
    /// under the AA policy, CDC always gets SHA-1.
    #[test]
    fn aa_policy_coherence(app_i in 0usize..13) {
        let app = AppType::ALL[app_i];
        let (method, hash) = DedupPolicy::aa_dedupe().for_app(app);
        match app.category() {
            Category::Compressed => {
                prop_assert_eq!(method, ChunkingMethod::Wfc);
                prop_assert_eq!(hash, HashAlgorithm::Rabin96);
            }
            Category::StaticUncompressed => {
                prop_assert_eq!(method, ChunkingMethod::Sc);
                prop_assert_eq!(hash, HashAlgorithm::Md5);
            }
            Category::DynamicUncompressed => {
                prop_assert_eq!(method, ChunkingMethod::Cdc);
                prop_assert_eq!(hash, HashAlgorithm::Sha1);
            }
        }
    }

    /// The magic sniffer never panics on arbitrary heads, and whatever it
    /// returns is stable.
    #[test]
    fn sniffer_total_and_deterministic(head in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let a = magic::sniff(&head);
        let b = magic::sniff(&head);
        prop_assert_eq!(a, b);
    }

    /// Extension always beats content sniffing when known.
    #[test]
    fn extension_is_authoritative(head in proptest::collection::vec(any::<u8>(), 0..64)) {
        let t = aadedupe_filetype::classify_with_content(&PathBuf::from("x.pdf"), &head);
        prop_assert_eq!(t, AppType::Pdf);
    }
}
