//! Property-based tests for the workload generator.

use proptest::prelude::*;

use aadedupe_filetype::SourceFile;
use aadedupe_workload::{DatasetSpec, Generator, Prng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generation is a pure function of (spec, seed, week).
    #[test]
    fn snapshots_deterministic(seed in any::<u64>(), week in 0usize..4) {
        let mut g1 = Generator::new(DatasetSpec::tiny_test(), seed);
        let mut g2 = Generator::new(DatasetSpec::tiny_test(), seed);
        let s1 = g1.snapshot(week);
        let s2 = g2.snapshot(week);
        prop_assert_eq!(s1.file_count(), s2.file_count());
        for (a, b) in s1.files.iter().zip(s2.files.iter()) {
            prop_assert_eq!(&a.path, &b.path);
            prop_assert_eq!(a.change_token(), b.change_token());
            prop_assert_eq!(a.materialize(), b.materialize());
        }
    }

    /// Declared length always equals materialized length, and the change
    /// token is consistent with content equality across two generators.
    #[test]
    fn len_and_token_contract(seed in any::<u64>()) {
        let mut generator = Generator::new(DatasetSpec::tiny_test(), seed);
        let s0 = generator.snapshot(0);
        let s1 = generator.snapshot(1);
        for f in &s0.files {
            prop_assert_eq!(f.len(), f.materialize().len(), "{}", f.path);
        }
        // Across weeks: same id + same token ⇒ identical bytes.
        for f1 in &s1.files {
            if let Some(f0) = s0.files.iter().find(|f| f.id == f1.id) {
                if f0.change_token() == f1.change_token() {
                    prop_assert_eq!(f0.materialize(), f1.materialize(), "{}", f1.path);
                } else {
                    prop_assert_ne!(f0.materialize(), f1.materialize(), "{}", f1.path);
                }
            }
        }
    }

    /// The SourceFile impl agrees with the inherent methods.
    #[test]
    fn source_file_impl_consistent(seed in any::<u64>()) {
        let mut generator = Generator::new(DatasetSpec::tiny_test(), seed);
        let snap = generator.snapshot(0);
        for f in snap.files.iter().take(10) {
            let s: &dyn SourceFile = f;
            prop_assert_eq!(s.size() as usize, f.len());
            prop_assert_eq!(s.read(), f.materialize());
            prop_assert_eq!(s.app_type(), f.app);
        }
    }

    /// The PRNG's bounded sampler stays in bounds for arbitrary bounds.
    #[test]
    fn prng_below_in_bounds(seed in any::<u64>(), bound in 1u64..) {
        let mut r = Prng::new(seed);
        for _ in 0..100 {
            prop_assert!(r.below(bound) < bound);
        }
    }

    /// Derived PRNG streams for different tuples are uncorrelated at the
    /// first draw (no accidental tuple aliasing).
    #[test]
    fn prng_derive_no_aliasing(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(
            Prng::derive(&[a, b]).next_u64(),
            Prng::derive(&[b, a]).next_u64()
        );
        prop_assert_ne!(
            Prng::derive(&[a]).next_u64(),
            Prng::derive(&[a, 0]).next_u64()
        );
    }
}
