//! Stateful weekly-snapshot generator.
//!
//! [`Generator::new`] builds the week-0 file population from a
//! [`DatasetSpec`]; each [`Generator::snapshot`] call returns the full
//! backup of the requested week (the paper runs *full* weekly backups, so
//! every snapshot presents every live file), evolving the population
//! between weeks with category-appropriate churn:
//!
//! * compressed files are immutable; libraries accrete (and occasionally
//!   duplicate) files;
//! * static files rarely change, and change wholesale when they do;
//! * VM images receive in-place block overwrites;
//! * documents receive offset-shifting paragraph edits and appends;
//! * tiny files churn fast but carry almost no bytes.

use crate::content::{compressed_bytes, BlockFile, TokenFile, BLOCK};
use crate::model::{AppSpec, DatasetSpec};
use crate::rng::Prng;
use aadedupe_filetype::{AppType, Category};

/// How a file's bytes are derived.
#[derive(Debug, Clone)]
enum Body {
    /// Seeded random stream of the given length (compressed apps).
    Compressed { seed: u64, len: usize },
    /// Aligned-block file (static apps, VM images).
    Blocky(BlockFile),
    /// Paragraph-token file (dynamic documents, tiny text files).
    Tokens(TokenFile),
}

/// One live file in the population.
#[derive(Debug, Clone)]
struct FileState {
    id: u64,
    app: AppType,
    path: String,
    body: Body,
    tiny: bool,
}

/// One file of a snapshot, materializable on demand.
#[derive(Debug, Clone)]
pub struct FileEntry {
    /// Stable file identifier across weeks.
    pub id: u64,
    /// Repository-relative path (extension encodes the application).
    pub path: String,
    /// Application type.
    pub app: AppType,
    /// Whether this file belongs to the tiny-file population.
    pub tiny: bool,
    body: Body,
    pool_tag: u64,
}

impl FileEntry {
    /// Produces the file's bytes.
    pub fn materialize(&self) -> Vec<u8> {
        match &self.body {
            Body::Compressed { seed, len } => compressed_bytes(*seed, *len),
            Body::Blocky(b) => b.materialize(self.pool_tag),
            Body::Tokens(t) => t.materialize(self.pool_tag),
        }
    }

    /// The file's length in bytes (without materializing).
    pub fn len(&self) -> usize {
        match &self.body {
            Body::Compressed { len, .. } => *len,
            Body::Blocky(b) => b.len(),
            Body::Tokens(t) => t.byte_len(),
        }
    }

    /// True for zero-length files.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A cheap content-version token (the synthetic analogue of an mtime):
    /// derived from the file's *logical description*, not its bytes, so it
    /// is O(description) like a stat call, and changes exactly when the
    /// derivation changes.
    pub fn change_token(&self) -> u64 {
        fn mix(acc: u64, v: u64) -> u64 {
            (acc ^ v).wrapping_mul(0x100000001B3).rotate_left(17)
        }
        match &self.body {
            Body::Compressed { seed, len } => mix(mix(1, *seed), *len as u64),
            Body::Blocky(b) => b.structure_token(),
            Body::Tokens(t) => t.structure_token(),
        }
    }
}

impl aadedupe_filetype::SourceFile for FileEntry {
    fn path(&self) -> &str {
        &self.path
    }

    fn app_type(&self) -> AppType {
        self.app
    }

    fn size(&self) -> u64 {
        self.len() as u64
    }

    fn read(&self) -> Vec<u8> {
        self.materialize()
    }

    fn change_token(&self) -> u64 {
        FileEntry::change_token(self)
    }
}

/// A full weekly backup: every live file of that week.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Week number (0-based).
    pub week: usize,
    /// The files, in stable id order.
    pub files: Vec<FileEntry>,
}

impl Snapshot {
    /// Total logical bytes in the snapshot.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.len() as u64).sum()
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// The files as backup-scheme inputs.
    pub fn as_sources(&self) -> Vec<&dyn aadedupe_filetype::SourceFile> {
        self.files
            .iter()
            .map(|f| f as &dyn aadedupe_filetype::SourceFile)
            .collect()
    }
}

/// The stateful generator.
pub struct Generator {
    spec: DatasetSpec,
    seed: u64,
    week: usize,
    next_id: u64,
    files: Vec<FileState>,
}

impl Generator {
    /// Builds the week-0 population.
    pub fn new(spec: DatasetSpec, seed: u64) -> Self {
        let mut gen = Generator { spec, seed, week: 0, next_id: 0, files: Vec::new() };
        let apps = gen.spec.apps.clone();
        for a in &apps {
            for _ in 0..a.initial_files {
                gen.spawn_file(a, false);
            }
        }
        let tiny_count = gen.spec.tiny.initial_files;
        for _ in 0..tiny_count {
            gen.spawn_tiny();
        }
        gen
    }

    fn pool_tag(seed: u64, app: AppType) -> u64 {
        // One pool per (dataset, application): cross-app sharing is zero by
        // construction (Observation 2).
        seed ^ (app.tag() as u64).wrapping_mul(0x9E3779B97F4A7C15)
    }

    fn spawn_file(&mut self, a: &AppSpec, force_copy: bool) {
        let id = self.next_id;
        self.next_id += 1;
        let mut r = Prng::derive(&[self.seed, id, 0xF11E]);

        // File-level duplicates: copy an existing same-type file's body.
        let copy = force_copy || r.chance(a.copy_rate);
        if copy {
            if let Some(src) = self
                .files
                .iter()
                .filter(|f| f.app == a.app && !f.tiny)
                .nth(r.below(64) as usize % self.files.len().max(1))
            {
                let body = src.body.clone();
                let path = format!("user/{}/file{:06}.{}", a.app.extension(), id, a.app.extension());
                self.files.push(FileState { id, app: a.app, path, body, tiny: false });
                return;
            }
        }

        let len = r.lognormal_mean(a.mean_file_size as f64, a.sigma).max(12.0 * 1024.0) as usize;
        let body = match a.app.category() {
            Category::Compressed => Body::Compressed { seed: r.next_u64(), len },
            Category::StaticUncompressed => Body::Blocky(BlockFile::new(
                r.next_u64(),
                len,
                Self::pool_tag(self.seed, a.app),
                a.pool_size,
                a.dup_rate,
            )),
            Category::DynamicUncompressed => {
                // Documents carry their redundancy as *versions*: users
                // keep edited near-copies (report_v2.doc, thesis drafts).
                // A near-copy shares long byte runs with its source --
                // catchable by CDC fully and by SC up to the first shifted
                // offset, which is exactly the SC~CDC balance Table 1
                // reports for DOC/TXT/PPT.
                // Rate is boosted over the raw Table-1 fraction because at
                // laptop scale files are smaller, so each edit destroys a
                // larger share of a near-copy's chunk-level overlap.
                let near_copy = r.chance((a.dup_rate * 2.0).min(0.45));
                let source = if near_copy {
                    let candidates: Vec<&FileState> = self
                        .files
                        .iter()
                        .filter(|f| f.app == a.app && !f.tiny)
                        .collect();
                    if candidates.is_empty() {
                        None
                    } else {
                        let pick = r.below(candidates.len() as u64) as usize;
                        match &candidates[pick].body {
                            Body::Tokens(t) => Some(t.clone()),
                            _ => None,
                        }
                    }
                } else {
                    None
                };
                match source {
                    Some(mut t) => {
                        t.edit(r.next_u64(), 2);
                        t.append(r.next_u64(), 1);
                        Body::Tokens(t)
                    }
                    None => Body::Tokens(TokenFile::new(
                        r.next_u64(),
                        len,
                        a.pool_size,
                        // Paragraph-level pool sharing is kept as texture;
                        // version near-copies carry the calibrated bulk.
                        a.dup_rate / 3.0,
                    )),
                }
            }
        };
        let path = format!("user/{}/file{:06}.{}", a.app.extension(), id, a.app.extension());
        self.files.push(FileState { id, app: a.app, path, body, tiny: false });
    }

    fn spawn_tiny(&mut self) {
        let id = self.next_id;
        self.next_id += 1;
        let mut r = Prng::derive(&[self.seed, id, 0x717F]);
        let len = r
            .lognormal_mean(self.spec.tiny.mean_file_size as f64, 0.8)
            .clamp(64.0, 10.0 * 1024.0 - 1.0) as usize;
        // Tiny files: mostly text/config, some small images.
        let (app, body) = if r.chance(0.8) {
            (AppType::Txt, Body::Tokens(TokenFile::new(r.next_u64(), len, 256, 0.15)))
        } else {
            (AppType::Jpg, Body::Compressed { seed: r.next_u64(), len })
        };
        let path = format!("user/tiny/note{:06}.{}", id, app.extension());
        self.files.push(FileState { id, app, path, body, tiny: true });
    }

    /// The current week the generator is positioned at.
    pub fn current_week(&self) -> usize {
        self.week
    }

    /// Returns the full backup for `week`.
    ///
    /// Weeks must be requested in non-decreasing order; requesting a past
    /// week panics (the churn process is not reversible).
    pub fn snapshot(&mut self, week: usize) -> Snapshot {
        assert!(
            week >= self.week,
            "cannot rewind the generator (at week {}, requested {week})",
            self.week
        );
        while self.week < week {
            self.advance_week();
        }
        let files = self
            .files
            .iter()
            .map(|f| FileEntry {
                id: f.id,
                path: f.path.clone(),
                app: f.app,
                tiny: f.tiny,
                body: f.body.clone(),
                pool_tag: Self::pool_tag(self.seed, f.app),
            })
            .collect();
        Snapshot { week, files }
    }

    fn advance_week(&mut self) {
        self.week += 1;
        let week = self.week as u64;
        let apps = self.spec.apps.clone();
        let mut r = Prng::derive(&[self.seed, week, 0x3EE4]);

        // Deletions and modifications over the existing population.
        let mut doomed: Vec<usize> = Vec::new();
        for i in 0..self.files.len() {
            let (app, tiny, id) = {
                let f = &self.files[i];
                (f.app, f.tiny, f.id)
            };
            let (modify_frac, delete_frac) = if tiny {
                (self.spec.tiny.weekly_modify_fraction, self.spec.tiny.weekly_delete_fraction)
            } else {
                match apps.iter().find(|a| a.app == app) {
                    Some(a) => (a.weekly_modify_fraction, a.weekly_delete_fraction),
                    None => (0.10, 0.02), // tiny-population types not in spec
                }
            };
            if r.chance(delete_frac) {
                doomed.push(i);
                continue;
            }
            if r.chance(modify_frac) {
                let step = Prng::derive(&[self.seed, id, week, 0xED17]).next_u64();
                let f = &mut self.files[i];
                match &mut f.body {
                    // Compressed files are immutable; "modification" in
                    // media libraries is re-export = wholesale new bytes.
                    Body::Compressed { seed, .. } => *seed = step,
                    Body::Blocky(b) => {
                        // VM images: in-place writes touching ~2% of blocks;
                        // other static files: a couple of blocks.
                        let frac = if f.app == AppType::Vmdk { 0.02 } else { 0.01 };
                        let count = ((b.len() / BLOCK) as f64 * frac).ceil() as usize;
                        b.overwrite_blocks(step, count.max(1));
                    }
                    Body::Tokens(t) => {
                        t.edit(step, 3);
                        t.append(step ^ 0xAAAA, 1);
                    }
                }
            }
        }
        for i in doomed.into_iter().rev() {
            self.files.swap_remove(i);
        }
        self.files.sort_by_key(|f| f.id);

        // Arrivals.
        for a in &apps {
            for _ in 0..a.weekly_new_files {
                self.spawn_file(a, false);
            }
        }
        for _ in 0..self.spec.tiny.weekly_new_files {
            self.spawn_tiny();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DatasetSpec;

    fn small_gen() -> Generator {
        Generator::new(DatasetSpec::tiny_test(), 42)
    }

    #[test]
    fn snapshots_are_deterministic() {
        let s1 = Generator::new(DatasetSpec::tiny_test(), 7).snapshot(0);
        let s2 = Generator::new(DatasetSpec::tiny_test(), 7).snapshot(0);
        assert_eq!(s1.file_count(), s2.file_count());
        for (a, b) in s1.files.iter().zip(s2.files.iter()) {
            assert_eq!(a.path, b.path);
            assert_eq!(a.materialize(), b.materialize());
        }
        // Different seed, different data.
        let s3 = Generator::new(DatasetSpec::tiny_test(), 8).snapshot(0);
        assert!(s1
            .files
            .iter()
            .zip(s3.files.iter())
            .any(|(a, b)| a.materialize() != b.materialize()));
    }

    #[test]
    fn unchanged_files_identical_across_weeks() {
        let mut generator = small_gen();
        let w0 = generator.snapshot(0);
        let w1 = generator.snapshot(1);
        // Compressed files never change in place: every surviving id has
        // identical bytes unless its seed was re-rolled (modify_frac = 0).
        let mut survived = 0;
        for f1 in w1.files.iter().filter(|f| f.app.category() == Category::Compressed && !f.tiny) {
            if let Some(f0) = w0.files.iter().find(|f| f.id == f1.id) {
                assert_eq!(f0.materialize(), f1.materialize(), "compressed file mutated");
                survived += 1;
            }
        }
        assert!(survived > 0, "no compressed files survived week 1");
    }

    #[test]
    fn weekly_churn_changes_some_documents() {
        let mut generator = small_gen();
        let w0 = generator.snapshot(0);
        let w3 = generator.snapshot(3);
        let mut changed = 0;
        let mut compared = 0;
        for f3 in w3.files.iter().filter(|f| f.app.category() == Category::DynamicUncompressed) {
            if let Some(f0) = w0.files.iter().find(|f| f.id == f3.id) {
                compared += 1;
                if f0.materialize() != f3.materialize() {
                    changed += 1;
                }
            }
        }
        assert!(compared > 0);
        assert!(changed > 0, "three weeks of churn should edit something");
    }

    #[test]
    fn population_grows_over_time() {
        let mut generator = small_gen();
        let c0 = generator.snapshot(0).file_count();
        let c5 = generator.snapshot(5).file_count();
        assert!(c5 > c0, "arrivals should outpace the small delete rate");
    }

    #[test]
    #[should_panic(expected = "cannot rewind")]
    fn rewinding_panics() {
        let mut generator = small_gen();
        generator.snapshot(2);
        generator.snapshot(1);
    }

    #[test]
    fn entry_len_matches_materialized_len() {
        let mut generator = small_gen();
        for f in &generator.snapshot(0).files {
            assert_eq!(f.len(), f.materialize().len(), "{}", f.path);
        }
    }

    #[test]
    fn tiny_files_are_tiny_and_dominate_count() {
        let mut generator = small_gen();
        let snap = generator.snapshot(0);
        let tiny: Vec<_> = snap.files.iter().filter(|f| f.tiny).collect();
        assert!(tiny.iter().all(|f| f.len() < 10 * 1024));
        let frac = tiny.len() as f64 / snap.file_count() as f64;
        assert!(frac > 0.4, "tiny fraction {frac}");
    }

    #[test]
    fn paths_encode_app_types() {
        let mut generator = small_gen();
        for f in &generator.snapshot(0).files {
            assert_eq!(
                aadedupe_filetype::classify(std::path::Path::new(&f.path)),
                f.app,
                "{}",
                f.path
            );
        }
    }
}
