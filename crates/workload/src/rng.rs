//! Deterministic PRNG for workload generation.
//!
//! A splitmix64 generator: tiny state, excellent diffusion, and — unlike
//! external crates' generators — guaranteed stable output across dependency
//! upgrades, which matters because test expectations and experiment
//! reproducibility hinge on byte-identical synthetic datasets.

/// Splitmix64 PRNG.
#[derive(Debug, Clone)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Generator seeded directly.
    pub fn new(seed: u64) -> Self {
        Prng { state: seed }
    }

    /// Derives an independent generator from a tuple of seeds — used to
    /// give every (dataset, file, version) its own stream.
    pub fn derive(parts: &[u64]) -> Self {
        let mut s = 0x9E3779B97F4A7C15u64;
        for &p in parts {
            s ^= p.wrapping_add(0x9E3779B97F4A7C15).rotate_left(23);
            s = s.wrapping_mul(0xBF58476D1CE4E5B9);
            s ^= s >> 27;
        }
        Prng { state: s }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // workload purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        let u1 = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Lognormal sample with the given *mean* (not median) and shape
    /// `sigma`: `exp(mu + sigma·N)` with `mu = ln(mean) − sigma²/2`.
    pub fn lognormal_mean(&mut self, mean: f64, sigma: f64) -> f64 {
        let mu = mean.ln() - sigma * sigma / 2.0;
        (mu + sigma * self.normal()).exp()
    }

    /// Fills `buf` with random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Prng::new(7);
        let mut b = Prng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::new(8);
        assert_ne!(Prng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn derive_distinguishes_tuples() {
        let a = Prng::derive(&[1, 2, 3]).next_u64();
        let b = Prng::derive(&[1, 2, 4]).next_u64();
        let c = Prng::derive(&[1, 2]).next_u64();
        let d = Prng::derive(&[3, 2, 1]).next_u64();
        assert!(a != b && a != c && a != d && b != c);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Prng::new(42);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
        // Rough uniformity.
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.below(7) as usize] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn unit_in_range_and_mean_near_half() {
        let mut r = Prng::new(1);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 100_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn normal_moments() {
        let mut r = Prng::new(99);
        let n = 100_000;
        let (mut s1, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.normal();
            s1 += x;
            s2 += x * x;
        }
        let mean = s1 / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_mean_is_calibrated() {
        let mut r = Prng::new(5);
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += r.lognormal_mean(1000.0, 0.8);
        }
        let mean = sum / n as f64;
        assert!((mean - 1000.0).abs() < 30.0, "mean {mean}");
    }

    #[test]
    fn fill_covers_every_byte() {
        let mut r = Prng::new(3);
        let mut buf = vec![0u8; 37];
        r.fill(&mut buf);
        // Extremely unlikely any 8-byte stretch is still zero.
        assert!(buf.windows(8).all(|w| w.iter().any(|&b| b != 0)));
        // Deterministic.
        let mut buf2 = vec![0u8; 37];
        Prng::new(3).fill(&mut buf2);
        assert_eq!(buf, buf2);
    }
}
