#![forbid(unsafe_code)]
//! Synthetic PC backup workload generator.
//!
//! The paper drives its evaluation with a private trace: 10 consecutive
//! weekly full backups of a user directory — 351 GB, 68,972 files, 12
//! applications. That trace is unavailable, so this crate generates a
//! statistically equivalent synthetic workload (the substitution is argued
//! in DESIGN.md §5). Everything the evaluation consumes is calibrated to
//! the paper's published numbers:
//!
//! * **File size mix** (Figs. 1–2): ~61 % of files are tiny (< 10 KiB)
//!   holding ~1.2 % of bytes; ~1.4 % of files exceed 1 MiB and hold ~75 %
//!   of bytes.
//! * **Per-application redundancy** (Table 1): compressed types carry no
//!   sub-file redundancy; static types carry *aligned* duplicate blocks
//!   (so SC ≥ CDC); dynamic types carry *unaligned* shared runs (so
//!   CDC ≥ SC).
//! * **Cross-application sharing ≈ 0** (Observation 2): every type draws
//!   content from its own seeded pools.
//! * **Weekly churn**: compressed files are immutable but accrete; static
//!   files rarely change; VM images take in-place block writes; dynamic
//!   documents take insert/delete/replace edits that shift byte offsets.
//!
//! All content is derived from `(dataset seed, file id, version)` tuples,
//! so snapshots are deterministic, unchanged files are byte-identical
//! across weeks, and nothing is held in RAM until a file is
//! [`materialize`](FileEntry::materialize)d.

pub mod content;
pub mod generator;
pub mod model;
pub mod rng;
pub mod sizedist;

pub use generator::{FileEntry, Generator, Snapshot};
pub use model::{AppSpec, DatasetSpec};
pub use rng::Prng;
pub use sizedist::{SizeBucket, SizeHistogram};
