//! Dataset specifications.
//!
//! A [`DatasetSpec`] describes the synthetic PC user directory: one
//! [`AppSpec`] per application type (population size, file-size
//! distribution, intra-type redundancy, weekly churn) plus the tiny-file
//! population that dominates file *count* without mattering for bytes
//! (Figs. 1–2).

use aadedupe_filetype::{AppType, Category};

/// Per-application population parameters.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// The application type.
    pub app: AppType,
    /// Number of (non-tiny) files in the week-0 snapshot.
    pub initial_files: usize,
    /// Mean file size in bytes (lognormal mean).
    pub mean_file_size: u64,
    /// Lognormal shape parameter.
    pub sigma: f64,
    /// Intra-type duplicate rate: probability a block/paragraph is drawn
    /// from the application pool. Calibrated as `1 − 1/DR` from Table 1.
    pub dup_rate: f64,
    /// Number of distinct pool blocks/paragraphs for the type.
    pub pool_size: u64,
    /// New files added each week.
    pub weekly_new_files: usize,
    /// Fraction of existing files edited each week (category-appropriate
    /// edit: block overwrite, token edits, or wholesale replacement).
    pub weekly_modify_fraction: f64,
    /// Fraction of existing files deleted each week.
    pub weekly_delete_fraction: f64,
    /// Probability a new file is an exact copy of an existing one
    /// (file-level redundancy).
    pub copy_rate: f64,
}

impl AppSpec {
    /// Calibrated spec for `app`, targeting `bytes` of week-0 data with
    /// file sizes scaled down by `scale` from the paper's means.
    pub fn calibrated(app: AppType, bytes: u64, scale: f64) -> Self {
        let profile = app.profile();
        let mean = ((profile.mean_file_size as f64 / scale) as u64).max(12 * 1024);
        let count = (bytes as f64 / mean as f64).ceil().max(1.0) as usize;
        // The pool rate reproducing the paper's post-file-dedup chunk DR:
        // DR ≈ 1/(1−d)  ⇒  d = 1 − 1/DR, using the chunking the category
        // actually gets under AA-Dedupe (SC for static, CDC for dynamic).
        let dr = match app.category() {
            Category::Compressed => 1.0, // no sub-file redundancy
            Category::StaticUncompressed => profile.sc_dr,
            Category::DynamicUncompressed => profile.cdc_dr,
        };
        let dup_rate = (1.0 - 1.0 / dr).max(0.0);
        // The pool must be small relative to the number of pool draws for
        // draws to actually collide: with U content units in the corpus
        // and a fraction `d` drawn from the pool, DR ≈ 1/(1−d) only when
        // pool_size ≪ U·d. Size the pool at ~1/10th of the expected draws.
        let unit_bytes = match app.category() {
            Category::StaticUncompressed => 8 * 1024, // aligned blocks
            _ => 1150,                                 // avg paragraph
        };
        let units = (bytes / unit_bytes).max(1);
        let pool_size = (((units as f64 * dup_rate) / 10.0) as u64).max(16);
        let (modify, delete, new_frac, copy_rate) = match app.category() {
            // Media/archives: immutable, accrete, almost never deleted.
            Category::Compressed => (0.0, 0.005, 0.03, 0.04),
            // Static apps: rare updates (reinstalls), occasional additions.
            Category::StaticUncompressed => (0.05, 0.005, 0.01, 0.02),
            // Documents: actively edited and growing.
            Category::DynamicUncompressed => (0.25, 0.01, 0.05, 0.03),
        };
        AppSpec {
            app,
            initial_files: count,
            mean_file_size: mean,
            sigma: 0.7,
            dup_rate,
            pool_size,
            weekly_new_files: ((count as f64 * new_frac).ceil() as usize).max(1),
            weekly_modify_fraction: modify,
            weekly_delete_fraction: delete,
            copy_rate,
        }
    }
}

/// Tiny-file population parameters (files below the 10 KiB size filter).
#[derive(Debug, Clone)]
pub struct TinySpec {
    /// Number of tiny files in the week-0 snapshot.
    pub initial_files: usize,
    /// Mean tiny-file size in bytes.
    pub mean_file_size: u64,
    /// New tiny files per week.
    pub weekly_new_files: usize,
    /// Fraction modified per week.
    pub weekly_modify_fraction: f64,
    /// Fraction deleted per week.
    pub weekly_delete_fraction: f64,
}

/// Complete dataset description.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Per-application populations.
    pub apps: Vec<AppSpec>,
    /// The tiny-file population.
    pub tiny: TinySpec,
}

impl DatasetSpec {
    /// A dataset whose week-0 snapshot holds roughly `total_bytes` of
    /// non-tiny data split across the twelve paper applications in the
    /// byte proportions of Table 1, with file sizes scaled down
    /// proportionally and tiny files sized to reproduce the Fig. 1/2
    /// count/capacity split (61 % of files ↔ 1.2 % of bytes).
    pub fn paper_scaled(total_bytes: u64) -> Self {
        let paper_total_mb: u64 = AppType::TABLE1.iter().map(|a| a.profile().dataset_mb).sum();
        // Scale file sizes sublinearly (exponent 0.7): a 1000× smaller
        // dataset gets ~125× smaller files but ~8× fewer of them, keeping
        // the Fig. 1/2 shape (large files still cross the 1 MiB line) at
        // laptop scale. Counts are derived from the byte budget, so totals
        // still match `total_bytes`.
        let scale = ((paper_total_mb as f64 * 1024.0 * 1024.0) / total_bytes as f64)
            .max(1.0)
            .powf(0.7);
        let apps: Vec<AppSpec> = AppType::TABLE1
            .iter()
            .map(|&app| {
                let share =
                    app.profile().dataset_mb as f64 / paper_total_mb as f64 * total_bytes as f64;
                AppSpec::calibrated(app, share as u64, scale)
            })
            .collect();
        let big_count: usize = apps.iter().map(|a| a.initial_files).sum();
        // 61 % of all files are tiny: tiny = 0.61/(1-0.61) × big count.
        let tiny_count = ((big_count as f64) * 0.61 / 0.39).ceil() as usize;
        // Tiny bytes ≈ 1.2 % of capacity.
        let tiny_bytes = (total_bytes as f64 * 0.012) as u64;
        let tiny_mean = (tiny_bytes / tiny_count.max(1) as u64).clamp(512, 9 * 1024);
        DatasetSpec {
            apps,
            tiny: TinySpec {
                initial_files: tiny_count,
                mean_file_size: tiny_mean,
                weekly_new_files: (tiny_count / 25).max(1),
                weekly_modify_fraction: 0.10,
                weekly_delete_fraction: 0.02,
            },
        }
    }

    /// The *evaluation* composition (paper SIV.A): the user directory of
    /// one of the authors' PCs -- a typical media-heavy personal dataset,
    /// unlike the VMDK-dominated corpus of the Table 1 *study*. Byte
    /// shares: ~50 % compressed media/archives, ~15 % static (incl. one
    /// VM image's worth), ~20 % dynamic documents, rest tiny files and
    /// slack. This is the mix under which the application-aware index
    /// pays off: chunk-level indexes cover only the non-media minority.
    pub fn eval_mix(total_bytes: u64) -> Self {
        let shares: &[(AppType, f64)] = &[
            (AppType::Avi, 0.16),
            (AppType::Mp3, 0.10),
            (AppType::Iso, 0.08),
            (AppType::Dmg, 0.05),
            (AppType::Rar, 0.06),
            (AppType::Jpg, 0.07),
            (AppType::Pdf, 0.06),
            (AppType::Exe, 0.03),
            (AppType::Vmdk, 0.15),
            (AppType::Doc, 0.07),
            (AppType::Txt, 0.08),
            (AppType::Ppt, 0.07),
        ];
        let paper_total_mb: u64 = AppType::TABLE1.iter().map(|a| a.profile().dataset_mb).sum();
        let scale = ((paper_total_mb as f64 * 1024.0 * 1024.0) / total_bytes as f64)
            .max(1.0)
            .powf(0.7);
        let apps: Vec<AppSpec> = shares
            .iter()
            .map(|&(app, share)| {
                AppSpec::calibrated(app, (share * total_bytes as f64) as u64, scale)
            })
            .collect();
        let big_count: usize = apps.iter().map(|a| a.initial_files).sum();
        let tiny_count = ((big_count as f64) * 0.61 / 0.39).ceil() as usize;
        let tiny_bytes = (total_bytes as f64 * 0.012) as u64;
        let tiny_mean = (tiny_bytes / tiny_count.max(1) as u64).clamp(512, 9 * 1024);
        DatasetSpec {
            apps,
            tiny: TinySpec {
                initial_files: tiny_count,
                mean_file_size: tiny_mean,
                weekly_new_files: (tiny_count / 25).max(1),
                weekly_modify_fraction: 0.10,
                weekly_delete_fraction: 0.02,
            },
        }
    }

    /// A very small dataset (a few MB) for unit tests and doc examples.
    pub fn tiny_test() -> Self {
        let mut spec = Self::paper_scaled(8 << 20);
        // Keep populations small enough for sub-second tests.
        for a in &mut spec.apps {
            a.initial_files = a.initial_files.min(6);
            a.weekly_new_files = 1;
        }
        spec.tiny.initial_files = spec.tiny.initial_files.min(60);
        spec.tiny.weekly_new_files = 3;
        spec
    }

    /// Expected week-0 logical size (sum of per-app means; the realised
    /// size varies with the lognormal draw).
    pub fn expected_bytes(&self) -> u64 {
        self.apps
            .iter()
            .map(|a| a.initial_files as u64 * a.mean_file_size)
            .sum::<u64>()
            + self.tiny.initial_files as u64 * self.tiny.mean_file_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scaled_matches_byte_target() {
        let target = 64 << 20;
        let spec = DatasetSpec::paper_scaled(target);
        let expected = spec.expected_bytes();
        let ratio = expected as f64 / target as f64;
        assert!((0.6..1.6).contains(&ratio), "expected/target = {ratio}");
        assert_eq!(spec.apps.len(), 12);
    }

    #[test]
    fn tiny_files_dominate_count_not_bytes() {
        let spec = DatasetSpec::paper_scaled(64 << 20);
        let big: usize = spec.apps.iter().map(|a| a.initial_files).sum();
        let tiny = spec.tiny.initial_files;
        let tiny_frac = tiny as f64 / (tiny + big) as f64;
        assert!((0.55..0.67).contains(&tiny_frac), "tiny count fraction {tiny_frac}");
        let tiny_bytes = tiny as u64 * spec.tiny.mean_file_size;
        assert!(
            (tiny_bytes as f64) < 0.03 * spec.expected_bytes() as f64,
            "tiny bytes too large"
        );
    }

    #[test]
    fn dup_rates_follow_table1() {
        let spec = DatasetSpec::paper_scaled(64 << 20);
        let get = |t: AppType| spec.apps.iter().find(|a| a.app == t).unwrap();
        assert_eq!(get(AppType::Avi).dup_rate, 0.0);
        let vmdk = get(AppType::Vmdk).dup_rate;
        assert!((vmdk - (1.0 - 1.0 / 1.286)).abs() < 1e-9);
        let txt = get(AppType::Txt).dup_rate;
        assert!((txt - (1.0 - 1.0 / 1.259)).abs() < 1e-9);
        assert!(vmdk > txt * 0.8, "VMDK carries the most sub-file redundancy");
    }

    #[test]
    fn vmdk_holds_most_bytes() {
        // Table 1: VMDK is ~68 % of the studied corpus.
        let spec = DatasetSpec::paper_scaled(128 << 20);
        let bytes = |t: AppType| {
            let a = spec.apps.iter().find(|a| a.app == t).unwrap();
            a.initial_files as u64 * a.mean_file_size
        };
        let vmdk = bytes(AppType::Vmdk);
        let total: u64 = spec.apps.iter().map(|a| a.initial_files as u64 * a.mean_file_size).sum();
        let share = vmdk as f64 / total as f64;
        assert!((0.5..0.8).contains(&share), "vmdk share {share}");
    }

    #[test]
    fn tiny_test_is_small() {
        let spec = DatasetSpec::tiny_test();
        assert!(spec.expected_bytes() < 32 << 20);
        let files: usize =
            spec.apps.iter().map(|a| a.initial_files).sum::<usize>() + spec.tiny.initial_files;
        assert!(files < 200);
    }
}
