//! Content synthesis per application category.
//!
//! Each category's generator is engineered to reproduce the redundancy
//! *structure* the paper measured (Table 1), not just a redundancy level:
//!
//! * [`compressed_bytes`] — pure seeded random: no sub-file redundancy,
//!   mirroring media/archive formats whose encoders already removed it.
//! * [`BlockFile`] — files composed of aligned 8 KiB blocks, some drawn
//!   from a per-application pool (duplicates) and some unique. Because
//!   duplicates are *aligned*, static chunking captures them all while CDC
//!   straddles their edges — producing SC ≥ CDC exactly as the paper's
//!   Observation 3 reports for PDF/EXE/VMDK. Supports in-place block
//!   overwrite (how VM images change between backups).
//! * [`TokenFile`] — files composed of variable-length "paragraphs", some
//!   from a per-application pool (shared boilerplate) and some unique,
//!   plus insert/delete/replace edits that shift subsequent bytes —
//!   producing CDC ≥ SC as the paper reports for DOC/TXT/PPT.
//!
//! Pools are keyed by application type, so content never collides across
//! applications (Observation 2 by construction).

use crate::rng::Prng;

/// Block size used by blocky (static/VM) content; equals the evaluation's
/// SC chunk size so aligned duplicates map one-to-one onto static chunks.
pub const BLOCK: usize = 8 * 1024;

/// Seeded random bytes (compressed-category content).
pub fn compressed_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    Prng::derive(&[seed, 0xC0]).fill(&mut out);
    out
}

/// Expands a pool block: the `pool_tag` names the application's pool, the
/// `slot` the block within it.
fn pool_block(pool_tag: u64, slot: u64) -> Vec<u8> {
    let mut out = vec![0u8; BLOCK];
    Prng::derive(&[pool_tag, 0xB1, slot]).fill(&mut out);
    out
}

/// A file made of aligned blocks (static uncompressed / VM images).
///
/// The logical description (which block is where) is computed from the
/// seed; bytes are produced on demand.
#[derive(Debug, Clone)]
pub struct BlockFile {
    /// Per-block source: `Pool(slot)` or `Unique(seed)`.
    blocks: Vec<BlockSrc>,
    /// Length of the final (possibly short) tail block.
    tail_len: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockSrc {
    Pool(u64),
    Unique(u64),
}

impl BlockFile {
    /// Builds the block layout for a file of `len` bytes.
    ///
    /// Each block is drawn from the application pool (of `pool_size`
    /// slots) with probability `dup_rate`, otherwise unique. `pool_tag`
    /// must be distinct per application type.
    pub fn new(seed: u64, len: usize, _pool_tag: u64, pool_size: u64, dup_rate: f64) -> Self {
        let mut r = Prng::derive(&[seed, 0xB2]);
        let nblocks = len.div_ceil(BLOCK).max(1);
        let tail_len = if len == 0 {
            0
        } else if len.is_multiple_of(BLOCK) {
            BLOCK
        } else {
            len % BLOCK
        };
        // Shared content comes in *runs* of consecutive pool blocks (VM
        // images share multi-block extents -- OS files, zero regions -- not
        // isolated 8 KiB blocks). Runs are what variable-size CDC can
        // partially capture; isolated aligned blocks are SC-only, which
        // would exaggerate Observation 3 beyond the paper's measurements.
        const RUN: usize = 8;
        let mut blocks = Vec::with_capacity(nblocks);
        while blocks.len() < nblocks {
            let run = RUN.min(nblocks - blocks.len());
            if r.chance(dup_rate) && pool_size > 0 {
                let start = r.below(pool_size);
                for j in 0..run {
                    blocks.push(BlockSrc::Pool((start + j as u64) % pool_size));
                }
            } else {
                for _ in 0..run {
                    blocks.push(BlockSrc::Unique(r.next_u64()));
                }
            }
        }
        BlockFile { blocks, tail_len }
    }

    /// Overwrites `count` randomly chosen blocks with fresh unique content
    /// — the in-place update pattern of VM disk images (no offsets shift).
    pub fn overwrite_blocks(&mut self, step_seed: u64, count: usize) {
        let mut r = Prng::derive(&[step_seed, 0xB3]);
        if self.blocks.is_empty() {
            return;
        }
        for _ in 0..count {
            let i = r.below(self.blocks.len() as u64) as usize;
            self.blocks[i] = BlockSrc::Unique(r.next_u64());
        }
    }

    /// Total file length in bytes.
    pub fn len(&self) -> usize {
        if self.blocks.is_empty() {
            0
        } else {
            (self.blocks.len() - 1) * BLOCK + self.tail_len
        }
    }

    /// True for zero-length files.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }


    /// Token summarising the block layout — changes iff any block changes.
    pub fn structure_token(&self) -> u64 {
        let mut acc = 0xB10Cu64 ^ self.tail_len as u64;
        for b in &self.blocks {
            let v = match b {
                BlockSrc::Pool(s) => 0x1000_0000_0000_0000 | *s,
                BlockSrc::Unique(s) => *s,
            };
            acc = (acc ^ v).wrapping_mul(0x100000001B3).rotate_left(13);
        }
        acc
    }

    /// Produces the file bytes.
    pub fn materialize(&self, pool_tag: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len());
        for (i, b) in self.blocks.iter().enumerate() {
            let bytes = match b {
                BlockSrc::Pool(slot) => pool_block(pool_tag, *slot),
                BlockSrc::Unique(seed) => {
                    let mut v = vec![0u8; BLOCK];
                    Prng::derive(&[*seed, 0xB4]).fill(&mut v);
                    v
                }
            };
            if i + 1 == self.blocks.len() {
                out.extend_from_slice(&bytes[..self.tail_len]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }
}

/// A file made of variable-length paragraphs (dynamic uncompressed
/// documents), mutable by offset-shifting edits.
#[derive(Debug, Clone)]
pub struct TokenFile {
    tokens: Vec<Token>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Token {
    /// Shared paragraph `slot` of the application pool.
    Pool(u64),
    /// Unique paragraph from `seed`.
    Unique(u64),
}

/// Paragraph length bounds (bytes).
const PARA_MIN: u64 = 256;
const PARA_MAX: u64 = 2048;

fn para_len(seed: u64) -> usize {
    Prng::derive(&[seed, 0x70]).range(PARA_MIN, PARA_MAX) as usize
}

/// Expands a paragraph into printable, text-like bytes.
fn para_bytes(seed: u64, len: usize) -> Vec<u8> {
    const WORDS: &[&str] = &[
        "the", "quarterly", "report", "shows", "figure", "analysis", "data", "backup", "cloud",
        "storage", "system", "design", "result", "section", "chunk", "index", "and", "of", "in",
        "performance", "overhead", "application", "aware", "dedup", "synthesis", "notes",
    ];
    let mut r = Prng::derive(&[seed, 0x7E]);
    let mut out = Vec::with_capacity(len + 16);
    while out.len() < len {
        let w = WORDS[r.below(WORDS.len() as u64) as usize];
        out.extend_from_slice(w.as_bytes());
        out.push(if r.chance(0.1) { b'\n' } else { b' ' });
    }
    out.truncate(len);
    out
}

impl TokenFile {
    /// Builds a document of roughly `len` bytes: paragraphs drawn from the
    /// application pool with probability `shared_rate`, else unique.
    pub fn new(seed: u64, len: usize, pool_size: u64, shared_rate: f64) -> Self {
        let mut r = Prng::derive(&[seed, 0xD0]);
        let mut tokens = Vec::new();
        let mut total = 0usize;
        while total < len {
            let t = if r.chance(shared_rate) && pool_size > 0 {
                Token::Pool(r.below(pool_size))
            } else {
                Token::Unique(r.next_u64())
            };
            total += match t {
                Token::Pool(slot) => para_len(slot.wrapping_mul(0x51ED)),
                Token::Unique(s) => para_len(s),
            };
            tokens.push(t);
        }
        TokenFile { tokens }
    }

    /// Applies one editing round: a few insertions, deletions and
    /// replacements at seeded positions. Insertions/deletions shift every
    /// subsequent byte — the boundary-shifting stressor for SC.
    pub fn edit(&mut self, step_seed: u64, ops: usize) {
        let mut r = Prng::derive(&[step_seed, 0xD1]);
        for _ in 0..ops {
            let kind = r.below(3);
            let n = self.tokens.len();
            match kind {
                0 => {
                    // Insert a fresh paragraph.
                    let pos = if n == 0 { 0 } else { r.below(n as u64 + 1) as usize };
                    self.tokens.insert(pos, Token::Unique(r.next_u64()));
                }
                1 if n > 1 => {
                    // Delete a paragraph.
                    let pos = r.below(n as u64) as usize;
                    self.tokens.remove(pos);
                }
                _ if n > 0 => {
                    // Replace a paragraph in place.
                    let pos = r.below(n as u64) as usize;
                    self.tokens[pos] = Token::Unique(r.next_u64());
                }
                _ => {}
            }
        }
    }

    /// Appends `count` fresh paragraphs (documents usually grow).
    pub fn append(&mut self, step_seed: u64, count: usize) {
        let mut r = Prng::derive(&[step_seed, 0xD2]);
        for _ in 0..count {
            self.tokens.push(Token::Unique(r.next_u64()));
        }
    }

    /// Number of paragraphs.
    pub fn token_count(&self) -> usize {
        self.tokens.len()
    }

    /// Exact materialized length in bytes (without materializing).
    pub fn byte_len(&self) -> usize {
        self.tokens
            .iter()
            .map(|t| match t {
                Token::Pool(slot) => para_len(slot.wrapping_mul(0x51ED)),
                Token::Unique(seed) => para_len(*seed),
            })
            .sum()
    }


    /// Token summarising the paragraph list — changes iff any edit lands.
    pub fn structure_token(&self) -> u64 {
        let mut acc = 0x70C5u64;
        for t in &self.tokens {
            let v = match t {
                Token::Pool(s) => 0x2000_0000_0000_0000 | *s,
                Token::Unique(s) => *s,
            };
            acc = (acc ^ v).wrapping_mul(0x100000001B3).rotate_left(13);
        }
        acc
    }

    /// Produces the document bytes. `pool_tag` selects the application's
    /// paragraph pool.
    pub fn materialize(&self, pool_tag: u64) -> Vec<u8> {
        let mut out = Vec::new();
        for t in &self.tokens {
            match t {
                Token::Pool(slot) => {
                    let len = para_len(slot.wrapping_mul(0x51ED));
                    out.extend_from_slice(&para_bytes(pool_tag ^ slot.wrapping_mul(0xA5A5), len));
                }
                Token::Unique(seed) => {
                    let len = para_len(*seed);
                    out.extend_from_slice(&para_bytes(*seed, len));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compressed_is_deterministic_and_incompressible() {
        let a = compressed_bytes(1, 10_000);
        let b = compressed_bytes(1, 10_000);
        assert_eq!(a, b);
        assert_ne!(a, compressed_bytes(2, 10_000));
        // No repeated 8 KiB blocks inside (SC would find nothing).
        let blocks: std::collections::HashSet<&[u8]> = a.chunks(1024).collect();
        assert_eq!(blocks.len(), 10);
    }

    #[test]
    fn block_file_length_exact() {
        for len in [0usize, 1, BLOCK - 1, BLOCK, BLOCK + 1, 5 * BLOCK + 17] {
            let f = BlockFile::new(3, len, 77, 32, 0.3);
            let got = f.materialize(77).len();
            if len == 0 {
                // Zero-length spec yields a minimal single short block file.
                assert!(got <= BLOCK);
            } else {
                assert_eq!(got, len, "len={len}");
            }
        }
    }

    #[test]
    fn block_file_pool_blocks_duplicate_aligned() {
        // With a tiny pool and high dup rate, distinct files share aligned
        // blocks.
        let a = BlockFile::new(1, 64 * BLOCK, 42, 4, 0.9).materialize(42);
        let b = BlockFile::new(2, 64 * BLOCK, 42, 4, 0.9).materialize(42);
        let set: std::collections::HashSet<&[u8]> = a.chunks_exact(BLOCK).collect();
        let shared = b.chunks_exact(BLOCK).filter(|c| set.contains(c)).count();
        assert!(shared > 32, "aligned sharing expected, got {shared}/64");
        // Different pools never share.
        let c = BlockFile::new(2, 64 * BLOCK, 43, 4, 0.9).materialize(43);
        let shared_other = c.chunks_exact(BLOCK).filter(|ch| set.contains(ch)).count();
        assert_eq!(shared_other, 0, "cross-pool sharing must be zero");
    }

    #[test]
    fn overwrite_preserves_length_and_other_blocks() {
        let mut f = BlockFile::new(5, 32 * BLOCK, 9, 8, 0.2);
        let before = f.materialize(9);
        f.overwrite_blocks(1001, 3);
        let after = f.materialize(9);
        assert_eq!(before.len(), after.len());
        let changed = before
            .chunks_exact(BLOCK)
            .zip(after.chunks_exact(BLOCK))
            .filter(|(x, y)| x != y)
            .count();
        assert!((1..=3).contains(&changed), "changed {changed}");
    }

    #[test]
    fn token_file_materializes_deterministically() {
        let f = TokenFile::new(11, 20_000, 64, 0.3);
        assert_eq!(f.materialize(5), f.materialize(5));
        // Roughly the requested size (within one paragraph).
        let len = f.materialize(5).len();
        assert!(len >= 20_000 && len < 20_000 + 3 * PARA_MAX as usize, "{len}");
    }

    #[test]
    fn token_edits_shift_but_preserve_most_content() {
        let mut f = TokenFile::new(21, 100_000, 64, 0.2);
        let before = f.materialize(7);
        f.edit(3001, 3);
        let after = f.materialize(7);
        assert_ne!(before, after);
        // Most paragraphs survive: compare as token multisets via windows.
        let set: std::collections::HashSet<&[u8]> = before.windows(512).step_by(512).collect();
        let survived = after.windows(512).step_by(512).filter(|w| set.contains(w)).count();
        // Not a strict guarantee (shifting misaligns the windows), but the
        // suffix/prefix around edits should still match substantially.
        let _ = survived; // byte-level survival checked by CDC tests in core
        assert!(after.len() > 50_000);
    }

    #[test]
    fn token_append_grows() {
        let mut f = TokenFile::new(31, 10_000, 64, 0.2);
        let n = f.token_count();
        f.append(77, 5);
        assert_eq!(f.token_count(), n + 5);
    }

    #[test]
    fn text_is_printable() {
        let bytes = para_bytes(1234, 5000);
        assert!(bytes
            .iter()
            .all(|&b| b == b'\n' || b == b' ' || b.is_ascii_alphanumeric()));
    }
}
