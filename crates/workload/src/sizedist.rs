//! File-size distribution statistics (Figs. 1 and 2).
//!
//! The paper's motivating observation: ~61 % of files are smaller than
//! 10 KiB yet hold only ~1.2 % of bytes, while the ~1.4 % of files above
//! 1 MiB hold ~75 %. [`SizeHistogram`] reproduces both figures' bucketing
//! from a snapshot.

use crate::generator::Snapshot;

/// The paper's size buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeBucket {
    /// `< 10 KiB` — the "tiny file" class filtered before dedup.
    Under10K,
    /// `10 KiB – 100 KiB`.
    K10To100K,
    /// `100 KiB – 1 MiB`.
    K100To1M,
    /// `1 MiB – 10 MiB`.
    M1To10M,
    /// `10 MiB – 100 MiB`.
    M10To100M,
    /// `≥ 100 MiB`.
    Over100M,
}

impl SizeBucket {
    /// All buckets in ascending size order.
    pub const ALL: [SizeBucket; 6] = [
        SizeBucket::Under10K,
        SizeBucket::K10To100K,
        SizeBucket::K100To1M,
        SizeBucket::M1To10M,
        SizeBucket::M10To100M,
        SizeBucket::Over100M,
    ];

    /// The bucket for a file of `len` bytes.
    pub fn of(len: u64) -> Self {
        const K: u64 = 1024;
        const M: u64 = 1024 * 1024;
        match len {
            l if l < 10 * K => SizeBucket::Under10K,
            l if l < 100 * K => SizeBucket::K10To100K,
            l if l < M => SizeBucket::K100To1M,
            l if l < 10 * M => SizeBucket::M1To10M,
            l if l < 100 * M => SizeBucket::M10To100M,
            _ => SizeBucket::Over100M,
        }
    }

    /// Axis label as used in the paper's figures.
    pub const fn label(self) -> &'static str {
        match self {
            SizeBucket::Under10K => "<10KB",
            SizeBucket::K10To100K => "10KB-100KB",
            SizeBucket::K100To1M => "100KB-1MB",
            SizeBucket::M1To10M => "1MB-10MB",
            SizeBucket::M10To100M => "10MB-100MB",
            SizeBucket::Over100M => ">100MB",
        }
    }

    fn index(self) -> usize {
        // Must agree with the ordering of `SizeBucket::ALL`.
        match self {
            SizeBucket::Under10K => 0,
            SizeBucket::K10To100K => 1,
            SizeBucket::K100To1M => 2,
            SizeBucket::M1To10M => 3,
            SizeBucket::M10To100M => 4,
            SizeBucket::Over100M => 5,
        }
    }
}

/// Joint count/bytes histogram over the paper's size buckets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SizeHistogram {
    counts: [u64; 6],
    bytes: [u64; 6],
}

impl SizeHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one file of `len` bytes.
    pub fn add(&mut self, len: u64) {
        let i = SizeBucket::of(len).index();
        self.counts[i] += 1;
        self.bytes[i] += len;
    }

    /// Histogram of a whole snapshot.
    pub fn of_snapshot(snapshot: &Snapshot) -> Self {
        let mut h = Self::new();
        for f in &snapshot.files {
            h.add(f.len() as u64);
        }
        h
    }

    /// Files in a bucket.
    pub fn count(&self, b: SizeBucket) -> u64 {
        self.counts[b.index()]
    }

    /// Bytes in a bucket.
    pub fn bytes(&self, b: SizeBucket) -> u64 {
        self.bytes[b.index()]
    }

    /// Total files.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Fraction of files in a bucket (Fig. 1's y-axis).
    pub fn count_fraction(&self, b: SizeBucket) -> f64 {
        let t = self.total_count();
        if t == 0 {
            0.0
        } else {
            self.count(b) as f64 / t as f64
        }
    }

    /// Fraction of bytes in a bucket (Fig. 2's y-axis).
    pub fn bytes_fraction(&self, b: SizeBucket) -> f64 {
        let t = self.total_bytes();
        if t == 0 {
            0.0
        } else {
            self.bytes(b) as f64 / t as f64
        }
    }

    /// Fraction of files at or above 1 MiB (the paper's "1.4 % of files").
    pub fn large_file_count_fraction(&self) -> f64 {
        let large: u64 = [SizeBucket::M1To10M, SizeBucket::M10To100M, SizeBucket::Over100M]
            .iter()
            .map(|b| self.count(*b))
            .sum();
        if self.total_count() == 0 {
            0.0
        } else {
            large as f64 / self.total_count() as f64
        }
    }

    /// Fraction of bytes in files at or above 1 MiB (the paper's "75 %").
    pub fn large_file_bytes_fraction(&self) -> f64 {
        let large: u64 = [SizeBucket::M1To10M, SizeBucket::M10To100M, SizeBucket::Over100M]
            .iter()
            .map(|b| self.bytes(*b))
            .sum();
        if self.total_bytes() == 0 {
            0.0
        } else {
            large as f64 / self.total_bytes() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetSpec, Generator};

    #[test]
    fn bucket_boundaries() {
        assert_eq!(SizeBucket::of(0), SizeBucket::Under10K);
        assert_eq!(SizeBucket::of(10 * 1024 - 1), SizeBucket::Under10K);
        assert_eq!(SizeBucket::of(10 * 1024), SizeBucket::K10To100K);
        assert_eq!(SizeBucket::of(100 * 1024), SizeBucket::K100To1M);
        assert_eq!(SizeBucket::of(1 << 20), SizeBucket::M1To10M);
        assert_eq!(SizeBucket::of(10 << 20), SizeBucket::M10To100M);
        assert_eq!(SizeBucket::of(100 << 20), SizeBucket::Over100M);
        assert_eq!(SizeBucket::of(u64::MAX), SizeBucket::Over100M);
    }

    #[test]
    fn histogram_accumulates() {
        let mut h = SizeHistogram::new();
        h.add(1000);
        h.add(2000);
        h.add(5 << 20);
        assert_eq!(h.count(SizeBucket::Under10K), 2);
        assert_eq!(h.bytes(SizeBucket::Under10K), 3000);
        assert_eq!(h.count(SizeBucket::M1To10M), 1);
        assert_eq!(h.total_count(), 3);
        assert!((h.count_fraction(SizeBucket::Under10K) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn synthetic_dataset_reproduces_fig1_and_fig2_shape() {
        // A moderately sized dataset so fractions stabilise.
        let mut generator = Generator::new(DatasetSpec::paper_scaled(48 << 20), 11);
        let snap = generator.snapshot(0);
        let h = SizeHistogram::of_snapshot(&snap);
        // Fig. 1: tiny files ≈ 61 % of count.
        let tiny_count = h.count_fraction(SizeBucket::Under10K);
        assert!((0.50..0.72).contains(&tiny_count), "tiny count fraction {tiny_count}");
        // Fig. 2: tiny files hold only a sliver of bytes.
        let tiny_bytes = h.bytes_fraction(SizeBucket::Under10K);
        assert!(tiny_bytes < 0.05, "tiny bytes fraction {tiny_bytes}");
        // Large files hold the bulk of capacity.
        let large_bytes = h.large_file_bytes_fraction();
        assert!(large_bytes > 0.35, "large bytes fraction {large_bytes}");
        // ...while being a small minority of files.
        let large_count = h.large_file_count_fraction();
        assert!(large_count < 0.15, "large count fraction {large_count}");
    }

    #[test]
    fn empty_histogram_fractions_are_zero() {
        let h = SizeHistogram::new();
        for b in SizeBucket::ALL {
            assert_eq!(h.count_fraction(b), 0.0);
            assert_eq!(h.bytes_fraction(b), 0.0);
        }
        assert_eq!(h.large_file_bytes_fraction(), 0.0);
    }
}
