//! Live single-line progress rendered from the background sampler.
//!
//! A [`Progress`] owns a thread that polls a [`SamplerProbe`] a few times
//! per second and redraws one `\r`-terminated status line on stderr:
//! bytes moved, throughput, running dedup ratio, and — when the total is
//! known up front (backup knows its source size; restore does not) — an
//! ETA. Rendering reads only sampler output, so the pipeline itself is
//! never perturbed; with observability off no `Progress` is ever built.

use aadedupe_obs::{SamplePoint, SamplerProbe};
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Which byte stream the line tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressKind {
    /// Source bytes read into the backup pipeline.
    Backup,
    /// Bytes assembled into restored files.
    Restore,
}

/// Handle to the background renderer; call [`Progress::finish`] to stop
/// it and print the final line.
pub struct Progress {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

const REDRAW: Duration = Duration::from_millis(200);

impl Progress {
    /// Starts the renderer. `total_bytes` enables percentage + ETA.
    pub fn start(probe: SamplerProbe, kind: ProgressKind, total_bytes: Option<u64>) -> Progress {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("aabackup-progress".into())
            .spawn(move || {
                let mut drew = false;
                while !thread_stop.load(Relaxed) {
                    if let Some(s) = probe.latest() {
                        draw(&s, kind, total_bytes);
                        drew = true;
                    }
                    std::thread::sleep(REDRAW);
                }
                if let Some(s) = probe.latest() {
                    draw(&s, kind, total_bytes);
                    drew = true;
                }
                if drew {
                    eprintln!();
                }
            })
            // aalint: allow(unwrap-in-lib) -- CLI-only module: failing to
            // spawn a cosmetic thread means the process is already out of
            // resources; aborting loudly beats a silent no-progress run
            .expect("spawn progress thread");
        Progress { stop, handle: Some(handle) }
    }

    /// Stops the renderer, leaving the final status line on screen.
    pub fn finish(mut self) {
        self.stop.store(true, Relaxed);
        if let Some(h) = self.handle.take() {
            // aalint: allow(unwrap-in-lib) -- CLI-only module: the renderer
            // never panics by construction; if it did, surfacing the panic
            // is better than reporting a clean exit
            h.join().expect("progress thread panicked");
        }
    }
}

impl Drop for Progress {
    fn drop(&mut self) {
        self.stop.store(true, Relaxed);
        if let Some(h) = self.handle.take() {
            // Drop runs on error paths where the progress thread may have
            // died with the pipe; the CLI is already reporting the
            // primary failure, so the join result is deliberately unused.
            let _join = h.join();
        }
    }
}

fn draw(s: &SamplePoint, kind: ProgressKind, total_bytes: Option<u64>) {
    let (verb, done, bps) = match kind {
        ProgressKind::Backup => ("backup", s.cum_source_bytes, s.source_bps()),
        ProgressKind::Restore => ("restore", s.cum_restored_bytes, s.restored_bps()),
    };
    let mut line = format!("\r{verb}  {}", human(done));
    if let Some(total) = total_bytes {
        let pct = if total == 0 { 100.0 } else { 100.0 * done as f64 / total as f64 };
        line.push_str(&format!(" / {} ({pct:.0}%)", human(total)));
    }
    line.push_str(&format!("  {}/s", human(bps as u64)));
    if kind == ProgressKind::Backup {
        let dr = s.dedup_ratio_so_far();
        if dr.is_finite() {
            line.push_str(&format!("  DR {dr:.2}"));
        }
    }
    match total_bytes {
        Some(total) if bps > 0.0 && total > done => {
            let eta = (total - done) as f64 / bps;
            line.push_str(&format!("  ETA {}", fmt_eta(eta)));
        }
        _ => {}
    }
    // Pad so a shrinking line fully overwrites the previous draw.
    line.push_str(&" ".repeat(8));
    let mut err = std::io::stderr();
    // Progress is best-effort cosmetics; a closed stderr must not fail
    // the backup itself, so the write result is deliberately unused.
    let _draw = err.write_all(line.as_bytes()).and_then(|()| err.flush());
}

fn fmt_eta(secs: f64) -> String {
    let s = secs.round() as u64;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

fn human(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[u])
    }
}
