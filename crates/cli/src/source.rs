//! Disk-backed source files for the CLI.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::UNIX_EPOCH;

use aadedupe_filetype::{classify, AppType, SourceFile};

/// A file on disk presented to a backup scheme. Bytes are read lazily;
/// the change token derives from (mtime, size) exactly like a real
/// incremental client's stat-based change detection.
pub struct DiskSourceFile {
    /// Absolute path on disk.
    abs: PathBuf,
    /// Repository-relative path (forward slashes).
    rel: String,
    app: AppType,
    size: u64,
    token: u64,
}

impl DiskSourceFile {
    /// Describes `abs`, recording it under the relative path `rel`.
    pub fn new(abs: PathBuf, rel: String) -> std::io::Result<Self> {
        let meta = fs::metadata(&abs)?;
        let mtime = meta
            .modified()
            .ok()
            .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
            .map_or(0, |d| d.as_nanos() as u64);
        let app = classify(Path::new(&rel));
        let size = meta.len();
        // stat-derived token: changes whenever mtime or size change.
        let token = mtime
            .rotate_left(17)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(size);
        Ok(DiskSourceFile { abs, rel, app, size, token })
    }
}

impl SourceFile for DiskSourceFile {
    fn path(&self) -> &str {
        &self.rel
    }

    fn app_type(&self) -> AppType {
        self.app
    }

    fn size(&self) -> u64 {
        self.size
    }

    fn read(&self) -> Vec<u8> {
        // A vanished/unreadable file backs up as empty rather than
        // aborting the whole session (mirrors real clients' skip logic).
        fs::read(&self.abs).unwrap_or_default()
    }

    fn change_token(&self) -> u64 {
        self.token
    }
}

/// Recursively collects the regular files under `root` (symlinks are
/// skipped), sorted by relative path for deterministic sessions.
pub fn walk_directory(root: &Path) -> std::io::Result<Vec<DiskSourceFile>> {
    fn recurse(dir: &Path, root: &Path, out: &mut Vec<DiskSourceFile>) -> std::io::Result<()> {
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            let file_type = entry.file_type()?;
            if file_type.is_symlink() {
                continue;
            }
            if file_type.is_dir() {
                recurse(&path, root, out)?;
            } else if file_type.is_file() {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|_| {
                        std::io::Error::other(format!(
                            "walked path {} escapes scan root {}",
                            path.display(),
                            root.display()
                        ))
                    })?
                    .to_string_lossy()
                    .replace(std::path::MAIN_SEPARATOR, "/");
                out.push(DiskSourceFile::new(path, rel)?);
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    recurse(root, root, &mut out)?;
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_tree() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "aadedupe-cli-src-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("sub")).unwrap();
        fs::write(dir.join("a.txt"), b"alpha").unwrap();
        fs::write(dir.join("sub/b.pdf"), vec![1u8; 2000]).unwrap();
        dir
    }

    #[test]
    fn walks_recursively_sorted() {
        let dir = temp_tree();
        let files = walk_directory(&dir).unwrap();
        let rels: Vec<&str> = files.iter().map(SourceFile::path).collect();
        assert_eq!(rels, vec!["a.txt", "sub/b.pdf"]);
        assert_eq!(files[0].app_type(), aadedupe_filetype::AppType::Txt);
        assert_eq!(files[1].app_type(), aadedupe_filetype::AppType::Pdf);
        assert_eq!(files[0].size(), 5);
        assert_eq!(files[0].read(), b"alpha");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn token_tracks_content_changes() {
        let dir = temp_tree();
        let before = walk_directory(&dir).unwrap();
        // Same stat → same token.
        let again = walk_directory(&dir).unwrap();
        assert_eq!(before[0].change_token(), again[0].change_token());
        // Different size → different token (mtime granularity can be
        // coarse on some filesystems, so change the size too).
        fs::write(dir.join("a.txt"), b"alpha-extended").unwrap();
        let after = walk_directory(&dir).unwrap();
        assert_ne!(before[0].change_token(), after[0].change_token());
        let _ = fs::remove_dir_all(dir);
    }
}
