#![forbid(unsafe_code)]
//! `aabackup` — a usable AA-Dedupe backup client.
//!
//! Backs up a directory tree into a filesystem-backed repository using
//! the full AA-Dedupe pipeline (file size filter, application-aware
//! chunking and hashing, per-application indexes, 1 MiB containers), and
//! restores any past session bit-exactly.
//!
//! ```text
//! aabackup backup  --repo <dir> [--workers N] [--stats] [--stats-json <f>]
//!                  [--trace <f>] <source-dir>
//! aabackup restore --repo <dir> [--workers N] [--stats] <session> <out>
//! aabackup restore-file --repo <dir> [--workers N] <session> <path> <out-file>
//! aabackup sessions --repo <dir>                  list sessions
//! aabackup delete  --repo <dir> <session>         delete + reclaim space
//! aabackup vacuum  --repo <dir> [--ratio <f>] [--dry-run]
//!                                                 rewrite sparse containers
//! aabackup retention --repo <dir> (--keep-last N | --gfs D,W,M) [--vacuum]
//!                                                 prune sessions by policy
//! aabackup stats   --repo <dir>                   repository statistics
//! ```

mod progress;
mod source;

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use aadedupe_chunking::CdcAlgorithm;
use aadedupe_cloud::{CloudSim, FsObjectStore, PriceModel, WanModel};
use aadedupe_core::{
    AaDedupe, AaDedupeConfig, BackupScheme, PipelineConfig, RestoreOptions, RetentionPolicy,
    RetryPolicy, VacuumOptions,
};
use aadedupe_obs::{Recorder, Sampler, SamplerConfig, Scope};

use progress::{Progress, ProgressKind};
use source::walk_directory;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  aabackup backup  --repo <dir> [--workers N] [--chunker rabin|fastcdc]\n                   [--index-dir <dir>] [--index-ram <entries>] [--stats] [--stats-json <file>] [--trace <file>]\n                   [--metrics <file>] [--metrics-interval-ms N] [--progress] <source-dir>\n  aabackup restore --repo <dir> [--workers N] [--stats] [--stats-json <file>]\n                   [--metrics <file>] [--metrics-interval-ms N] [--progress] <session> <out-dir>\n  aabackup restore-file --repo <dir> [--workers N] <session> <path> <out-file>\n  aabackup sessions --repo <dir>\n  aabackup delete  --repo <dir> <session>\n  aabackup vacuum  --repo <dir> [--ratio <f>] [--dry-run]\n  aabackup retention --repo <dir> (--keep-last N | --gfs D,W,M) [--vacuum]\n  aabackup stats   --repo <dir>"
    );
    ExitCode::from(2)
}

/// Splits `--repo <dir>` out of the argument list.
fn take_repo(args: &mut Vec<String>) -> Option<PathBuf> {
    let i = args.iter().position(|a| a == "--repo")?;
    if i + 1 >= args.len() {
        return None;
    }
    let dir = args.remove(i + 1);
    args.remove(i);
    Some(PathBuf::from(dir))
}

/// Splits `--workers <n>` out of the argument list. `Err` means the flag
/// was present but malformed (missing or non-numeric value, or zero).
fn take_workers(args: &mut Vec<String>) -> Result<Option<usize>, ()> {
    let Some(i) = args.iter().position(|a| a == "--workers") else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(());
    }
    let value = args.remove(i + 1);
    args.remove(i);
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(Some(n)),
        _ => Err(()),
    }
}

/// Splits `--chunker <rabin|fastcdc>` out of the argument list. `Err`
/// means the flag was present but its value was missing or unknown.
fn take_chunker(args: &mut Vec<String>) -> Result<Option<CdcAlgorithm>, ()> {
    let Some(i) = args.iter().position(|a| a == "--chunker") else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(());
    }
    let value = args.remove(i + 1);
    args.remove(i);
    match CdcAlgorithm::parse(&value) {
        Some(alg) => Ok(Some(alg)),
        None => Err(()),
    }
}

/// Splits a boolean `flag` out of the argument list.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

/// Splits `<flag> <path>` out of the argument list. `Err` means the flag
/// was present but its value was missing.
fn take_path(args: &mut Vec<String>, flag: &str) -> Result<Option<PathBuf>, ()> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(());
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Ok(Some(PathBuf::from(value)))
}

/// Splits `<flag> <n>` (a non-negative integer) out of the argument list.
/// `Err` means the flag was present but its value was missing or
/// non-numeric.
fn take_u64(args: &mut Vec<String>, flag: &str) -> Result<Option<u64>, ()> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(());
    }
    let value = args.remove(i + 1);
    args.remove(i);
    value.parse::<u64>().map(Some).map_err(|_| ())
}

/// Splits `<flag> <f>` (a ratio in `0.0..=1.0`) out of the argument list.
/// `Err` means the flag was present but its value was missing, non-numeric
/// or out of range.
fn take_ratio(args: &mut Vec<String>, flag: &str) -> Result<Option<f64>, ()> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(());
    }
    let value = args.remove(i + 1);
    args.remove(i);
    match value.parse::<f64>() {
        Ok(f) if (0.0..=1.0).contains(&f) => Ok(Some(f)),
        _ => Err(()),
    }
}

/// Splits `--gfs D,W,M` out of the argument list. `Err` means the flag was
/// present but its value was missing or not three comma-separated counts.
fn take_gfs(args: &mut Vec<String>) -> Result<Option<(usize, usize, usize)>, ()> {
    let Some(i) = args.iter().position(|a| a == "--gfs") else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(());
    }
    let value = args.remove(i + 1);
    args.remove(i);
    let parts: Vec<&str> = value.split(',').collect();
    let [d, w, m] = parts.as_slice() else { return Err(()) };
    match (d.parse(), w.parse(), m.parse()) {
        (Ok(d), Ok(w), Ok(m)) => Ok(Some((d, w, m))),
        _ => Err(()),
    }
}

/// Observability outputs requested on the command line.
struct ObsArgs {
    stats: bool,
    stats_json: Option<PathBuf>,
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    metrics_interval_ms: u64,
    progress: bool,
}

impl ObsArgs {
    fn any(&self) -> bool {
        self.stats
            || self.stats_json.is_some()
            || self.trace.is_some()
            || self.metrics.is_some()
            || self.progress
    }

    /// Whether a background sampler is needed (metrics stream or live
    /// progress line).
    fn wants_sampler(&self) -> bool {
        self.metrics.is_some() || self.progress
    }

    /// Spawns the sampler for `session_label` when requested; the handle
    /// is inert when nothing needs sampling.
    fn spawn_sampler(&self, rec: &Arc<Recorder>, session_label: String) -> Option<Sampler> {
        self.wants_sampler().then(|| {
            let cfg = SamplerConfig {
                interval: Duration::from_millis(self.metrics_interval_ms.max(1)),
                ..SamplerConfig::default()
            };
            Sampler::spawn(Arc::clone(rec), Scope::session(session_label), cfg)
        })
    }

    /// Stops `sampler` and writes its NDJSON stream to `--metrics` if
    /// requested.
    fn finish_sampler(&self, sampler: Option<Sampler>) -> Result<(), String> {
        let Some(sampler) = sampler else { return Ok(()) };
        let series = sampler.stop();
        if let Some(path) = &self.metrics {
            std::fs::write(path, series.to_ndjson())
                .map_err(|e| format!("write metrics {path:?}: {e}"))?;
            println!(
                "  metrics time-series written to {} ({} samples{})",
                path.display(),
                series.len(),
                if series.dropped() > 0 {
                    format!(", {} evicted", series.dropped())
                } else {
                    String::new()
                }
            );
        }
        Ok(())
    }
}

/// Index storage settings shared by every subcommand: `--index-dir <dir>`
/// spills index entries beyond the RAM budget to segment files under
/// `<dir>`, and `--index-ram <entries>` sets the per-partition RAM-cache
/// budget (defaults to the engine default when absent).
#[derive(Clone, Default)]
struct IndexArgs {
    dir: Option<PathBuf>,
    ram: Option<u64>,
}

impl IndexArgs {
    fn take(args: &mut Vec<String>) -> Result<IndexArgs, ()> {
        Ok(IndexArgs {
            dir: take_path(args, "--index-dir")?,
            ram: match take_u64(args, "--index-ram")? {
                Some(0) => return Err(()), // a zero-entry cache is a mistake
                other => other,
            },
        })
    }
}

fn open_engine(
    repo: &Path,
    workers: usize,
    chunker: CdcAlgorithm,
    index: &IndexArgs,
    recorder: Option<Arc<Recorder>>,
) -> Result<AaDedupe, String> {
    let store =
        FsObjectStore::open(repo).map_err(|e| format!("cannot open repository {repo:?}: {e}"))?;
    // A local repository has no WAN: model an ideal fast link so timings
    // reflect dedup work, while keeping the S3 cost model for reporting.
    let cloud = CloudSim::with_backend(
        Arc::new(store),
        WanModel::ideal(1e9, 1e9),
        PriceModel::s3_april_2011(),
    );
    let mut config = AaDedupeConfig {
        pipeline: PipelineConfig::with_workers(workers),
        cdc: aadedupe_chunking::DEFAULT_CDC.with_algorithm(chunker),
        restore: RestoreOptions { workers, ..RestoreOptions::default() },
        // Against a real disk, backoff should really wait, not just be
        // charged to the simulated clock.
        retry: RetryPolicy { sleep: true, ..RetryPolicy::default() },
        ..AaDedupeConfig::default()
    };
    config.index_dir = index.dir.clone();
    if let Some(ram) = index.ram {
        config.ram_entries_per_partition = ram as usize;
    }
    if let Some(rec) = recorder {
        config.recorder = rec;
    }
    AaDedupe::open(cloud, config).map_err(|e| format!("cannot resume repository state: {e}"))
}

fn cmd_backup(
    repo: &Path,
    src: &Path,
    workers: usize,
    chunker: CdcAlgorithm,
    index: &IndexArgs,
    obs: &ObsArgs,
) -> Result<(), String> {
    let rec = if obs.any() {
        let rec = Recorder::shared();
        if obs.trace.is_some() {
            rec.enable_tracing();
        }
        Some(rec)
    } else {
        None
    };
    let mut engine = open_engine(repo, workers, chunker, index, rec.clone())?;
    if engine.orphans_swept() > 0 {
        println!(
            "swept {} orphaned container(s) left by an interrupted backup",
            engine.orphans_swept()
        );
    }
    let files =
        walk_directory(src).map_err(|e| format!("cannot walk source {src:?}: {e}"))?;
    let sources: Vec<&dyn aadedupe_filetype::SourceFile> =
        files.iter().map(|f| f as &dyn aadedupe_filetype::SourceFile).collect();
    let session = engine.sessions_completed();
    let sampler = rec
        .as_ref()
        .and_then(|r| obs.spawn_sampler(r, format!("backup-{session:05}")));
    let live = (obs.progress && sampler.is_some()).then(|| {
        let total: u64 = sources.iter().map(|f| f.size()).sum();
        Progress::start(
            sampler.as_ref().expect("guarded above").probe(),
            ProgressKind::Backup,
            Some(total),
        )
    });
    let outcome = engine.backup_session(&sources);
    if let Some(live) = live {
        live.finish();
    }
    let report = outcome.map_err(|e| format!("backup failed: {e}"))?;
    println!(
        "session {session}: {} files ({} tiny), {} logical",
        report.files_total,
        report.files_tiny,
        human(report.logical_bytes)
    );
    println!(
        "  new data {} | uploaded {} | DR {:.2} | {} duplicate of {} chunks",
        human(report.stored_bytes),
        human(report.transferred_bytes),
        report.dr(),
        report.chunks_duplicate,
        report.chunks_total
    );
    println!(
        "  dedup time {:.2}s ({} saved/s)",
        report.dedup_cpu.as_secs_f64(),
        human(report.de() as u64)
    );
    obs.finish_sampler(sampler)?;
    if let Some(rec) = rec {
        let snap = rec.snapshot();
        if obs.stats {
            print!("{}", snap.render_table());
        }
        if let Some(path) = &obs.stats_json {
            std::fs::write(path, snap.to_json())
                .map_err(|e| format!("write stats {path:?}: {e}"))?;
            println!("  stage stats written to {}", path.display());
        }
        if let Some(path) = &obs.trace {
            let mut out = std::io::BufWriter::new(
                std::fs::File::create(path).map_err(|e| format!("create trace {path:?}: {e}"))?,
            );
            rec.write_trace_ndjson(&mut out)
                .map_err(|e| format!("write trace {path:?}: {e}"))?;
            println!("  chrome trace written to {}", path.display());
        }
    }
    Ok(())
}

fn cmd_restore(
    repo: &Path,
    session: usize,
    out: &Path,
    workers: usize,
    index: &IndexArgs,
    obs: &ObsArgs,
) -> Result<(), String> {
    let rec = obs.any().then(Recorder::shared);
    let engine = open_engine(repo, workers, CdcAlgorithm::Rabin, index, rec.clone())?;
    let sampler = rec
        .as_ref()
        .and_then(|r| obs.spawn_sampler(r, format!("restore-{session:05}")));
    let live = (obs.progress && sampler.is_some()).then(|| {
        Progress::start(
            sampler.as_ref().expect("guarded above").probe(),
            // Restore size is not known until the manifest is assembled,
            // so the line shows throughput without an ETA.
            ProgressKind::Restore,
            None,
        )
    });
    let outcome = engine.restore_session(session);
    if let Some(live) = live {
        live.finish();
    }
    let files = outcome.map_err(|e| format!("restore failed: {e}"))?;
    for f in &files {
        let dest = out.join(&f.path);
        if let Some(parent) = dest.parent() {
            std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {parent:?}: {e}"))?;
        }
        std::fs::write(&dest, &f.data).map_err(|e| format!("write {dest:?}: {e}"))?;
    }
    println!("restored {} files from session {session} into {out:?}", files.len());
    obs.finish_sampler(sampler)?;
    if let Some(rec) = rec {
        let snap = rec.snapshot();
        if obs.stats {
            print!("{}", snap.render_table());
        }
        if let Some(path) = &obs.stats_json {
            std::fs::write(path, snap.to_json())
                .map_err(|e| format!("write stats {path:?}: {e}"))?;
            println!("  stage stats written to {}", path.display());
        }
    }
    Ok(())
}

fn cmd_restore_file(
    repo: &Path,
    session: usize,
    path: &str,
    out: &Path,
    workers: usize,
    index: &IndexArgs,
) -> Result<(), String> {
    let engine = open_engine(repo, workers, CdcAlgorithm::Rabin, index, None)?;
    let file = engine
        .restore_file(session, path)
        .map_err(|e| format!("restore failed: {e}"))?;
    if let Some(parent) = out.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {parent:?}: {e}"))?;
        }
    }
    std::fs::write(out, &file.data).map_err(|e| format!("write {out:?}: {e}"))?;
    println!("restored {} ({} bytes) from session {session} to {out:?}", path, file.data.len());
    Ok(())
}

fn cmd_sessions(repo: &Path, index: &IndexArgs) -> Result<(), String> {
    let engine = open_engine(repo, 1, CdcAlgorithm::Rabin, index, None)?;
    let sessions = engine.list_sessions();
    if sessions.is_empty() {
        println!("no sessions");
        return Ok(());
    }
    for s in sessions {
        match engine.restore_session(s) {
            Ok(files) => {
                let bytes: u64 = files.iter().map(|f| f.data.len() as u64).sum();
                println!("session {s}: {} files, {}", files.len(), human(bytes));
            }
            Err(e) => println!("session {s}: unreadable ({e})"),
        }
    }
    Ok(())
}

fn cmd_delete(repo: &Path, session: usize, index: &IndexArgs) -> Result<(), String> {
    let mut engine = open_engine(repo, 1, CdcAlgorithm::Rabin, index, None)?;
    engine.delete_session(session).map_err(|e| format!("delete failed: {e}"))?;
    println!("deleted session {session}; unreferenced containers reclaimed");
    Ok(())
}

/// Runs a vacuum pass on an already-open engine and prints the report;
/// shared by `vacuum` and `retention --vacuum`.
fn run_vacuum(engine: &mut AaDedupe, ratio: f64, dry_run: bool) -> Result<(), String> {
    let cost_before = engine.cloud().monthly_cost().storage;
    let opts = VacuumOptions { ratio, dry_run, ..VacuumOptions::default() };
    let report = engine.vacuum(&opts).map_err(|e| format!("vacuum failed: {e}"))?;
    let verb = if report.dry_run { "would rewrite" } else { "rewrote" };
    println!(
        "vacuum (ratio {ratio}): {verb} {} of {} containers into {}, {} deleted, {} manifests repointed",
        report.containers_rewritten,
        report.containers_total,
        report.containers_created,
        report.containers_deleted,
        report.manifests_rewritten
    );
    println!(
        "  {} {} across {} chunk relocations",
        if report.dry_run { "would reclaim" } else { "reclaimed" },
        human(report.bytes_reclaimed),
        report.relocations
    );
    if !report.dry_run {
        let cost_after = engine.cloud().monthly_cost().storage;
        println!(
            "  stored {} -> {} | S3 storage cost ${:.4}/mo -> ${:.4}/mo",
            human(report.stored_bytes_before),
            human(report.stored_bytes_after),
            cost_before,
            cost_after
        );
    }
    Ok(())
}

fn cmd_vacuum(repo: &Path, ratio: f64, dry_run: bool, index: &IndexArgs) -> Result<(), String> {
    let mut engine = open_engine(repo, 1, CdcAlgorithm::Rabin, index, None)?;
    run_vacuum(&mut engine, ratio, dry_run)
}

fn cmd_retention(
    repo: &Path,
    policy: &RetentionPolicy,
    vacuum_after: bool,
    index: &IndexArgs,
) -> Result<(), String> {
    let mut engine = open_engine(repo, 1, CdcAlgorithm::Rabin, index, None)?;
    let report =
        engine.apply_retention(policy).map_err(|e| format!("retention failed: {e}"))?;
    println!(
        "retention: examined {} sessions, retained {}, deleted {}",
        report.examined, report.retained, report.deleted
    );
    if vacuum_after {
        run_vacuum(&mut engine, VacuumOptions::default().ratio, false)?;
    }
    Ok(())
}

fn cmd_stats(repo: &Path, index: &IndexArgs) -> Result<(), String> {
    let engine = open_engine(repo, 1, CdcAlgorithm::Rabin, index, None)?;
    let store = engine.cloud().store();
    println!("repository: {} objects, {}", store.object_count(), human(store.stored_bytes()));
    println!(
        "  containers: {}",
        store.list("aa-dedupe/containers/").len()
    );
    println!("  sessions:   {:?}", engine.list_sessions());
    println!("  index:      {} chunks", engine.index().len());
    let cost = engine.cloud().monthly_cost();
    println!(
        "  S3-equivalent monthly cost: ${:.4} (storage ${:.4}, transfer ${:.4}, requests ${:.4})",
        cost.total(),
        cost.storage,
        cost.transfer,
        cost.request
    );
    Ok(())
}

fn human(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else { return usage() };
    args.remove(0);
    let Some(repo) = take_repo(&mut args) else { return usage() };
    let Ok(workers) = take_workers(&mut args) else { return usage() };
    let workers = workers.unwrap_or(1);
    let Ok(chunker) = take_chunker(&mut args) else { return usage() };
    let chunker = chunker.unwrap_or(CdcAlgorithm::Rabin);
    let Ok(index) = IndexArgs::take(&mut args) else { return usage() };
    let stats = take_flag(&mut args, "--stats");
    let Ok(stats_json) = take_path(&mut args, "--stats-json") else { return usage() };
    let Ok(trace) = take_path(&mut args, "--trace") else { return usage() };
    let Ok(metrics) = take_path(&mut args, "--metrics") else { return usage() };
    let Ok(metrics_interval_ms) = take_u64(&mut args, "--metrics-interval-ms") else {
        return usage();
    };
    let progress = take_flag(&mut args, "--progress");
    let Ok(ratio) = take_ratio(&mut args, "--ratio") else { return usage() };
    let dry_run = take_flag(&mut args, "--dry-run");
    let Ok(keep_last) = take_u64(&mut args, "--keep-last") else { return usage() };
    let Ok(gfs) = take_gfs(&mut args) else { return usage() };
    let vacuum_after = take_flag(&mut args, "--vacuum");
    let obs = ObsArgs {
        stats,
        stats_json,
        trace,
        metrics,
        metrics_interval_ms: metrics_interval_ms.unwrap_or(250),
        progress,
    };

    let result = match (command.as_str(), args.as_slice()) {
        ("backup", [src]) => cmd_backup(&repo, Path::new(src), workers, chunker, &index, &obs),
        ("restore", [session, out]) => match session.parse() {
            Ok(s) => cmd_restore(&repo, s, Path::new(out), workers, &index, &obs),
            Err(_) => return usage(),
        },
        ("restore-file", [session, path, out]) => match session.parse() {
            Ok(s) => cmd_restore_file(&repo, s, path, Path::new(out), workers, &index),
            Err(_) => return usage(),
        },
        ("sessions", []) => cmd_sessions(&repo, &index),
        ("delete", [session]) => match session.parse() {
            Ok(s) => cmd_delete(&repo, s, &index),
            Err(_) => return usage(),
        },
        ("vacuum", []) => {
            cmd_vacuum(&repo, ratio.unwrap_or(VacuumOptions::default().ratio), dry_run, &index)
        }
        ("retention", []) => match (keep_last, gfs) {
            (Some(n), None) => {
                cmd_retention(&repo, &RetentionPolicy::KeepLast(n as usize), vacuum_after, &index)
            }
            (None, Some((d, w, m))) => cmd_retention(
                &repo,
                &RetentionPolicy::Gfs { daily: d, weekly: w, monthly: m },
                vacuum_after,
                &index,
            ),
            _ => return usage(),
        },
        ("stats", []) => cmd_stats(&repo, &index),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
