//! End-to-end CLI test: drive the `aabackup` binary against real
//! directories.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn bin() -> PathBuf {
    // target/debug/aabackup relative to this crate's target dir.
    let mut p = PathBuf::from(env!("CARGO_BIN_EXE_aabackup"));
    assert!(p.exists(), "{p:?}");
    p = p.canonicalize().unwrap();
    p
}

struct Dirs {
    root: PathBuf,
}

impl Dirs {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!(
            "aabackup-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("src/sub")).unwrap();
        fs::create_dir_all(root.join("repo")).unwrap();
        fs::create_dir_all(root.join("out")).unwrap();
        Self { root }
    }

    fn src(&self) -> PathBuf {
        self.root.join("src")
    }

    fn repo(&self) -> PathBuf {
        self.root.join("repo")
    }

    fn out(&self) -> PathBuf {
        self.root.join("out")
    }
}

impl Drop for Dirs {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(bin()).args(args).output().expect("spawn aabackup");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn backup_restore_cycle_on_disk() {
    let dirs = Dirs::new("cycle");
    fs::write(dirs.src().join("report.doc"), b"words ".repeat(5000)).unwrap();
    fs::write(dirs.src().join("sub/photo.jpg"), vec![7u8; 40_000]).unwrap();
    fs::write(dirs.src().join("note.txt"), b"tiny note").unwrap();

    let repo = dirs.repo();
    let repo_s = repo.to_str().unwrap();
    let src_s = dirs.src();
    let src_s = src_s.to_str().unwrap();

    // Session 0.
    let (ok, out) = run(&["backup", "--repo", repo_s, src_s]);
    assert!(ok, "{out}");
    assert!(out.contains("session 0"), "{out}");

    // Session 1 over unchanged data: everything dedupes except the tiny
    // note, which bypasses the index by design (paper's size filter).
    let (ok, out) = run(&["backup", "--repo", repo_s, src_s]);
    assert!(ok, "{out}");
    assert!(out.contains("session 1"), "{out}");
    assert!(out.contains("new data 9 B"), "{out}");

    // Sessions listing.
    let (ok, out) = run(&["sessions", "--repo", repo_s]);
    assert!(ok, "{out}");
    assert!(out.contains("session 0") && out.contains("session 1"), "{out}");

    // Restore session 0 and compare bytes.
    let out_dir = dirs.out();
    let (ok, text) = run(&["restore", "--repo", repo_s, "0", out_dir.to_str().unwrap()]);
    assert!(ok, "{text}");
    assert_eq!(
        fs::read(out_dir.join("report.doc")).unwrap(),
        b"words ".repeat(5000)
    );
    assert_eq!(fs::read(out_dir.join("sub/photo.jpg")).unwrap(), vec![7u8; 40_000]);
    assert_eq!(fs::read(out_dir.join("note.txt")).unwrap(), b"tiny note");

    // Single-file restore.
    let single = dirs.root.join("single.doc");
    let (ok, text) = run(&[
        "restore-file", "--repo", repo_s, "0", "report.doc",
        single.to_str().unwrap(),
    ]);
    assert!(ok, "{text}");
    assert_eq!(fs::read(&single).unwrap(), b"words ".repeat(5000));

    // Stats run cleanly.
    let (ok, out) = run(&["stats", "--repo", repo_s]);
    assert!(ok, "{out}");
    assert!(out.contains("sessions:"), "{out}");

    // Delete session 0; session 1 must still restore.
    let (ok, out) = run(&["delete", "--repo", repo_s, "0"]);
    assert!(ok, "{out}");
    let out2 = dirs.root.join("out2");
    fs::create_dir_all(&out2).unwrap();
    let (ok, text) = run(&["restore", "--repo", repo_s, "1", out2.to_str().unwrap()]);
    assert!(ok, "{text}");
    assert_eq!(fs::read(out2.join("report.doc")).unwrap(), b"words ".repeat(5000));
    // And the deleted session is gone.
    let (ok, _) = run(&["restore", "--repo", repo_s, "0", out2.to_str().unwrap()]);
    assert!(!ok);
}

#[test]
fn incremental_change_stores_only_delta() {
    let dirs = Dirs::new("delta");
    let repo = dirs.repo();
    let repo_s = repo.to_str().unwrap();
    let src = dirs.src();

    // A 160 KB "static" PDF.
    let base: Vec<u8> = (0..160_000u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
    fs::write(src.join("doc.pdf"), &base).unwrap();
    let (ok, out) = run(&["backup", "--repo", repo_s, src.to_str().unwrap()]);
    assert!(ok, "{out}");

    // Flip one byte in place; only ~one 8 KiB chunk should be new.
    let mut edited = base.clone();
    edited[80_000] ^= 1;
    fs::write(src.join("doc.pdf"), &edited).unwrap();
    let (ok, out) = run(&["backup", "--repo", repo_s, src.to_str().unwrap()]);
    assert!(ok, "{out}");
    // "new data 8.00 KiB" (exactly one SC chunk).
    assert!(out.contains("new data 8.00 KiB"), "{out}");
}

#[test]
fn fastcdc_chunker_backup_restores_bit_exactly() {
    let dirs = Dirs::new("fastcdc");
    let repo = dirs.repo();
    let repo_s = repo.to_str().unwrap();
    let src = dirs.src();

    // A dynamic (CDC-routed) file with entropy, plus a tiny file.
    let body: Vec<u8> =
        (0..300_000u32).map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8).collect();
    fs::write(src.join("essay.doc"), &body).unwrap();
    fs::write(src.join("note.txt"), b"tiny note").unwrap();

    let (ok, out) =
        run(&["backup", "--repo", repo_s, "--chunker", "fastcdc", src.to_str().unwrap()]);
    assert!(ok, "{out}");
    assert!(out.contains("session 0"), "{out}");

    // Identical second session dedupes everything but the tiny file.
    let (ok, out) =
        run(&["backup", "--repo", repo_s, "--chunker", "fastcdc", src.to_str().unwrap()]);
    assert!(ok, "{out}");
    assert!(out.contains("new data 9 B"), "{out}");

    // Restores are bit-exact.
    let out_dir = dirs.out();
    let (ok, text) = run(&["restore", "--repo", repo_s, "0", out_dir.to_str().unwrap()]);
    assert!(ok, "{text}");
    assert_eq!(fs::read(out_dir.join("essay.doc")).unwrap(), body);
    assert_eq!(fs::read(out_dir.join("note.txt")).unwrap(), b"tiny note");
}

#[test]
fn bad_usage_exits_nonzero() {
    let (ok, _) = run(&["frobnicate"]);
    assert!(!ok);
    let (ok, _) = run(&["backup"]);
    assert!(!ok);
    let (ok, _) = run(&["restore", "--repo", "/nonexistent-hopefully", "notanumber", "/tmp"]);
    assert!(!ok);
    // Unknown chunker name is a usage error.
    let (ok, _) = run(&["backup", "--repo", "/tmp", "--chunker", "simd9000", "/tmp"]);
    assert!(!ok);
}

#[test]
fn backup_fails_loudly_when_the_repo_cannot_store_objects() {
    // Regression test for the silent-data-loss bug: plant a regular file
    // where the store needs the `aa-dedupe` directory, so every container
    // put fails. The old code ignored write errors and reported a
    // successful session over a repository holding nothing.
    let dirs = Dirs::new("blocked");
    fs::write(dirs.src().join("report.doc"), b"words ".repeat(5000)).unwrap();
    fs::write(dirs.repo().join("aa-dedupe"), b"not a directory").unwrap();

    let repo = dirs.repo();
    let (ok, out) =
        run(&["backup", "--repo", repo.to_str().unwrap(), dirs.src().to_str().unwrap()]);
    assert!(!ok, "backup must exit non-zero when uploads fail, got: {out}");
    assert!(out.contains("backup failed"), "{out}");
    assert!(out.contains("put"), "error should name the failing operation: {out}");
    // Nothing half-committed: no manifest means no restorable session.
    let (ok, out) = run(&["sessions", "--repo", repo.to_str().unwrap()]);
    assert!(ok, "{out}");
    assert!(out.contains("no sessions"), "{out}");
}
