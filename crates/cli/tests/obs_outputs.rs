//! End-to-end test of the observability flags: run a real backup with
//! `--stats`, `--stats-json` and `--trace`, then validate the emitted
//! artifacts and reconcile the stage stats against the session report
//! numbers the CLI prints.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use aadedupe_obs::{json, Stage};

fn bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_aabackup")).canonicalize().unwrap()
}

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(bin()).args(args).output().expect("spawn aabackup");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

/// Pulls `{dup} duplicate of {total} chunks` and `({tiny} tiny)` out of the
/// CLI's session summary lines.
fn parse_summary(out: &str) -> (u64, u64, u64) {
    let mut dup = None;
    let mut total = None;
    let mut tiny = None;
    for line in out.lines() {
        if let Some(rest) = line.split(" duplicate of ").nth(1) {
            total = rest.split(' ').next().and_then(|w| w.parse().ok());
            let before = line.split(" duplicate of ").next().unwrap();
            dup = before.rsplit(' ').next().and_then(|w| w.parse().ok());
        }
        if let Some(pos) = line.find(" tiny)") {
            tiny = line[..pos].rsplit('(').next().and_then(|w| w.parse().ok());
        }
    }
    (
        dup.expect("duplicate count in CLI output"),
        total.expect("chunk total in CLI output"),
        tiny.expect("tiny count in CLI output"),
    )
}

/// `--metrics` streams the background sampler's time series to disk as
/// NDJSON: a schema-versioned header line followed by delta samples whose
/// byte totals reconcile with the backup itself. `--progress` renders a
/// live status line on stderr without disturbing any of it.
#[test]
fn metrics_ndjson_and_progress_outputs() {
    let root = std::env::temp_dir().join(format!("aabackup-metrics-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("src")).unwrap();
    fs::create_dir_all(root.join("repo")).unwrap();

    // Enough unique data that the run spans several 5 ms sampling ticks.
    let mut src_bytes = 0u64;
    for i in 0..6u32 {
        let payload: Vec<u8> = (0..400_000u32)
            .map(|j| (j.wrapping_mul(2654435761).wrapping_add(i * 7919) >> 9) as u8)
            .collect();
        src_bytes += payload.len() as u64;
        fs::write(root.join(format!("src/data{i}.doc")), payload).unwrap();
    }

    let repo = root.join("repo");
    let metrics_path = root.join("metrics.ndjson");
    let (ok, out) = run(&[
        "backup",
        "--repo",
        repo.to_str().unwrap(),
        "--workers",
        "2",
        "--metrics",
        metrics_path.to_str().unwrap(),
        "--metrics-interval-ms",
        "5",
        "--progress",
        root.join("src").to_str().unwrap(),
    ]);
    assert!(ok, "{out}");
    // The live progress line rendered at least once (carriage-return
    // redraws land on stderr, captured into `out`).
    assert!(out.contains("\rbackup  "), "no progress line:\n{out}");
    assert!(out.contains("/s"), "no throughput in progress line:\n{out}");

    // The metrics stream parses line by line and starts with the header.
    let text = fs::read_to_string(&metrics_path).unwrap();
    let docs = json::parse_ndjson(&text).expect("metrics NDJSON parses");
    assert!(docs.len() >= 2, "header plus at least one sample:\n{text}");
    let header = &docs[0];
    assert_eq!(header.get("kind").as_str(), Some("header"), "{text}");
    assert_eq!(header.get("schema_version").as_u64(), Some(1));
    assert!(header.get("interval_ms").as_u64() == Some(5), "{text}");
    let session = header.get("scope").get("session").as_str().expect("scope.session");
    assert!(session.starts_with("backup-"), "scope labels the run: {session}");

    // Every subsequent line is a sample; interval deltas reconcile with
    // the source corpus exactly (the final partial tick loses nothing).
    let mut sampled_source = 0u64;
    let mut last_seq = None;
    for sample in &docs[1..] {
        assert_eq!(sample.get("kind").as_str(), Some("sample"));
        let seq = sample.get("seq").as_u64().expect("sample seq");
        if let Some(prev) = last_seq {
            assert_eq!(seq, prev + 1, "contiguous sample sequence");
        }
        last_seq = Some(seq);
        sampled_source += sample.get("source_bytes").as_u64().expect("source_bytes");
    }
    assert_eq!(sampled_source, src_bytes, "sampled deltas sum to the corpus size:\n{text}");
    let last = docs.last().unwrap();
    assert_eq!(last.get("cum").get("source_bytes").as_u64(), Some(src_bytes));

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn stats_json_and_trace_outputs() {
    let root = std::env::temp_dir().join(format!("aabackup-obs-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("src")).unwrap();
    fs::create_dir_all(root.join("repo")).unwrap();

    // A dynamic doc (CDC), a static-ish payload (SC via extension), a
    // compressed photo (WFC) and a tiny note (size-filter bypass). All
    // contents are distinct so no tiny file is carried within the session.
    fs::write(root.join("src/report.doc"), b"lorem ipsum ".repeat(6000)).unwrap();
    fs::write(
        root.join("src/image.iso"),
        (0..120_000u32).map(|i| (i.wrapping_mul(2654435761) >> 11) as u8).collect::<Vec<u8>>(),
    )
    .unwrap();
    fs::write(root.join("src/photo.jpg"), vec![9u8; 30_000]).unwrap();
    fs::write(root.join("src/note.txt"), b"tiny note").unwrap();

    let repo = root.join("repo");
    let stats_path = root.join("stats.json");
    let trace_path = root.join("trace.ndjson");
    let (ok, out) = run(&[
        "backup",
        "--repo",
        repo.to_str().unwrap(),
        "--workers",
        "4",
        "--stats",
        "--stats-json",
        stats_path.to_str().unwrap(),
        "--trace",
        trace_path.to_str().unwrap(),
        root.join("src").to_str().unwrap(),
    ]);
    assert!(ok, "{out}");
    // The human table rendered.
    assert!(out.contains("stage"), "missing stats table:\n{out}");

    let (dup, chunks_total, files_tiny) = parse_summary(&out);

    // --stats-json parses and carries every stage key.
    let doc = json::parse(&fs::read_to_string(&stats_path).unwrap()).expect("stats JSON parses");
    let stages = doc.get("stages").as_obj().expect("stages object");
    for stage in Stage::ALL {
        let entry = stages.get(stage.name()).unwrap_or_else(|| panic!("stage {}", stage.name()));
        assert!(entry.get("count").as_u64().is_some(), "{}", stage.name());
    }
    // Work actually flowed through the pipeline stages.
    for stage in [Stage::Chunk, Stage::Hash, Stage::Index, Stage::Upload] {
        let count = stages[stage.name()].get("count").as_u64().unwrap();
        assert!(count > 0, "stage {} recorded nothing", stage.name());
    }

    // Per-AppType hit/miss counts reconcile with the session summary:
    // every non-tiny chunk does exactly one partition lookup, and in a
    // first session every index hit is a duplicate chunk (tiny files
    // bypass the index entirely).
    let apps = doc.get("apps").as_obj().expect("apps object");
    let mut hits = 0u64;
    let mut misses = 0u64;
    for app in apps.values() {
        hits += app.get("hits").as_u64().unwrap();
        misses += app.get("misses").as_u64().unwrap();
    }
    assert_eq!(hits + misses, chunks_total - files_tiny, "{out}");
    assert_eq!(hits, dup, "{out}");

    // Trace stream: every line is an object with the chrome-trace keys.
    let trace = fs::read_to_string(&trace_path).unwrap();
    let mut events = 0;
    for line in trace.lines() {
        let ev = json::parse(line).expect("trace line parses");
        let obj = ev.as_obj().expect("trace event object");
        for key in ["name", "ph", "ts", "dur", "pid", "tid"] {
            assert!(obj.contains_key(key), "trace event missing {key}: {line}");
        }
        assert_eq!(ev.get("ph").as_str(), Some("X"), "{line}");
        events += 1;
    }
    assert!(events > 0, "empty trace");
    // The session-level span is present.
    assert!(trace.contains("\"session\""), "no session span in trace");

    let _ = fs::remove_dir_all(&root);
}
