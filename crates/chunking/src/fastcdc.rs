//! Gear-hash FastCDC content-defined chunking.
//!
//! Same contract as the Rabin chunker ([`crate::CdcChunker`]) — spans
//! tile the input, interior chunks live in `[min_size, max_size]`, cut
//! points depend only on content — at a fraction of the CPU:
//!
//! * **Gear hash**: one shift-add and one table lookup per byte
//!   (`fp = (fp << 1) + GEAR[b]`), versus the Rabin scan's two lookups
//!   plus window bookkeeping. The window is implicit: a byte's influence
//!   is shifted out after 64 steps.
//! * **Min-size skip-ahead**: the hash restarts at every chunk start, so
//!   the first `min_size` bytes of each chunk are never scanned at all —
//!   with the default 2 KiB/8 KiB parameters that skips ~25 % of all
//!   input bytes.
//! * **Normalized chunking** (the FastCDC paper's "NC"): before the
//!   target size the boundary mask carries `log2(avg) + norm_level` bits
//!   (boundaries rare), after it `log2(avg) - norm_level` bits
//!   (boundaries likely). The size distribution squeezes toward the
//!   target, which both cuts the forced-boundary rate at `max_size` and
//!   lets the large-region mask re-find boundaries quickly after an edit.
//! * **Max-size cutoff**: identical to Rabin — a boundary is forced at
//!   `max_size`.
//!
//! Boundary decisions depend only on the bytes of the current chunk (the
//! gear hash restarts at each cut), so the streaming equivalence argument
//! in [`crate::stream`] carries over unchanged: a cut found with
//! `max_size` bytes of lookahead is final.
//!
//! Fidelity is proven differentially, with Rabin as the oracle: see
//! `tests/chunker_fidelity.rs` (dedup-ratio parity, bit-exact restores)
//! and `tests/golden_fastcdc.rs` (pinned gear table, masks, cut points).

use crate::gear::{spread_mask, GEAR};
use crate::{CdcAlgorithm, CdcParams, ChunkSpan, Chunker, ChunkingMethod, DEFAULT_FASTCDC};

/// Gear-hash chunker with FastCDC normalized boundary detection.
#[derive(Debug, Clone)]
pub struct FastCdcChunker {
    params: CdcParams,
    /// Mask used below the target size: `log2(avg) + norm_level` bits.
    mask_small: u64,
    /// Mask used at/above the target size: `log2(avg) - norm_level` bits.
    mask_large: u64,
}

impl Default for FastCdcChunker {
    fn default() -> Self {
        Self::new(DEFAULT_FASTCDC)
    }
}

impl FastCdcChunker {
    /// Chunker with the given CDC parameters (validated on construction;
    /// the algorithm field is forced to [`CdcAlgorithm::FastCdc`] so
    /// `params()` always tells the truth).
    pub fn new(params: CdcParams) -> Self {
        let params = params.with_algorithm(CdcAlgorithm::FastCdc);
        params.validate();
        let avg_bits = params.avg_size.trailing_zeros();
        FastCdcChunker {
            params,
            mask_small: spread_mask(avg_bits + params.norm_level),
            mask_large: spread_mask(avg_bits - params.norm_level),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &CdcParams {
        &self.params
    }

    /// The two-tier boundary masks `(small_region, large_region)`.
    pub fn masks(&self) -> (u64, u64) {
        (self.mask_small, self.mask_large)
    }

    /// Length of the first chunk of `data`, treating `data` as the
    /// remainder of the stream: the returned cut is final given at least
    /// `max_size` bytes of lookahead (or end-of-stream).
    pub fn first_cut(&self, data: &[u8]) -> usize {
        let CdcParams { min_size, max_size, avg_size, .. } = self.params;
        if data.len() <= min_size {
            return data.len();
        }
        let n = data.len().min(max_size);
        let normal = avg_size.min(n);
        let mut fp = 0u64;
        let mut i = min_size;
        // Small region [min_size, normal): the stricter mask makes
        // boundaries rare, pushing cuts toward the target size.
        while i < normal {
            // aalint: allow(panic-path) -- i < normal <= n = data.len(), and GEAR is a full [u64; 256] indexed by a byte
            fp = (fp << 1).wrapping_add(GEAR[data[i] as usize]);
            if fp & self.mask_small == 0 {
                return i + 1;
            }
            i += 1;
        }
        // Large region [normal, n): the looser mask makes boundaries
        // likely, so few chunks reach the forced cut at max_size.
        while i < n {
            // aalint: allow(panic-path) -- i < n = data.len(), and GEAR is a full [u64; 256] indexed by a byte
            fp = (fp << 1).wrapping_add(GEAR[data[i] as usize]);
            if fp & self.mask_large == 0 {
                return i + 1;
            }
            i += 1;
        }
        n
    }

    /// Finds all chunk boundaries (cut positions, exclusive end offsets)
    /// in `data`. The final position `data.len()` is always the last cut.
    pub fn boundaries(&self, data: &[u8]) -> Vec<usize> {
        let mut cuts = Vec::new();
        let mut start = 0usize;
        while start < data.len() {
            // aalint: allow(panic-path) -- start < data.len() is the loop guard
            let cut = start + self.first_cut(&data[start..]);
            cuts.push(cut);
            start = cut;
        }
        cuts
    }
}

impl Chunker for FastCdcChunker {
    fn chunk(&self, data: &[u8]) -> Vec<ChunkSpan> {
        if data.is_empty() {
            return Vec::new();
        }
        let cuts = self.boundaries(data);
        let mut spans = Vec::with_capacity(cuts.len());
        let mut prev = 0;
        for cut in cuts {
            spans.push(ChunkSpan { offset: prev, len: cut - prev, method: ChunkingMethod::Cdc });
            prev = cut;
        }
        spans
    }

    fn method(&self) -> ChunkingMethod {
        ChunkingMethod::Cdc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans_cover;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn covers_input_and_respects_bounds() {
        let chunker = FastCdcChunker::default();
        let data = pseudo_random(400_000, 7);
        let spans = chunker.chunk(&data);
        assert!(spans_cover(&data, &spans));
        let p = chunker.params();
        for (i, s) in spans.iter().enumerate() {
            assert!(s.len <= p.max_size, "span {i} too long: {}", s.len);
            if i + 1 < spans.len() {
                assert!(s.len > p.min_size, "span {i} too short: {}", s.len);
            }
        }
    }

    #[test]
    fn normalization_squeezes_the_distribution() {
        // With level-2 normalization the mean lands near the target and
        // forced max-size cuts are rare on random data.
        let chunker = FastCdcChunker::default();
        let data = pseudo_random(8_000_000, 99);
        let spans = chunker.chunk(&data);
        let avg = data.len() / spans.len();
        assert!(
            (6 * 1024..=13 * 1024).contains(&avg),
            "average chunk size {avg} outside expected band"
        );
        let forced = spans.iter().filter(|s| s.len == chunker.params().max_size).count();
        assert!(
            forced * 20 <= spans.len(),
            "{forced}/{} chunks were forced max-size cuts",
            spans.len()
        );
    }

    #[test]
    fn deterministic() {
        let chunker = FastCdcChunker::default();
        let data = pseudo_random(300_000, 3);
        assert_eq!(chunker.boundaries(&data), chunker.boundaries(&data));
    }

    #[test]
    fn boundary_shift_resistance() {
        let chunker = FastCdcChunker::default();
        let data = pseudo_random(1_000_000, 11);
        let mut edited = data.clone();
        edited.insert(1000, 0x42);

        let digest = |d: &[u8]| -> std::collections::HashSet<[u8; 20]> {
            chunker.chunk(d).iter().map(|s| aadedupe_hashing::sha1(s.slice(d))).collect()
        };
        let a = digest(&data);
        let b = digest(&edited);
        let shared = a.intersection(&b).count();
        assert!(
            shared * 10 >= a.len() * 8,
            "only {shared}/{} chunks survived a 1-byte insert",
            a.len()
        );
    }

    #[test]
    fn tiny_inputs() {
        let chunker = FastCdcChunker::default();
        for n in [0usize, 1, 100, 2047, 2048, 2049] {
            let data = pseudo_random(n, 5);
            let spans = chunker.chunk(&data);
            assert!(spans_cover(&data, &spans), "n={n}");
            if n > 0 && n <= chunker.params().min_size {
                assert_eq!(spans.len(), 1, "n={n} should be a single chunk");
            }
        }
    }

    #[test]
    fn zero_filled_data_forces_max_cuts() {
        // A constant stream drives the gear hash to a fixed point whose
        // masked value is (with overwhelming probability for a random
        // table) nonzero, so every chunk is forced at max_size — the same
        // degenerate behaviour the Rabin magic constant guards against.
        let chunker = FastCdcChunker::default();
        let data = vec![0u8; 200_000];
        let spans = chunker.chunk(&data);
        for s in &spans[..spans.len() - 1] {
            assert_eq!(s.len, chunker.params().max_size);
        }
    }

    #[test]
    fn custom_params() {
        let p = CdcParams {
            min_size: 256,
            avg_size: 1024,
            max_size: 4096,
            window: 32,
            algorithm: CdcAlgorithm::FastCdc,
            norm_level: 2,
        };
        let chunker = FastCdcChunker::new(p);
        let data = pseudo_random(400_000, 21);
        let spans = chunker.chunk(&data);
        assert!(spans_cover(&data, &spans));
        let avg = data.len() / spans.len();
        assert!((512..=2048).contains(&avg), "avg {avg}");
    }

    #[test]
    fn norm_level_zero_disables_normalization() {
        // With norm_level 0 both masks collapse to log2(avg) bits: the
        // classic single-mask gear chunker. Distribution spreads out but
        // the contract still holds.
        let p = CdcParams { norm_level: 0, ..DEFAULT_FASTCDC };
        let chunker = FastCdcChunker::new(p);
        let (s, l) = chunker.masks();
        assert_eq!(s, l);
        let data = pseudo_random(2_000_000, 77);
        let spans = chunker.chunk(&data);
        assert!(spans_cover(&data, &spans));
        let avg = data.len() / spans.len();
        assert!((4 * 1024..=14 * 1024).contains(&avg), "avg {avg}");
    }

    #[test]
    fn constructor_forces_algorithm_tag() {
        let c = FastCdcChunker::new(crate::DEFAULT_CDC);
        assert_eq!(c.params().algorithm, CdcAlgorithm::FastCdc);
    }

    #[test]
    fn boundaries_end_with_len_and_increase() {
        let chunker = FastCdcChunker::default();
        let data = pseudo_random(150_000, 13);
        let cuts = chunker.boundaries(&data);
        assert_eq!(cuts.last().copied(), Some(data.len()));
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
    }
}
