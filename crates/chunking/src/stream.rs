//! Streaming chunking over `std::io::Read`.
//!
//! The slice-based [`Chunker`](crate::Chunker) API requires the whole file
//! in memory; fine for PC-scale files, but VM disk images (the paper's
//! biggest category) can exceed RAM. [`StreamChunker`] produces the same
//! chunks incrementally with bounded memory: an internal buffer of at most
//! `2 × max_chunk` bytes, refilled as chunks are emitted.
//!
//! Equivalence with the batch API is guaranteed by construction for SC and
//! WFC and tested exhaustively for CDC (boundaries depend only on a
//! 48-byte window, which never spans the buffer seam thanks to the
//! carry-over logic).

use std::io::Read;

use crate::{CdcChunker, ChunkingMethod, ContentChunker, FastCdcChunker, ScChunker};

/// A chunk produced by streaming: its bytes plus global offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamedChunk {
    /// Offset of the chunk within the overall stream.
    pub offset: u64,
    /// The chunk's bytes (owned; the stream buffer has moved on).
    pub data: Vec<u8>,
    /// Strategy that produced the chunk.
    pub method: ChunkingMethod,
}

/// Incremental chunker over a byte stream.
pub struct StreamChunker<R: Read> {
    reader: R,
    method: Method,
    buf: Vec<u8>,
    /// Global offset of `buf[0]`.
    base: u64,
    eof: bool,
    err: Option<std::io::Error>,
}

enum Method {
    Wfc,
    Sc(ScChunker),
    // Boxed: the Rabin variant embeds its 4 KiB roll table.
    Cdc(Box<ContentChunker>),
}

impl<R: Read> StreamChunker<R> {
    /// Whole-file streaming (accumulates everything; one chunk at EOF).
    pub fn wfc(reader: R) -> Self {
        Self::new(reader, Method::Wfc)
    }

    /// Fixed-size streaming.
    pub fn sc(reader: R, chunker: ScChunker) -> Self {
        Self::new(reader, Method::Sc(chunker))
    }

    /// Content-defined streaming with Rabin boundaries (the historical
    /// entry point; [`StreamChunker::content`] takes either algorithm).
    pub fn cdc(reader: R, chunker: CdcChunker) -> Self {
        Self::content(reader, ContentChunker::Rabin(Box::new(chunker)))
    }

    /// Content-defined streaming with gear-hash FastCDC boundaries.
    pub fn fastcdc(reader: R, chunker: FastCdcChunker) -> Self {
        Self::content(reader, ContentChunker::FastCdc(chunker))
    }

    /// Content-defined streaming with whichever boundary algorithm the
    /// chunker was built for.
    pub fn content(reader: R, chunker: ContentChunker) -> Self {
        Self::new(reader, Method::Cdc(Box::new(chunker)))
    }

    /// Streaming chunker for any [`ChunkingMethod`], constructed from the
    /// method's parameters — the entry point the parallel backup pipeline
    /// uses so every worker thread builds its own chunker (the type is
    /// `Send`; see the `stream_chunker_is_send` test). For CDC, the
    /// boundary algorithm comes from `cdc.algorithm`.
    pub fn for_method(
        reader: R,
        method: ChunkingMethod,
        sc_chunk_size: usize,
        cdc: crate::CdcParams,
    ) -> Self {
        match method {
            ChunkingMethod::Wfc => Self::wfc(reader),
            ChunkingMethod::Sc => Self::sc(reader, ScChunker::new(sc_chunk_size)),
            ChunkingMethod::Cdc => Self::content(reader, ContentChunker::new(cdc)),
        }
    }

    fn new(reader: R, method: Method) -> Self {
        StreamChunker { reader, method, buf: Vec::new(), base: 0, eof: false, err: None }
    }

    /// Takes the I/O error that terminated the stream, if any.
    pub fn io_error(&mut self) -> Option<std::io::Error> {
        self.err.take()
    }

    /// How many buffered bytes we need before a chunk can be emitted
    /// without seeing EOF.
    fn high_water(&self) -> usize {
        match &self.method {
            Method::Wfc => usize::MAX,
            Method::Sc(sc) => sc.chunk_size(),
            // CDC boundaries within the first max_size bytes are final
            // once max_size bytes are visible.
            Method::Cdc(cdc) => cdc.params().max_size,
        }
    }

    fn fill(&mut self) {
        let target = self.high_water().saturating_mul(2).min(1 << 26);
        let mut scratch = [0u8; 64 * 1024];
        while !self.eof && self.buf.len() < target {
            match self.reader.read(&mut scratch) {
                Ok(0) => self.eof = true,
                // aalint: allow(panic-path) -- Read contract: a conforming reader returns n <= scratch.len()
                Ok(n) => self.buf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.err = Some(e);
                    self.eof = true;
                }
            }
        }
    }

    fn emit(&mut self, len: usize, method: ChunkingMethod) -> StreamedChunk {
        let data: Vec<u8> = self.buf.drain(..len).collect();
        let chunk = StreamedChunk { offset: self.base, data, method };
        self.base += len as u64;
        chunk
    }

    /// Wraps the chunker so every produced chunk is timed into the
    /// recorder's `chunk` stage and counted by chunking method. A disabled
    /// recorder reduces each observation to one atomic load.
    pub fn instrumented(self, recorder: std::sync::Arc<aadedupe_obs::Recorder>) -> InstrumentedChunker<R> {
        InstrumentedChunker { inner: self, recorder }
    }
}

/// A [`StreamChunker`] that reports per-chunk latency and chunk counts to
/// an [`aadedupe_obs::Recorder`]. Produces exactly the chunks the inner
/// chunker would — observation only.
pub struct InstrumentedChunker<R: Read> {
    inner: StreamChunker<R>,
    recorder: std::sync::Arc<aadedupe_obs::Recorder>,
}

impl<R: Read> InstrumentedChunker<R> {
    /// Takes the I/O error that terminated the stream, if any.
    pub fn io_error(&mut self) -> Option<std::io::Error> {
        self.inner.io_error()
    }
}

impl<R: Read> Iterator for InstrumentedChunker<R> {
    type Item = StreamedChunk;

    fn next(&mut self) -> Option<StreamedChunk> {
        use aadedupe_obs::{Counter, Stage};
        let started = self.recorder.start();
        let chunk = self.inner.next()?;
        self.recorder.record(Stage::Chunk, started);
        if started.is_some() {
            let by_method = match chunk.method {
                ChunkingMethod::Cdc => Counter::ChunksCdc,
                ChunkingMethod::Sc => Counter::ChunksSc,
                ChunkingMethod::Wfc => Counter::ChunksWfc,
            };
            self.recorder.count(by_method, 1);
            self.recorder.count(Counter::ChunkBytes, chunk.data.len() as u64);
        }
        Some(chunk)
    }
}

impl<R: Read> Iterator for StreamChunker<R> {
    type Item = StreamedChunk;

    fn next(&mut self) -> Option<StreamedChunk> {
        self.fill();
        if self.buf.is_empty() {
            return None;
        }
        let (len, method) = match &self.method {
            // Everything buffered (fill reads to EOF for WFC since
            // high_water is MAX).
            Method::Wfc => (self.buf.len(), ChunkingMethod::Wfc),
            Method::Sc(sc) => (sc.chunk_size().min(self.buf.len()), ChunkingMethod::Sc),
            Method::Cdc(cdc) => {
                // A boundary found with max_size bytes visible is final:
                // both CDC algorithms decide each cut from the current
                // chunk's bytes alone (Rabin re-primes its window, the
                // gear hash restarts at zero), never from bytes past it.
                let cut = if self.buf.len() <= cdc.params().max_size && self.eof {
                    // Tail: chunk exactly as the batch API would.
                    cdc.first_cut(&self.buf)
                } else {
                    let upper = cdc.params().max_size.min(self.buf.len());
                    // aalint: allow(panic-path) -- upper is clamped to buf.len() on the previous line
                    cdc.first_cut(&self.buf[..upper])
                };
                (cut, ChunkingMethod::Cdc)
            }
        };
        Some(self.emit(len, method))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CdcParams, Chunker, WfcChunker, DEFAULT_CDC, DEFAULT_FASTCDC};

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect()
    }

    fn collect_stream(s: impl Iterator<Item = StreamedChunk>) -> (Vec<u8>, Vec<usize>) {
        let mut data = Vec::new();
        let mut lens = Vec::new();
        for c in s {
            assert_eq!(c.offset as usize, data.len(), "offsets are contiguous");
            data.extend_from_slice(&c.data);
            lens.push(c.data.len());
        }
        (data, lens)
    }

    #[test]
    fn sc_stream_matches_batch() {
        let data = pseudo_random(100_000, 1);
        let sc = ScChunker::new(8192);
        let batch: Vec<usize> = sc.chunk(&data).iter().map(|s| s.len).collect();
        let (reassembled, lens) = collect_stream(StreamChunker::sc(&data[..], sc));
        assert_eq!(reassembled, data);
        assert_eq!(lens, batch);
    }

    #[test]
    fn cdc_stream_matches_batch() {
        for (len, seed) in [(0usize, 2u64), (100, 3), (2048, 4), (50_000, 5), (400_000, 6)] {
            let data = pseudo_random(len, seed);
            let cdc = CdcChunker::default();
            let batch: Vec<usize> = cdc.chunk(&data).iter().map(|s| s.len).collect();
            let (reassembled, lens) =
                collect_stream(StreamChunker::cdc(&data[..], CdcChunker::default()));
            assert_eq!(reassembled, data, "len={len}");
            assert_eq!(lens, batch, "len={len}");
        }
    }

    #[test]
    fn cdc_stream_matches_batch_custom_params() {
        let params =
            CdcParams { min_size: 256, avg_size: 1024, max_size: 4096, window: 48, ..DEFAULT_CDC };
        let data = pseudo_random(150_000, 9);
        let batch: Vec<usize> =
            CdcChunker::new(params).chunk(&data).iter().map(|s| s.len).collect();
        let (reassembled, lens) =
            collect_stream(StreamChunker::cdc(&data[..], CdcChunker::new(params)));
        assert_eq!(reassembled, data);
        assert_eq!(lens, batch);
    }

    #[test]
    fn fastcdc_stream_matches_batch() {
        for (len, seed) in [(0usize, 2u64), (100, 3), (2048, 4), (50_000, 5), (400_000, 6)] {
            let data = pseudo_random(len, seed);
            let fast = FastCdcChunker::default();
            let batch: Vec<usize> = fast.chunk(&data).iter().map(|s| s.len).collect();
            let (reassembled, lens) =
                collect_stream(StreamChunker::fastcdc(&data[..], FastCdcChunker::default()));
            assert_eq!(reassembled, data, "len={len}");
            assert_eq!(lens, batch, "len={len}");
        }
    }

    #[test]
    fn fastcdc_stream_matches_batch_custom_params() {
        let params = CdcParams {
            min_size: 256,
            avg_size: 1024,
            max_size: 4096,
            ..DEFAULT_FASTCDC
        };
        let data = pseudo_random(150_000, 9);
        let batch: Vec<usize> =
            FastCdcChunker::new(params).chunk(&data).iter().map(|s| s.len).collect();
        let (reassembled, lens) =
            collect_stream(StreamChunker::content(&data[..], ContentChunker::new(params)));
        assert_eq!(reassembled, data);
        assert_eq!(lens, batch);
    }

    #[test]
    fn for_method_honours_cdc_algorithm() {
        // The same data must chunk differently under the two algorithms
        // (they are different hash families), and for_method must route
        // by the params' algorithm tag.
        let data = pseudo_random(300_000, 33);
        let rabin: Vec<usize> =
            StreamChunker::for_method(&data[..], ChunkingMethod::Cdc, 8192, DEFAULT_CDC)
                .map(|c| c.data.len())
                .collect();
        let fast: Vec<usize> =
            StreamChunker::for_method(&data[..], ChunkingMethod::Cdc, 8192, DEFAULT_FASTCDC)
                .map(|c| c.data.len())
                .collect();
        let direct_fast: Vec<usize> = StreamChunker::fastcdc(&data[..], FastCdcChunker::default())
            .map(|c| c.data.len())
            .collect();
        assert_eq!(fast, direct_fast);
        assert_ne!(rabin, fast, "algorithms unexpectedly produced identical cut sequences");
        assert_eq!(rabin.iter().sum::<usize>(), data.len());
        assert_eq!(fast.iter().sum::<usize>(), data.len());
    }

    #[test]
    fn wfc_stream_single_chunk() {
        let data = pseudo_random(123_456, 7);
        let batch = WfcChunker::new().chunk(&data);
        let chunks: Vec<StreamedChunk> = StreamChunker::wfc(&data[..]).collect();
        assert_eq!(chunks.len(), batch.len());
        assert_eq!(chunks[0].data, data);
        assert_eq!(chunks[0].method, ChunkingMethod::Wfc);
    }

    #[test]
    fn empty_stream_yields_nothing() {
        assert_eq!(StreamChunker::wfc(&b""[..]).count(), 0);
        assert_eq!(StreamChunker::sc(&b""[..], ScChunker::new(8192)).count(), 0);
        assert_eq!(StreamChunker::cdc(&b""[..], CdcChunker::default()).count(), 0);
    }

    #[test]
    fn io_errors_surface() {
        struct Failing(usize);
        impl Read for Failing {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0 == 0 {
                    Err(std::io::Error::other("disk on fire"))
                } else {
                    let n = buf.len().min(self.0);
                    self.0 -= n;
                    buf[..n].fill(7);
                    Ok(n)
                }
            }
        }
        let mut s = StreamChunker::cdc(Failing(10_000), CdcChunker::default());
        let consumed: usize = s.by_ref().map(|c| c.data.len()).sum();
        assert_eq!(consumed, 10_000, "bytes before the error still chunk");
        assert!(s.io_error().is_some());
    }

    #[test]
    fn stream_chunker_is_send() {
        // The parallel pipeline moves chunkers into worker threads; a
        // non-Send field sneaking into StreamChunker must fail this build.
        fn assert_send<T: Send>() {}
        assert_send::<StreamChunker<std::io::Cursor<Vec<u8>>>>();
        assert_send::<StreamChunker<&[u8]>>();
    }

    #[test]
    fn for_method_matches_dedicated_constructors() {
        let data = pseudo_random(120_000, 21);
        for method in [ChunkingMethod::Wfc, ChunkingMethod::Sc, ChunkingMethod::Cdc] {
            let via_for_method: Vec<usize> =
                StreamChunker::for_method(&data[..], method, 8192, DEFAULT_CDC)
                    .map(|c| c.data.len())
                    .collect();
            let direct: Vec<usize> = match method {
                ChunkingMethod::Wfc => {
                    StreamChunker::wfc(&data[..]).map(|c| c.data.len()).collect()
                }
                ChunkingMethod::Sc => StreamChunker::sc(&data[..], ScChunker::new(8192))
                    .map(|c| c.data.len())
                    .collect(),
                ChunkingMethod::Cdc => {
                    StreamChunker::cdc(&data[..], CdcChunker::new(DEFAULT_CDC))
                        .map(|c| c.data.len())
                        .collect()
                }
            };
            assert_eq!(via_for_method, direct, "{method:?}");
        }
    }

    #[test]
    fn default_cdc_params_used() {
        // Sanity: the streaming path respects min/max bounds.
        let data = pseudo_random(300_000, 11);
        let chunks: Vec<StreamedChunk> =
            StreamChunker::cdc(&data[..], CdcChunker::default()).collect();
        for (i, c) in chunks.iter().enumerate() {
            assert!(c.data.len() <= DEFAULT_CDC.max_size);
            if i + 1 < chunks.len() {
                assert!(c.data.len() >= DEFAULT_CDC.min_size);
            }
        }
    }
}
