//! The gear table and mask machinery behind gear-hash chunking.
//!
//! A gear hash replaces the Rabin rolling window with a single shift-add
//! per byte: `fp = (fp << 1) + GEAR[b]`. Each incorporated byte's random
//! 64-bit gear value marches one bit to the left per subsequent byte, so
//! bit `p` of the hash depends on (at most) the last `p + 1` input bytes —
//! an *implicit* sliding window, with no explicit out-rolling and no
//! per-chunk window priming. That is the whole trick behind FastCDC-family
//! chunkers being 5–10× faster than the 48-byte-window, 1-byte-step Rabin
//! scan ("A Thorough Investigation of Content-Defined Chunking Algorithms
//! for Data Deduplication").
//!
//! Because the low bits of a gear hash see only a few recent bytes, the
//! boundary masks produced here ([`spread_mask`]) place their bits in the
//! upper 48 bit positions, giving every mask bit an effective window of at
//! least [`MIN_MASK_BIT`] bytes.
//!
//! # Determinism contract
//!
//! The table is a `const` computed at compile time from a pinned seed by a
//! pinned PRNG (splitmix64). Every fingerprint in the fleet depends on it:
//! changing [`GEAR_SEED`], the generator, or the mask layout silently
//! re-chunks the world and destroys cross-version dedup. The golden-vector
//! test (`tests/golden_fastcdc.rs`) pins the table and the masks so no
//! such change can land unnoticed.

/// Seed of the gear table. Pinned forever: see the module docs.
pub const GEAR_SEED: u64 = 0x4AA0_DEDB_0C5E_ED01;

/// Lowest bit position a boundary mask may use. Mask bit `p` of a gear
/// hash is influenced by the last `p + 1` bytes, so this is also the
/// minimum effective window (in bytes) of any single mask bit.
pub const MIN_MASK_BIT: u32 = 16;

/// The number of recent bytes that can influence the masked hash at all:
/// bits above 63 are shifted out, so byte contributions older than 64
/// positions are gone entirely.
pub const GEAR_WINDOW: usize = 64;

/// One splitmix64 step: advances the state and returns the next output.
/// Pinned algorithm (Steele et al., the `SplittableRandom` finalizer) —
/// part of the fingerprint-stability contract.
const fn splitmix64(state: u64) -> (u64, u64) {
    let state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (state, z ^ (z >> 31))
}

const fn build_gear_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut state = GEAR_SEED;
    let mut i = 0;
    while i < 256 {
        let (next, value) = splitmix64(state);
        state = next;
        table[i] = value;
        i += 1;
    }
    table
}

/// The 256-entry gear table: one pinned random 64-bit value per byte,
/// generated at *compile time* — no runtime initialisation, no laziness,
/// no ordering hazards.
pub const GEAR: [u64; 256] = build_gear_table();

/// A boundary mask with `bits` one-bits spread evenly across bit positions
/// [`MIN_MASK_BIT`]..=63. Spreading (rather than packing the bits
/// contiguously) decorrelates the mask bits' effective windows, which
/// empirically flattens the chunk-size distribution; anchoring above
/// [`MIN_MASK_BIT`] keeps every bit's window deep enough that single-byte
/// periodic data cannot satisfy the mask at every position.
///
/// `bits` must be in `1..=48`; the positions are strictly decreasing from
/// bit 63, so the popcount is exactly `bits`.
pub const fn spread_mask(bits: u32) -> u64 {
    // aalint: allow(panic-path) -- compile-time parameter validation; every call site passes a literal bit count
    assert!(bits >= 1 && bits <= 48, "mask bits must be in 1..=48");
    let span = 63 - MIN_MASK_BIT; // inclusive position range 16..=63
    let mut mask = 0u64;
    let mut i = 0;
    while i < bits {
        // Evenly spaced over [MIN_MASK_BIT, 63], highest first. The step
        // span/(bits-1) is >= 1 for bits <= 48, so positions are distinct.
        let pos = if bits == 1 { 63 } else { 63 - (i * span) / (bits - 1) };
        mask |= 1u64 << pos;
        i += 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_no_trivial_entries() {
        for (i, &v) in GEAR.iter().enumerate() {
            assert_ne!(v, 0, "GEAR[{i}] is zero");
        }
    }

    #[test]
    fn table_entries_are_distinct() {
        let mut sorted: Vec<u64> = GEAR.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 256, "gear entries collide");
    }

    #[test]
    fn table_bits_are_balanced() {
        // A healthy random table has ~50% ones overall; a generator bug
        // (e.g. truncation to 32 bits) would skew this badly.
        let ones: u32 = GEAR.iter().map(|v| v.count_ones()).sum();
        let total = 256 * 64;
        assert!(
            (total * 45 / 100..=total * 55 / 100).contains(&ones),
            "gear table bit balance off: {ones}/{total}"
        );
    }

    #[test]
    fn spread_mask_popcount_and_range() {
        for bits in 1..=48u32 {
            let m = spread_mask(bits);
            assert_eq!(m.count_ones(), bits, "bits={bits}");
            assert_eq!(m & ((1u64 << MIN_MASK_BIT) - 1), 0, "low bits used at bits={bits}");
            assert_ne!(m & (1u64 << 63), 0, "top bit unused at bits={bits}");
        }
    }

    #[test]
    fn spread_mask_is_monotone_in_selectivity() {
        // More bits = harder to satisfy: the containment need not hold,
        // but popcount ordering must.
        for bits in 1..48u32 {
            assert!(spread_mask(bits).count_ones() < spread_mask(bits + 1).count_ones());
        }
    }
}
