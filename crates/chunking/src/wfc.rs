//! Whole File Chunking (WFC).
//!
//! The degenerate chunking strategy: the entire file is a single chunk.
//! AA-Dedupe applies it to *compressed* applications (AVI, MP3, ISO, DMG,
//! RAR, JPG), whose sub-file redundancy in the paper's Table 1 is ≤ 0.9 % —
//! file-level duplicate detection captures essentially all of it while
//! paying one weak-hash computation per file.

use crate::{ChunkSpan, Chunker, ChunkingMethod};

/// Whole-file chunker.
#[derive(Debug, Clone, Copy, Default)]
pub struct WfcChunker;

impl WfcChunker {
    /// Creates a whole-file chunker.
    pub fn new() -> Self {
        WfcChunker
    }
}

impl Chunker for WfcChunker {
    fn chunk(&self, data: &[u8]) -> Vec<ChunkSpan> {
        if data.is_empty() {
            return Vec::new();
        }
        vec![ChunkSpan {
            offset: 0,
            len: data.len(),
            method: ChunkingMethod::Wfc,
        }]
    }

    fn method(&self) -> ChunkingMethod {
        ChunkingMethod::Wfc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans_cover;

    #[test]
    fn whole_file_is_one_chunk() {
        let data = vec![1u8; 12_345];
        let spans = WfcChunker::new().chunk(&data);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].offset, 0);
        assert_eq!(spans[0].len, data.len());
        assert_eq!(spans[0].method, ChunkingMethod::Wfc);
        assert!(spans_cover(&data, &spans));
    }

    #[test]
    fn empty_input_no_chunks() {
        assert!(WfcChunker::new().chunk(b"").is_empty());
    }

    #[test]
    fn single_byte_file() {
        let spans = WfcChunker::new().chunk(b"x");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].len, 1);
    }
}
