#![forbid(unsafe_code)]
//! Chunking substrate for AA-Dedupe.
//!
//! AA-Dedupe's "intelligent chunker" dispatches each file to one of three
//! chunking strategies according to its application category (paper §III.C):
//!
//! * [`wfc`] — **Whole File Chunking**: the entire file is one chunk. Used
//!   for compressed applications (AVI, MP3, RAR, …), whose sub-file
//!   redundancy is negligible (Observation 1).
//! * [`sc`] — **Static Chunking**: fixed-size 8 KiB chunks. Used for static
//!   uncompressed applications and VM disk images, where SC matches or beats
//!   CDC (Observation 3) because CDC force-cuts many max-length chunks.
//! * [`cdc`] — **Content Defined Chunking**: variable-size chunks delimited
//!   where a 48-byte rolling Rabin fingerprint matches a divisor mask;
//!   min 2 KiB / average 8 KiB / max 16 KiB. Used for dynamic uncompressed
//!   applications, where it survives the boundary-shifting problem caused by
//!   inserts/deletes.
//!
//! All chunkers implement the [`Chunker`] trait over byte slices and return
//! byte *ranges* so callers can avoid copying. The crate also provides
//! [`params::CdcParams`] for parameter sweeps and the [`ChunkingMethod`] tag
//! used across the workspace.

pub mod cdc;
pub mod params;
pub mod sc;
pub mod stream;
pub mod wfc;

pub use cdc::CdcChunker;
pub use params::{CdcParams, DEFAULT_CDC, DEFAULT_SC_SIZE};
pub use sc::ScChunker;
pub use stream::{InstrumentedChunker, StreamChunker, StreamedChunk};
pub use wfc::WfcChunker;

use std::fmt;

/// Which chunking strategy produced a chunk — carried through indexes,
/// containers and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChunkingMethod {
    /// Whole File Chunking.
    Wfc,
    /// Static (fixed-size) Chunking.
    Sc,
    /// Content Defined Chunking.
    Cdc,
}

impl ChunkingMethod {
    /// Stable single-byte tag for on-disk encodings.
    pub const fn tag(self) -> u8 {
        match self {
            ChunkingMethod::Wfc => 1,
            ChunkingMethod::Sc => 2,
            ChunkingMethod::Cdc => 3,
        }
    }

    /// Inverse of [`ChunkingMethod::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(ChunkingMethod::Wfc),
            2 => Some(ChunkingMethod::Sc),
            3 => Some(ChunkingMethod::Cdc),
            _ => None,
        }
    }

    /// Human-readable name, as used in harness output.
    pub const fn name(self) -> &'static str {
        match self {
            ChunkingMethod::Wfc => "WFC",
            ChunkingMethod::Sc => "SC",
            ChunkingMethod::Cdc => "CDC",
        }
    }
}

impl fmt::Display for ChunkingMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A chunk of file data: its byte range within the source plus the strategy
/// that produced it. Chunkers return ranges, not copies; callers slice the
/// source buffer themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSpan {
    /// Byte offset of the chunk within the source.
    pub offset: usize,
    /// Chunk length in bytes.
    pub len: usize,
    /// Strategy that produced the chunk.
    pub method: ChunkingMethod,
}

impl ChunkSpan {
    /// End offset (exclusive).
    pub fn end(&self) -> usize {
        self.offset + self.len
    }

    /// The chunk's bytes within `source`.
    pub fn slice<'a>(&self, source: &'a [u8]) -> &'a [u8] {
        &source[self.offset..self.end()]
    }
}

/// A chunking strategy over an in-memory file.
pub trait Chunker {
    /// Splits `data` into contiguous, non-overlapping spans that exactly
    /// cover it (empty input yields no spans).
    fn chunk(&self, data: &[u8]) -> Vec<ChunkSpan>;

    /// The method tag this chunker stamps on its spans.
    fn method(&self) -> ChunkingMethod;
}

/// Validates the fundamental chunker invariant: spans are contiguous,
/// non-empty, and exactly cover `data`. Used by tests and debug assertions.
pub fn spans_cover(data: &[u8], spans: &[ChunkSpan]) -> bool {
    if data.is_empty() {
        return spans.is_empty();
    }
    let mut cursor = 0;
    for s in spans {
        if s.len == 0 || s.offset != cursor {
            return false;
        }
        cursor = s.end();
    }
    cursor == data.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_tag_round_trip() {
        for m in [ChunkingMethod::Wfc, ChunkingMethod::Sc, ChunkingMethod::Cdc] {
            assert_eq!(ChunkingMethod::from_tag(m.tag()), Some(m));
        }
        assert_eq!(ChunkingMethod::from_tag(0), None);
        assert_eq!(ChunkingMethod::from_tag(9), None);
    }

    #[test]
    fn span_slicing() {
        let data = b"0123456789";
        let s = ChunkSpan {
            offset: 3,
            len: 4,
            method: ChunkingMethod::Sc,
        };
        assert_eq!(s.slice(data), b"3456");
        assert_eq!(s.end(), 7);
    }

    #[test]
    fn spans_cover_checks() {
        let data = b"abcdef";
        let ok = vec![
            ChunkSpan { offset: 0, len: 2, method: ChunkingMethod::Sc },
            ChunkSpan { offset: 2, len: 4, method: ChunkingMethod::Sc },
        ];
        assert!(spans_cover(data, &ok));
        let gap = vec![
            ChunkSpan { offset: 0, len: 2, method: ChunkingMethod::Sc },
            ChunkSpan { offset: 3, len: 3, method: ChunkingMethod::Sc },
        ];
        assert!(!spans_cover(data, &gap));
        let short = vec![ChunkSpan { offset: 0, len: 5, method: ChunkingMethod::Sc }];
        assert!(!spans_cover(data, &short));
        let empty_span = vec![
            ChunkSpan { offset: 0, len: 0, method: ChunkingMethod::Sc },
            ChunkSpan { offset: 0, len: 6, method: ChunkingMethod::Sc },
        ];
        assert!(!spans_cover(data, &empty_span));
        assert!(spans_cover(b"", &[]));
        assert!(!spans_cover(b"", &ok));
    }
}
