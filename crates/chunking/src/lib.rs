#![forbid(unsafe_code)]
//! Chunking substrate for AA-Dedupe.
//!
//! AA-Dedupe's "intelligent chunker" dispatches each file to one of three
//! chunking strategies according to its application category (paper §III.C):
//!
//! * [`wfc`] — **Whole File Chunking**: the entire file is one chunk. Used
//!   for compressed applications (AVI, MP3, RAR, …), whose sub-file
//!   redundancy is negligible (Observation 1).
//! * [`sc`] — **Static Chunking**: fixed-size 8 KiB chunks. Used for static
//!   uncompressed applications and VM disk images, where SC matches or beats
//!   CDC (Observation 3) because CDC force-cuts many max-length chunks.
//! * [`cdc`] — **Content Defined Chunking**: variable-size chunks delimited
//!   where a 48-byte rolling Rabin fingerprint matches a divisor mask;
//!   min 2 KiB / average 8 KiB / max 16 KiB. Used for dynamic uncompressed
//!   applications, where it survives the boundary-shifting problem caused by
//!   inserts/deletes.
//!
//! The CDC family has two interchangeable boundary algorithms, selected by
//! [`CdcParams::algorithm`] and dispatched through [`ContentChunker`]:
//! the paper's Rabin scan ([`cdc`], the fidelity oracle) and the gear-hash
//! FastCDC kernel ([`fastcdc`], backed by the compile-time [`gear`] table)
//! which delivers the same dedup ratio at a fraction of the CPU. Their
//! equivalence is enforced by the differential fidelity harness
//! (`tests/chunker_fidelity.rs` at the workspace root).
//!
//! All chunkers implement the [`Chunker`] trait over byte slices and return
//! byte *ranges* so callers can avoid copying. The crate also provides
//! [`params::CdcParams`] for parameter sweeps and the [`ChunkingMethod`] tag
//! used across the workspace.

pub mod cdc;
pub mod fastcdc;
pub mod gear;
pub mod params;
pub mod sc;
pub mod stream;
pub mod wfc;

pub use cdc::CdcChunker;
pub use fastcdc::FastCdcChunker;
pub use params::{
    CdcAlgorithm, CdcParams, DEFAULT_CDC, DEFAULT_FASTCDC, DEFAULT_NORM_LEVEL, DEFAULT_SC_SIZE,
};
pub use sc::ScChunker;
pub use stream::{InstrumentedChunker, StreamChunker, StreamedChunk};
pub use wfc::WfcChunker;

use std::fmt;

/// Which chunking strategy produced a chunk — carried through indexes,
/// containers and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChunkingMethod {
    /// Whole File Chunking.
    Wfc,
    /// Static (fixed-size) Chunking.
    Sc,
    /// Content Defined Chunking.
    Cdc,
}

impl ChunkingMethod {
    /// Stable single-byte tag for on-disk encodings.
    pub const fn tag(self) -> u8 {
        match self {
            ChunkingMethod::Wfc => 1,
            ChunkingMethod::Sc => 2,
            ChunkingMethod::Cdc => 3,
        }
    }

    /// Inverse of [`ChunkingMethod::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(ChunkingMethod::Wfc),
            2 => Some(ChunkingMethod::Sc),
            3 => Some(ChunkingMethod::Cdc),
            _ => None,
        }
    }

    /// Human-readable name, as used in harness output.
    pub const fn name(self) -> &'static str {
        match self {
            ChunkingMethod::Wfc => "WFC",
            ChunkingMethod::Sc => "SC",
            ChunkingMethod::Cdc => "CDC",
        }
    }
}

impl fmt::Display for ChunkingMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A chunk of file data: its byte range within the source plus the strategy
/// that produced it. Chunkers return ranges, not copies; callers slice the
/// source buffer themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSpan {
    /// Byte offset of the chunk within the source.
    pub offset: usize,
    /// Chunk length in bytes.
    pub len: usize,
    /// Strategy that produced the chunk.
    pub method: ChunkingMethod,
}

impl ChunkSpan {
    /// End offset (exclusive).
    pub fn end(&self) -> usize {
        self.offset + self.len
    }

    /// The chunk's bytes within `source`.
    pub fn slice<'a>(&self, source: &'a [u8]) -> &'a [u8] {
        // aalint: allow(panic-path) -- spans are produced against this buffer; slicing a different source is a caller bug worth a loud panic
        &source[self.offset..self.end()]
    }
}

/// A content-defined chunker of either boundary algorithm, selected by
/// [`CdcParams::algorithm`]. This is the type the engine's chunking
/// dispatch builds: the size contract (min/avg/max) is identical across
/// algorithms, only the cut positions differ.
#[derive(Clone)]
pub enum ContentChunker {
    /// The paper's 48-byte-window Rabin scan (the fidelity oracle).
    /// Boxed: the precomputed Rabin tables dwarf the gear variant.
    Rabin(Box<CdcChunker>),
    /// Gear-hash FastCDC with normalized chunking.
    FastCdc(FastCdcChunker),
}

impl ContentChunker {
    /// Builds the chunker named by `params.algorithm`.
    pub fn new(params: CdcParams) -> Self {
        match params.algorithm {
            CdcAlgorithm::Rabin => ContentChunker::Rabin(Box::new(CdcChunker::new(params))),
            CdcAlgorithm::FastCdc => ContentChunker::FastCdc(FastCdcChunker::new(params)),
        }
    }

    /// The configured parameters (algorithm tag included).
    pub fn params(&self) -> &CdcParams {
        match self {
            ContentChunker::Rabin(c) => c.params(),
            ContentChunker::FastCdc(c) => c.params(),
        }
    }

    /// Length of the first chunk of `data`, treating `data` as the stream
    /// remainder; final given `max_size` bytes of lookahead or EOF.
    pub fn first_cut(&self, data: &[u8]) -> usize {
        match self {
            ContentChunker::Rabin(c) => c.first_cut(data),
            ContentChunker::FastCdc(c) => c.first_cut(data),
        }
    }

    /// All cut positions (exclusive end offsets); the final position is
    /// always `data.len()`.
    pub fn boundaries(&self, data: &[u8]) -> Vec<usize> {
        match self {
            ContentChunker::Rabin(c) => c.boundaries(data),
            ContentChunker::FastCdc(c) => c.boundaries(data),
        }
    }
}

impl Chunker for ContentChunker {
    fn chunk(&self, data: &[u8]) -> Vec<ChunkSpan> {
        match self {
            ContentChunker::Rabin(c) => c.chunk(data),
            ContentChunker::FastCdc(c) => c.chunk(data),
        }
    }

    fn method(&self) -> ChunkingMethod {
        ChunkingMethod::Cdc
    }
}

/// A chunking strategy over an in-memory file.
pub trait Chunker {
    /// Splits `data` into contiguous, non-overlapping spans that exactly
    /// cover it (empty input yields no spans).
    fn chunk(&self, data: &[u8]) -> Vec<ChunkSpan>;

    /// The method tag this chunker stamps on its spans.
    fn method(&self) -> ChunkingMethod;
}

/// Validates the fundamental chunker invariant: spans are contiguous,
/// non-empty, and exactly cover `data`. Used by tests and debug assertions.
pub fn spans_cover(data: &[u8], spans: &[ChunkSpan]) -> bool {
    if data.is_empty() {
        return spans.is_empty();
    }
    let mut cursor = 0;
    for s in spans {
        if s.len == 0 || s.offset != cursor {
            return false;
        }
        cursor = s.end();
    }
    cursor == data.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_tag_round_trip() {
        for m in [ChunkingMethod::Wfc, ChunkingMethod::Sc, ChunkingMethod::Cdc] {
            assert_eq!(ChunkingMethod::from_tag(m.tag()), Some(m));
        }
        assert_eq!(ChunkingMethod::from_tag(0), None);
        assert_eq!(ChunkingMethod::from_tag(9), None);
    }

    #[test]
    fn span_slicing() {
        let data = b"0123456789";
        let s = ChunkSpan {
            offset: 3,
            len: 4,
            method: ChunkingMethod::Sc,
        };
        assert_eq!(s.slice(data), b"3456");
        assert_eq!(s.end(), 7);
    }

    #[test]
    fn spans_cover_checks() {
        let data = b"abcdef";
        let ok = vec![
            ChunkSpan { offset: 0, len: 2, method: ChunkingMethod::Sc },
            ChunkSpan { offset: 2, len: 4, method: ChunkingMethod::Sc },
        ];
        assert!(spans_cover(data, &ok));
        let gap = vec![
            ChunkSpan { offset: 0, len: 2, method: ChunkingMethod::Sc },
            ChunkSpan { offset: 3, len: 3, method: ChunkingMethod::Sc },
        ];
        assert!(!spans_cover(data, &gap));
        let short = vec![ChunkSpan { offset: 0, len: 5, method: ChunkingMethod::Sc }];
        assert!(!spans_cover(data, &short));
        let empty_span = vec![
            ChunkSpan { offset: 0, len: 0, method: ChunkingMethod::Sc },
            ChunkSpan { offset: 0, len: 6, method: ChunkingMethod::Sc },
        ];
        assert!(!spans_cover(data, &empty_span));
        assert!(spans_cover(b"", &[]));
        assert!(!spans_cover(b"", &ok));
    }
}
