//! Static Chunking (SC).
//!
//! Splits a file into fixed-size chunks (the paper's default: 8 KiB), the
//! last chunk carrying the remainder. Cheap — no per-byte work at all — and,
//! per the paper's Observation 3, *as effective as or better than CDC* on
//! static application data and VM disk images, because those datasets are
//! updated in place (no boundary shifting) while CDC wastes redundancy on
//! forced max-size cuts.

use crate::{ChunkSpan, Chunker, ChunkingMethod, DEFAULT_SC_SIZE};

/// Fixed-size chunker.
#[derive(Debug, Clone, Copy)]
pub struct ScChunker {
    chunk_size: usize,
}

impl Default for ScChunker {
    fn default() -> Self {
        Self::new(DEFAULT_SC_SIZE)
    }
}

impl ScChunker {
    /// Chunker with the given fixed chunk size (must be nonzero).
    pub fn new(chunk_size: usize) -> Self {
        // aalint: allow(panic-path) -- construction-time parameter validation: a zero chunk size is a caller bug
        assert!(chunk_size > 0, "chunk size must be nonzero");
        ScChunker { chunk_size }
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }
}

impl Chunker for ScChunker {
    fn chunk(&self, data: &[u8]) -> Vec<ChunkSpan> {
        let mut spans = Vec::with_capacity(data.len().div_ceil(self.chunk_size));
        let mut offset = 0;
        while offset < data.len() {
            let len = self.chunk_size.min(data.len() - offset);
            spans.push(ChunkSpan {
                offset,
                len,
                method: ChunkingMethod::Sc,
            });
            offset += len;
        }
        spans
    }

    fn method(&self) -> ChunkingMethod {
        ChunkingMethod::Sc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans_cover;

    #[test]
    fn exact_multiple() {
        let data = vec![0u8; 8192 * 3];
        let spans = ScChunker::new(8192).chunk(&data);
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|s| s.len == 8192));
        assert!(spans_cover(&data, &spans));
    }

    #[test]
    fn remainder_chunk() {
        let data = vec![0u8; 8192 + 100];
        let spans = ScChunker::new(8192).chunk(&data);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].len, 8192);
        assert_eq!(spans[1].len, 100);
        assert!(spans_cover(&data, &spans));
    }

    #[test]
    fn input_smaller_than_chunk() {
        let data = vec![0u8; 10];
        let spans = ScChunker::new(8192).chunk(&data);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].len, 10);
    }

    #[test]
    fn empty_input() {
        assert!(ScChunker::new(8192).chunk(b"").is_empty());
    }

    #[test]
    fn chunk_size_one() {
        let spans = ScChunker::new(1).chunk(b"abc");
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|s| s.len == 1));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_chunk_size_rejected() {
        ScChunker::new(0);
    }

    #[test]
    fn boundaries_are_position_dependent() {
        // SC suffers boundary shifting: a one-byte prefix insertion changes
        // every chunk's content. This documents the behaviour CDC avoids.
        let data: Vec<u8> = (0..40_960u32).map(|i| (i % 251) as u8).collect();
        let mut shifted = vec![0xffu8];
        shifted.extend_from_slice(&data);
        let a = ScChunker::new(8192).chunk(&data);
        let b = ScChunker::new(8192).chunk(&shifted);
        // All full chunks of the shifted stream differ in content.
        let same = a
            .iter()
            .zip(b.iter())
            .filter(|(x, y)| x.slice(&data) == y.slice(&shifted))
            .count();
        assert_eq!(same, 0);
    }
}
