//! Chunking parameters.
//!
//! The paper's evaluation fixes (§IV.A): 8 KiB static chunks; CDC with an
//! 8 KiB expected chunk size, 2 KiB minimum, 16 KiB maximum, a 48-byte
//! Rabin sliding window and 1-byte step. These are the workspace defaults;
//! the ablation benches sweep them.
//!
//! Since the gear-hash chunker landed, a [`CdcParams`] also names *which*
//! boundary-detection algorithm runs ([`CdcAlgorithm`]): the paper's
//! Rabin scan (the fidelity oracle) or the FastCDC-family gear hash with
//! normalized chunking. The sizes mean the same thing under both; only
//! the boundary positions differ.

use std::fmt;

/// Default static-chunking size: 8 KiB.
pub const DEFAULT_SC_SIZE: usize = 8 * 1024;

/// Which content-defined boundary-detection algorithm a CDC partition
/// runs. Part of each application's CDC configuration: two engines (or
/// two partitions) dedupe against each other only if they agree on it,
/// since the algorithms produce different — though statistically
/// equivalent — cut points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum CdcAlgorithm {
    /// 48-byte-window, 1-byte-step Rabin fingerprint — the paper's
    /// chunker and the fidelity oracle for the differential harness.
    #[default]
    Rabin,
    /// Gear-hash FastCDC: normalized chunking with two-tier masks,
    /// min-size skip-ahead, max-size cutoff. Same dedup ratio, a fraction
    /// of the CPU.
    FastCdc,
}

impl CdcAlgorithm {
    /// Canonical lowercase name, as accepted by `aabackup --chunker`.
    pub const fn name(self) -> &'static str {
        match self {
            CdcAlgorithm::Rabin => "rabin",
            CdcAlgorithm::FastCdc => "fastcdc",
        }
    }

    /// Inverse of [`CdcAlgorithm::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "rabin" => Some(CdcAlgorithm::Rabin),
            "fastcdc" => Some(CdcAlgorithm::FastCdc),
            _ => None,
        }
    }

    /// Every algorithm, in a stable order — the axis differential suites
    /// and benches iterate over.
    pub const ALL: [CdcAlgorithm; 2] = [CdcAlgorithm::Rabin, CdcAlgorithm::FastCdc];
}

impl fmt::Display for CdcAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Content-defined chunking parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CdcParams {
    /// Minimum chunk size in bytes; no boundary is accepted before this.
    pub min_size: usize,
    /// Expected (average) chunk size in bytes. Must be a power of two: the
    /// boundary condition is a mask derived from it.
    pub avg_size: usize,
    /// Maximum chunk size; a boundary is forced here (the paper's
    /// Observation 3 notes these forced cuts hurt CDC on static data).
    pub max_size: usize,
    /// Rabin rolling-hash window in bytes (the paper uses 48). Ignored by
    /// the gear hash, whose shift-add recurrence has an implicit 64-byte
    /// window.
    pub window: usize,
    /// Boundary-detection algorithm.
    pub algorithm: CdcAlgorithm,
    /// FastCDC normalization level: below `avg_size` the boundary mask
    /// carries `log2(avg_size) + norm_level` bits (cuts are rarer), above
    /// it `log2(avg_size) - norm_level` bits (cuts are more likely),
    /// squeezing the size distribution toward the target. Level 0 disables
    /// normalization. Ignored by Rabin.
    pub norm_level: u32,
}

impl Default for CdcParams {
    fn default() -> Self {
        DEFAULT_CDC
    }
}

impl CdcParams {
    /// This parameter set with a different boundary algorithm.
    #[must_use]
    pub const fn with_algorithm(mut self, algorithm: CdcAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Validates the parameter set, panicking with a description on misuse.
    pub fn validate(&self) {
        // aalint: allow(panic-path) -- construction-time parameter validation: rejecting a nonsensical config loudly is the contract
        assert!(self.min_size > 0, "min_size must be positive");
        // aalint: allow(panic-path) -- construction-time parameter validation
        assert!(
            self.avg_size.is_power_of_two(),
            "avg_size must be a power of two (divisor-mask boundary test)"
        );
        // aalint: allow(panic-path) -- construction-time parameter validation
        assert!(
            self.min_size <= self.avg_size && self.avg_size <= self.max_size,
            "require min <= avg <= max"
        );
        // aalint: allow(panic-path) -- construction-time parameter validation
        assert!(self.window > 0, "window must be positive");
        // aalint: allow(panic-path) -- construction-time parameter validation
        assert!(
            self.window <= self.min_size,
            "window must fit inside the minimum chunk"
        );
        if self.algorithm == CdcAlgorithm::FastCdc {
            let avg_bits = self.avg_size.trailing_zeros();
            // aalint: allow(panic-path) -- construction-time parameter validation
            assert!(
                self.norm_level < avg_bits,
                "norm_level must leave the large-region mask at least one bit"
            );
            // aalint: allow(panic-path) -- construction-time parameter validation
            assert!(
                avg_bits + self.norm_level <= 48,
                "small-region mask needs log2(avg) + norm_level <= 48 bits"
            );
        }
    }

    /// Boundary mask derived from `avg_size` (the Rabin divisor mask).
    pub fn mask(&self) -> u64 {
        (self.avg_size as u64) - 1
    }
}

/// The paper's CDC configuration: min 2 KiB, average 8 KiB, max 16 KiB,
/// 48-byte window, Rabin boundaries.
pub const DEFAULT_CDC: CdcParams = CdcParams {
    min_size: 2 * 1024,
    avg_size: 8 * 1024,
    max_size: 16 * 1024,
    window: 48,
    algorithm: CdcAlgorithm::Rabin,
    norm_level: DEFAULT_NORM_LEVEL,
};

/// Default FastCDC normalization level (the FastCDC paper's "NC 2").
pub const DEFAULT_NORM_LEVEL: u32 = 2;

/// The gear-hash configuration: identical size contract to
/// [`DEFAULT_CDC`], FastCDC boundaries with level-2 normalization.
pub const DEFAULT_FASTCDC: CdcParams =
    DEFAULT_CDC.with_algorithm(CdcAlgorithm::FastCdc);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_valid() {
        DEFAULT_CDC.validate();
        DEFAULT_FASTCDC.validate();
        assert_eq!(DEFAULT_CDC.mask(), 8191);
        assert_eq!(DEFAULT_CDC.algorithm, CdcAlgorithm::Rabin);
        assert_eq!(DEFAULT_FASTCDC.algorithm, CdcAlgorithm::FastCdc);
        assert_eq!(DEFAULT_FASTCDC.min_size, DEFAULT_CDC.min_size);
        assert_eq!(DEFAULT_FASTCDC.max_size, DEFAULT_CDC.max_size);
        assert_eq!(CdcParams::default(), DEFAULT_CDC);
    }

    #[test]
    fn algorithm_names_round_trip() {
        for a in CdcAlgorithm::ALL {
            assert_eq!(CdcAlgorithm::parse(a.name()), Some(a));
        }
        assert_eq!(CdcAlgorithm::parse("gear2000"), None);
        assert_eq!(CdcAlgorithm::parse(""), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_avg_rejected() {
        CdcParams { min_size: 1024, avg_size: 3000, max_size: 8192, ..DEFAULT_CDC }.validate();
    }

    #[test]
    #[should_panic(expected = "min <= avg <= max")]
    fn inverted_bounds_rejected() {
        CdcParams { min_size: 8192, avg_size: 4096, max_size: 16384, ..DEFAULT_CDC }.validate();
    }

    #[test]
    #[should_panic(expected = "window must fit")]
    fn oversized_window_rejected() {
        CdcParams { min_size: 32, avg_size: 64, max_size: 128, window: 48, ..DEFAULT_CDC }
            .validate();
    }

    #[test]
    #[should_panic(expected = "norm_level")]
    fn excessive_norm_level_rejected() {
        CdcParams { norm_level: 13, ..DEFAULT_FASTCDC }.validate();
    }

    #[test]
    fn norm_level_only_constrains_fastcdc() {
        // The same out-of-range level is fine under Rabin, which ignores it.
        CdcParams { norm_level: 13, ..DEFAULT_CDC }.validate();
    }
}
