//! Chunking parameters.
//!
//! The paper's evaluation fixes (§IV.A): 8 KiB static chunks; CDC with an
//! 8 KiB expected chunk size, 2 KiB minimum, 16 KiB maximum, a 48-byte
//! Rabin sliding window and 1-byte step. These are the workspace defaults;
//! the ablation benches sweep them.

/// Default static-chunking size: 8 KiB.
pub const DEFAULT_SC_SIZE: usize = 8 * 1024;

/// Content-defined chunking parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CdcParams {
    /// Minimum chunk size in bytes; no boundary is accepted before this.
    pub min_size: usize,
    /// Expected (average) chunk size in bytes. Must be a power of two: the
    /// boundary condition is `rolling_hash & (avg_size - 1) == magic`.
    pub avg_size: usize,
    /// Maximum chunk size; a boundary is forced here (the paper's
    /// Observation 3 notes these forced cuts hurt CDC on static data).
    pub max_size: usize,
    /// Rolling-hash window in bytes (the paper uses 48).
    pub window: usize,
}

impl CdcParams {
    /// Validates the parameter set, panicking with a description on misuse.
    pub fn validate(&self) {
        assert!(self.min_size > 0, "min_size must be positive");
        assert!(
            self.avg_size.is_power_of_two(),
            "avg_size must be a power of two (divisor-mask boundary test)"
        );
        assert!(
            self.min_size <= self.avg_size && self.avg_size <= self.max_size,
            "require min <= avg <= max"
        );
        assert!(self.window > 0, "window must be positive");
        assert!(
            self.window <= self.min_size,
            "window must fit inside the minimum chunk"
        );
    }

    /// Boundary mask derived from `avg_size`.
    pub fn mask(&self) -> u64 {
        (self.avg_size as u64) - 1
    }
}

/// The paper's CDC configuration: min 2 KiB, average 8 KiB, max 16 KiB,
/// 48-byte window.
pub const DEFAULT_CDC: CdcParams = CdcParams {
    min_size: 2 * 1024,
    avg_size: 8 * 1024,
    max_size: 16 * 1024,
    window: 48,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_valid() {
        DEFAULT_CDC.validate();
        assert_eq!(DEFAULT_CDC.mask(), 8191);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_avg_rejected() {
        CdcParams { min_size: 1024, avg_size: 3000, max_size: 8192, window: 48 }.validate();
    }

    #[test]
    #[should_panic(expected = "min <= avg <= max")]
    fn inverted_bounds_rejected() {
        CdcParams { min_size: 8192, avg_size: 4096, max_size: 16384, window: 48 }.validate();
    }

    #[test]
    #[should_panic(expected = "window must fit")]
    fn oversized_window_rejected() {
        CdcParams { min_size: 32, avg_size: 64, max_size: 128, window: 48 }.validate();
    }
}
