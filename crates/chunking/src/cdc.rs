//! Content Defined Chunking (CDC).
//!
//! Chunk boundaries are declared where the Rabin fingerprint of a sliding
//! window (48 bytes in the paper, 1-byte step) over the data matches a
//! divisor mask derived from the expected chunk size. Because the boundary
//! depends only on nearby *content*, an insertion or deletion re-aligns
//! within a chunk or two instead of shifting every subsequent boundary —
//! the boundary-shifting problem that defeats static chunking on
//! frequently-edited data (paper §II, Observation 3 discussion).
//!
//! The minimum chunk size suppresses pathological tiny chunks; the maximum
//! forces a cut, which is precisely why CDC *loses* to SC on static data:
//! long boundary-free stretches get cut at arbitrary max-size positions.

use crate::{CdcAlgorithm, CdcParams, ChunkSpan, Chunker, ChunkingMethod, DEFAULT_CDC};
use aadedupe_hashing::rabin::RollingHash;

/// Boundary magic value compared against the masked rolling hash. Nonzero
/// so that runs of zero bytes (whose window hash is 0) do not match at
/// every position.
const BOUNDARY_MAGIC: u64 = 0x1d3;

/// Content-defined chunker with Rabin-window boundary detection.
#[derive(Clone)]
pub struct CdcChunker {
    params: CdcParams,
    /// Prototype rolling hash; cloned per file so `chunk(&self)` stays
    /// shareable across threads. Cloning copies the precomputed tables
    /// (~4 KiB), negligible against per-file work.
    hasher: RollingHash,
}

impl Default for CdcChunker {
    fn default() -> Self {
        Self::new(DEFAULT_CDC)
    }
}

impl CdcChunker {
    /// Chunker with the given CDC parameters (validated on construction;
    /// the algorithm field is forced to [`CdcAlgorithm::Rabin`] so
    /// `params()` always tells the truth — this type *is* the Rabin
    /// implementation, whatever the caller's tag said).
    pub fn new(params: CdcParams) -> Self {
        let params = params.with_algorithm(CdcAlgorithm::Rabin);
        params.validate();
        CdcChunker {
            params,
            hasher: RollingHash::new(params.window),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &CdcParams {
        &self.params
    }

    /// One chunk decision over the stream remainder `data`, using (and
    /// resetting) the caller's rolling hash. Returns the cut length.
    fn cut_with(&self, rh: &mut RollingHash, data: &[u8]) -> usize {
        let CdcParams { min_size, max_size, window, .. } = self.params;
        let mask = self.params.mask();
        let magic = BOUNDARY_MAGIC & mask;
        if data.len() <= min_size {
            return data.len();
        }
        // Prime the window with the `window` bytes preceding the first
        // candidate cut at `min_size`.
        rh.reset();
        // aalint: allow(panic-path) -- validate() pins window <= min_size, and data.len() > min_size was checked above
        for &b in &data[min_size - window..min_size] {
            rh.push(b);
        }
        let upper = data.len().min(max_size);
        // Candidate cut lengths: min_size ..= upper. The window for a cut
        // of length L ends at byte L-1.
        if rh.value() & mask == magic {
            return min_size;
        }
        for len in min_size + 1..=upper {
            // aalint: allow(panic-path) -- len ranges over min_size+1..=upper with upper <= data.len()
            let incoming = data[len - 1];
            // aalint: allow(panic-path) -- len - 1 - window >= min_size - window >= 0 by validate()
            let outgoing = data[len - 1 - window];
            rh.roll(outgoing, incoming);
            if rh.value() & mask == magic {
                return len;
            }
        }
        upper
    }

    /// Length of the first chunk of `data`, treating `data` as the
    /// remainder of the stream: the returned cut is final given at least
    /// `max_size` bytes of lookahead (or end-of-stream). Mirrors
    /// [`FastCdcChunker::first_cut`](crate::FastCdcChunker::first_cut).
    pub fn first_cut(&self, data: &[u8]) -> usize {
        let mut rh = self.hasher.clone();
        self.cut_with(&mut rh, data)
    }

    /// Finds all chunk boundaries (cut positions, exclusive end offsets) in
    /// `data`. The final position `data.len()` is always the last cut.
    pub fn boundaries(&self, data: &[u8]) -> Vec<usize> {
        let mut cuts = Vec::new();
        let mut start = 0usize;
        let mut rh = self.hasher.clone();
        while start < data.len() {
            // aalint: allow(panic-path) -- start < data.len() is the loop guard
            let cut = start + self.cut_with(&mut rh, &data[start..]);
            cuts.push(cut);
            start = cut;
        }
        cuts
    }
}

impl Chunker for CdcChunker {
    fn chunk(&self, data: &[u8]) -> Vec<ChunkSpan> {
        if data.is_empty() {
            return Vec::new();
        }
        let cuts = self.boundaries(data);
        let mut spans = Vec::with_capacity(cuts.len());
        let mut prev = 0;
        for cut in cuts {
            spans.push(ChunkSpan {
                offset: prev,
                len: cut - prev,
                method: ChunkingMethod::Cdc,
            });
            prev = cut;
        }
        spans
    }

    fn method(&self) -> ChunkingMethod {
        ChunkingMethod::Cdc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans_cover;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        // xorshift64* stream; deterministic and cheap.
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x.wrapping_mul(0x2545F4914F6CDD1D) >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn covers_input_and_respects_bounds() {
        let chunker = CdcChunker::default();
        let data = pseudo_random(400_000, 7);
        let spans = chunker.chunk(&data);
        assert!(spans_cover(&data, &spans));
        let p = chunker.params();
        for (i, s) in spans.iter().enumerate() {
            assert!(s.len <= p.max_size, "span {i} too long: {}", s.len);
            if i + 1 < spans.len() {
                assert!(s.len >= p.min_size, "span {i} too short: {}", s.len);
            }
        }
    }

    #[test]
    fn average_size_in_expected_range() {
        let chunker = CdcChunker::default();
        let data = pseudo_random(4_000_000, 99);
        let spans = chunker.chunk(&data);
        let avg = data.len() / spans.len();
        // Min/max truncation shifts the mean; accept a generous band around
        // the nominal 8 KiB (analytically ~ min + avg*(1-e^-2)-ish).
        assert!(
            (4 * 1024..=14 * 1024).contains(&avg),
            "average chunk size {avg} outside expected band"
        );
    }

    #[test]
    fn deterministic() {
        let chunker = CdcChunker::default();
        let data = pseudo_random(300_000, 3);
        assert_eq!(chunker.boundaries(&data), chunker.boundaries(&data));
    }

    #[test]
    fn boundary_shift_resistance() {
        // Insert a byte near the front; boundaries must re-align so that
        // most chunk *contents* are preserved.
        let chunker = CdcChunker::default();
        let data = pseudo_random(1_000_000, 11);
        let mut edited = data.clone();
        edited.insert(1000, 0x42);

        let digest = |d: &[u8]| -> std::collections::HashSet<[u8; 20]> {
            chunker
                .chunk(d)
                .iter()
                .map(|s| aadedupe_hashing::sha1(s.slice(d)))
                .collect()
        };
        let a = digest(&data);
        let b = digest(&edited);
        let shared = a.intersection(&b).count();
        assert!(
            shared * 10 >= a.len() * 8,
            "only {shared}/{} chunks survived a 1-byte insert",
            a.len()
        );
    }

    #[test]
    fn static_chunking_would_not_survive_the_same_edit() {
        // Contrast test for Observation 3's discussion: SC loses everything.
        use crate::ScChunker;
        let data = pseudo_random(1_000_000, 11);
        let mut edited = data.clone();
        edited.insert(0, 0x42);
        let sc = ScChunker::new(8192);
        let digest = |d: &[u8]| -> std::collections::HashSet<[u8; 20]> {
            sc.chunk(d).iter().map(|s| aadedupe_hashing::sha1(s.slice(d))).collect()
        };
        let shared = digest(&data).intersection(&digest(&edited)).count();
        assert!(shared <= 1, "SC unexpectedly preserved {shared} chunks");
    }

    #[test]
    fn tiny_inputs() {
        let chunker = CdcChunker::default();
        for n in [0usize, 1, 100, 2047, 2048, 2049] {
            let data = pseudo_random(n, 5);
            let spans = chunker.chunk(&data);
            assert!(spans_cover(&data, &spans), "n={n}");
            if n > 0 && n <= chunker.params().min_size {
                assert_eq!(spans.len(), 1, "n={n} should be a single chunk");
            }
        }
    }

    #[test]
    fn zero_filled_data_forces_max_cuts() {
        // All-zero windows hash to 0 != magic, so every chunk is forced at
        // max_size — the degenerate case the magic constant guards.
        let chunker = CdcChunker::default();
        let data = vec![0u8; 100_000];
        let spans = chunker.chunk(&data);
        for s in &spans[..spans.len() - 1] {
            assert_eq!(s.len, chunker.params().max_size);
        }
    }

    #[test]
    fn custom_params() {
        let p = CdcParams { min_size: 256, avg_size: 1024, max_size: 4096, window: 32, ..DEFAULT_CDC };
        let chunker = CdcChunker::new(p);
        let data = pseudo_random(200_000, 21);
        let spans = chunker.chunk(&data);
        assert!(spans_cover(&data, &spans));
        let avg = data.len() / spans.len();
        assert!((512..=2048).contains(&avg), "avg {avg}");
    }

    #[test]
    fn boundaries_end_with_len() {
        let chunker = CdcChunker::default();
        let data = pseudo_random(50_000, 13);
        let cuts = chunker.boundaries(&data);
        assert_eq!(*cuts.last().unwrap(), data.len());
        // Strictly increasing.
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
    }
}
