//! Golden vectors: the gear table, the spread masks and the cut points
//! of both CDC algorithms on a fixed seeded buffer, pinned to a
//! checked-in fixture.
//!
//! Cut positions are on-disk-stability-adjacent: a silent change to the
//! gear table, the mask layout or the scan loop would re-chunk every
//! byte of every existing repository on the next backup — dedup against
//! old sessions would drop to zero without any test failing. This file
//! makes such a change loud.
//!
//! If a change is *intentional*, regenerate the fixture with
//! `AA_BLESS=1 cargo test -p aadedupe-chunking --test golden_fastcdc`
//! and justify the re-chunking cost in the commit.

use std::fmt::Write as _;

use aadedupe_chunking::gear::{spread_mask, GEAR, GEAR_SEED};
use aadedupe_chunking::{CdcAlgorithm, CdcChunker, ContentChunker, DEFAULT_CDC};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden_cuts.txt");

/// Fixed pseudo-random buffer: xorshift64, seed pinned forever.
fn golden_buffer() -> Vec<u8> {
    let mut x = 0xA11C_E5EEDu64;
    (0..256 * 1024)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 32) as u8
        })
        .collect()
}

/// Canonical rendering of everything pinned.
fn render() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "gear_seed {GEAR_SEED:#018x}");
    // Spot entries plus a whole-table fold: any single-entry change
    // flips the fold even if it misses the spot checks.
    for i in [0usize, 1, 127, 128, 255] {
        let _ = writeln!(out, "gear[{i}] {:#018x}", GEAR[i]);
    }
    let fold = GEAR.iter().fold(0u64, |acc, &g| acc.rotate_left(1) ^ g);
    let _ = writeln!(out, "gear_fold {fold:#018x}");
    for bits in [11u32, 13, 15] {
        let _ = writeln!(out, "spread_mask({bits}) {:#018x}", spread_mask(bits));
    }
    let data = golden_buffer();
    let rabin = CdcChunker::default().boundaries(&data);
    let fast =
        ContentChunker::new(DEFAULT_CDC.with_algorithm(CdcAlgorithm::FastCdc)).boundaries(&data);
    let join = |cuts: &[usize]| {
        cuts.iter().map(ToString::to_string).collect::<Vec<_>>().join(",")
    };
    let _ = writeln!(out, "rabin_cuts {}", join(&rabin));
    let _ = writeln!(out, "fastcdc_cuts {}", join(&fast));
    out
}

#[test]
fn cut_points_and_gear_table_match_the_fixture() {
    let rendered = render();
    if std::env::var("AA_BLESS").is_ok() {
        std::fs::write(FIXTURE, &rendered).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing — run with AA_BLESS=1 to generate");
    assert_eq!(
        rendered, expected,
        "golden vectors drifted: the gear table, masks or scan loop changed. \
         If intentional, re-bless with AA_BLESS=1 and justify the repository \
         re-chunking cost."
    );
}

#[test]
fn fastcdc_small_region_cuts_are_rarer_than_large_region_cuts() {
    // Structural sanity on the same golden buffer: with two-tier masks,
    // cuts before the target size must exist but be the minority —
    // normalization pushes most cuts past avg_size.
    let data = golden_buffer();
    let chunker = ContentChunker::new(DEFAULT_CDC.with_algorithm(CdcAlgorithm::FastCdc));
    let cuts = chunker.boundaries(&data);
    let mut prev = 0usize;
    let (mut small, mut large) = (0usize, 0usize);
    for &cut in &cuts[..cuts.len() - 1] {
        let len = cut - prev;
        if len < chunker.params().avg_size {
            small += 1;
        } else {
            large += 1;
        }
        prev = cut;
    }
    assert!(large > small, "normalization inverted: {small} small vs {large} large");
}
