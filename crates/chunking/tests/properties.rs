//! Property-based tests for the chunking substrate.
//!
//! The CDC invariants run over *both* boundary algorithms (Rabin and
//! gear-hash FastCDC): spans contiguous/non-empty/exactly covering,
//! interior chunks within `[min, max]`, cut-point determinism across
//! repeated calls, and — via `stream_reslicing_is_invisible` — across
//! arbitrary buffer re-slicing at `StreamChunker` refill boundaries.

use proptest::prelude::*;

use aadedupe_chunking::{
    spans_cover, CdcAlgorithm, CdcChunker, CdcParams, Chunker, ChunkingMethod, ContentChunker,
    ScChunker, StreamChunker, WfcChunker, DEFAULT_CDC,
};

/// Arbitrary CDC parameter sets (valid by construction), covering both
/// boundary algorithms and every normalization level.
fn arb_cdc_params() -> impl Strategy<Value = CdcParams> {
    (6u32..9, 1u32..3, 1u32..3, 8usize..49, 0usize..2, 0u32..3).prop_map(
        |(avg_pow, min_div, max_mul, window, alg, norm_level)| {
            let avg = 1usize << (avg_pow + 4); // 1 KiB .. 4 KiB
            CdcParams {
                min_size: (avg >> min_div).max(window),
                avg_size: avg,
                max_size: avg << max_mul,
                window,
                algorithm: CdcAlgorithm::ALL[alg],
                norm_level,
            }
        },
    )
}

/// A reader that hands out the underlying bytes in arbitrary-sized reads
/// driven by a cycled pattern — exercises every buffer-seam alignment the
/// streaming chunker can encounter.
struct ChoppyReader<'a> {
    data: &'a [u8],
    pos: usize,
    pattern: Vec<usize>,
    next: usize,
}

impl std::io::Read for ChoppyReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.data.len() {
            return Ok(0);
        }
        let step = self.pattern[self.next % self.pattern.len()].max(1);
        self.next += 1;
        let n = step.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

proptest! {
    /// Every chunker tiles every input exactly.
    #[test]
    fn tiling(data in proptest::collection::vec(any::<u8>(), 0..60_000)) {
        let content_rabin = ContentChunker::new(DEFAULT_CDC);
        let content_fast = ContentChunker::new(DEFAULT_CDC.with_algorithm(CdcAlgorithm::FastCdc));
        for c in [
            &WfcChunker::new() as &dyn Chunker,
            &ScChunker::new(4096),
            &content_rabin,
            &content_fast,
        ] {
            let spans = c.chunk(&data);
            prop_assert!(spans_cover(&data, &spans), "{}", c.method());
            for s in &spans {
                prop_assert_eq!(s.method, c.method());
            }
        }
    }

    /// SC chunk counts and sizes are exactly determined by the length.
    #[test]
    fn sc_arithmetic(len in 0usize..100_000, size in 1usize..10_000) {
        let data = vec![0u8; len];
        let spans = ScChunker::new(size).chunk(&data);
        prop_assert_eq!(spans.len(), len.div_ceil(size));
        for (i, s) in spans.iter().enumerate() {
            if i + 1 < spans.len() {
                prop_assert_eq!(s.len, size);
            } else {
                prop_assert_eq!(s.len, len - i * size);
            }
        }
    }

    /// Both CDC algorithms respect bounds for arbitrary parameter sets and
    /// inputs, and are deterministic across repeated calls.
    #[test]
    fn cdc_bounds_and_determinism(
        params in arb_cdc_params(),
        data in proptest::collection::vec(any::<u8>(), 0..80_000),
    ) {
        let c = ContentChunker::new(params);
        let spans = c.chunk(&data);
        prop_assert!(spans_cover(&data, &spans));
        for (i, s) in spans.iter().enumerate() {
            prop_assert!(s.len <= params.max_size, "{} span {} length {}", params.algorithm, i, s.len);
            if i + 1 < spans.len() {
                prop_assert!(s.len >= params.min_size, "{} span {} length {}", params.algorithm, i, s.len);
            }
        }
        prop_assert_eq!(c.chunk(&data), spans);
    }

    /// Cut points are invariant under how the stream buffer happens to be
    /// re-sliced: chunking via `StreamChunker` with adversarial read sizes
    /// must produce exactly the batch spans, for both algorithms.
    #[test]
    fn stream_reslicing_is_invisible(
        params in arb_cdc_params(),
        data in proptest::collection::vec(any::<u8>(), 0..60_000),
        pattern in proptest::collection::vec(1usize..30_000, 1..8),
    ) {
        let c = ContentChunker::new(params);
        let batch: Vec<usize> = c.chunk(&data).iter().map(|s| s.len).collect();
        let reader = ChoppyReader { data: &data, pos: 0, pattern, next: 0 };
        let mut reassembled = Vec::new();
        let mut lens = Vec::new();
        for chunk in StreamChunker::content(reader, ContentChunker::new(params)) {
            prop_assert_eq!(chunk.offset as usize, reassembled.len());
            reassembled.extend_from_slice(&chunk.data);
            lens.push(chunk.data.len());
        }
        prop_assert_eq!(reassembled, data);
        prop_assert_eq!(lens, batch, "{}", params.algorithm);
    }

    /// Content-defined boundaries are *local*: bytes far after an edit do
    /// not change earlier boundaries — for either algorithm.
    #[test]
    fn cdc_boundaries_are_prefix_stable(
        alg in 0usize..2,
        prefix in proptest::collection::vec(any::<u8>(), 20_000..40_000),
        suffix_a in proptest::collection::vec(any::<u8>(), 1000..4000),
        suffix_b in proptest::collection::vec(any::<u8>(), 1000..4000),
    ) {
        let c = ContentChunker::new(DEFAULT_CDC.with_algorithm(CdcAlgorithm::ALL[alg]));
        let mut a = prefix.clone();
        a.extend_from_slice(&suffix_a);
        let mut b = prefix.clone();
        b.extend_from_slice(&suffix_b);
        let cuts_a = c.boundaries(&a);
        let cuts_b = c.boundaries(&b);
        // All cuts strictly inside the shared prefix (with max_size slack
        // before the divergence point) must be identical.
        let safe = prefix.len().saturating_sub(c.params().max_size);
        let pa: Vec<_> = cuts_a.iter().filter(|&&x| x < safe).collect();
        let pb: Vec<_> = cuts_b.iter().filter(|&&x| x < safe).collect();
        prop_assert_eq!(pa, pb);
    }

    /// A prefix insertion preserves most CDC chunk *contents* (the
    /// boundary-shift resistance SC lacks), under both algorithms.
    /// Requires content with entropy: constant/low-entropy data has no
    /// content anchors, so CDC lawfully degrades to position-dependent
    /// max-size cuts there — we generate from a seeded xorshift stream
    /// rather than raw arbitrary vectors.
    #[test]
    fn cdc_survives_prefix_insertion(
        alg in 0usize..2,
        seed in any::<u64>(),
        len in 250_000usize..400_000,
        inserted in any::<u8>(),
    ) {
        // len must be large (~30+ chunks): short inputs can consist
        // entirely of forced max-size cuts (probability ~e^-(len/8192)),
        // where re-synchronisation after the insertion never happens and
        // the property legitimately fails.
        let mut x = seed | 1;
        let data: Vec<u8> = (0..len)
            .map(|_| { x ^= x << 13; x ^= x >> 7; x ^= x << 17; (x >> 32) as u8 })
            .collect();
        let c = ContentChunker::new(DEFAULT_CDC.with_algorithm(CdcAlgorithm::ALL[alg]));
        let mut edited = Vec::with_capacity(data.len() + 1);
        edited.push(inserted);
        edited.extend_from_slice(&data);

        let digest = |d: &[u8]| -> std::collections::HashSet<[u8; 20]> {
            c.chunk(d).iter().map(|s| aadedupe_hashing::sha1(s.slice(d))).collect()
        };
        let a = digest(&data);
        let b = digest(&edited);
        let shared = a.intersection(&b).count();
        // At least half the chunks must survive (usually ~all but one).
        prop_assert!(shared * 2 >= a.len(), "{}: only {}/{} chunks survived",
            c.params().algorithm, shared, a.len());
    }

    /// Method tags round-trip for all three methods.
    #[test]
    fn method_tags(_x in any::<u8>()) {
        for m in [ChunkingMethod::Wfc, ChunkingMethod::Sc, ChunkingMethod::Cdc] {
            prop_assert_eq!(ChunkingMethod::from_tag(m.tag()), Some(m));
        }
    }

    /// The two algorithms agree on the *contract*, not the cut positions:
    /// on sizable high-entropy input their boundary sets differ (they are
    /// different hash families), while both still tile the input.
    #[test]
    fn algorithms_are_distinct_hash_families(seed in any::<u64>()) {
        let mut x = seed | 1;
        let data: Vec<u8> = (0..200_000)
            .map(|_| { x ^= x << 13; x ^= x >> 7; x ^= x << 17; (x >> 32) as u8 })
            .collect();
        let rabin = CdcChunker::default().boundaries(&data);
        let fast = ContentChunker::new(DEFAULT_CDC.with_algorithm(CdcAlgorithm::FastCdc))
            .boundaries(&data);
        prop_assert_eq!(rabin.last().copied(), Some(data.len()));
        prop_assert_eq!(fast.last().copied(), Some(data.len()));
        prop_assert_ne!(rabin, fast);
    }
}
