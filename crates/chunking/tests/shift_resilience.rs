//! Shift-resilience regression tests: the reason CDC exists.
//!
//! Prepend, insert and delete edits shift every downstream byte offset;
//! a content-defined chunker must re-synchronise within a bounded window
//! so the changed-chunk fraction stays small. Rabin's resilience is the
//! established baseline; these tests pin FastCDC to the same contract so
//! a regression in the gear scan (e.g. a mask that accidentally couples
//! to absolute position) cannot land silently.

use std::collections::HashSet;

use aadedupe_chunking::{CdcAlgorithm, Chunker, ContentChunker, DEFAULT_CDC};

fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 32) as u8
        })
        .collect()
}

fn digests(chunker: &ContentChunker, data: &[u8]) -> HashSet<[u8; 20]> {
    chunker.chunk(data).iter().map(|s| aadedupe_hashing::sha1(s.slice(data))).collect()
}

/// Fraction of original chunks lost after an edit, per algorithm.
fn churn(algorithm: CdcAlgorithm, data: &[u8], edited: &[u8]) -> (usize, usize) {
    let chunker = ContentChunker::new(DEFAULT_CDC.with_algorithm(algorithm));
    let before = digests(&chunker, data);
    let after = digests(&chunker, edited);
    (before.difference(&after).count(), before.len())
}

/// Every edit in this suite may dirty the chunk it touches plus a short
/// re-synchronisation tail; with ~250 chunks per buffer, losing more
/// than 8 means boundaries stopped being content-defined.
const MAX_LOST: usize = 8;

#[test]
fn prepend_shifts_every_offset_but_almost_no_chunks() {
    let data = pseudo_random(2 << 20, 3);
    for k in [1usize, 7, 100] {
        let mut edited = pseudo_random(k, 77);
        edited.extend_from_slice(&data);
        for algorithm in CdcAlgorithm::ALL {
            let (lost, total) = churn(algorithm, &data, &edited);
            assert!(
                lost <= MAX_LOST,
                "{algorithm}: prepend {k}B lost {lost}/{total} chunks"
            );
        }
    }
}

#[test]
fn mid_stream_insert_is_localized() {
    let data = pseudo_random(2 << 20, 5);
    for (at, k) in [(100_000usize, 1usize), (1_000_000, 64), (1_900_000, 4096)] {
        let mut edited = data.clone();
        let patch = pseudo_random(k, 123);
        edited.splice(at..at, patch);
        for algorithm in CdcAlgorithm::ALL {
            let (lost, total) = churn(algorithm, &data, &edited);
            assert!(
                lost <= MAX_LOST,
                "{algorithm}: insert {k}B@{at} lost {lost}/{total} chunks"
            );
        }
    }
}

#[test]
fn mid_stream_delete_is_localized() {
    let data = pseudo_random(2 << 20, 9);
    for (at, k) in [(50_000usize, 1usize), (700_000, 512), (1_500_000, 10_000)] {
        let mut edited = data.clone();
        edited.drain(at..at + k);
        for algorithm in CdcAlgorithm::ALL {
            let (lost, total) = churn(algorithm, &data, &edited);
            assert!(
                lost <= MAX_LOST,
                "{algorithm}: delete {k}B@{at} lost {lost}/{total} chunks"
            );
        }
    }
}

#[test]
fn scattered_multi_edit_churn_is_proportional_to_edit_count() {
    // Five edits spread across the buffer: churn must scale with the
    // number of edit sites, not with file size — no cascade between
    // sites.
    let data = pseudo_random(4 << 20, 13);
    let sites = [300_000usize, 1_200_000, 2_100_000, 3_000_000, 3_900_000];
    let mut edited = data.clone();
    for (i, &at) in sites.iter().rev().enumerate() {
        edited.splice(at..at, pseudo_random(16 + i, 55 + i as u64));
    }
    for algorithm in CdcAlgorithm::ALL {
        let (lost, total) = churn(algorithm, &data, &edited);
        assert!(
            lost <= sites.len() * MAX_LOST,
            "{algorithm}: {} edits lost {lost}/{total} chunks",
            sites.len()
        );
    }
}

#[test]
fn fastcdc_resynchronises_as_well_as_the_rabin_baseline() {
    // Head-to-head on the identical edit: FastCDC's lost-chunk count may
    // not exceed Rabin's by more than the small fixed margin that
    // different cut densities explain. This is the regression tripwire:
    // normalization must not have traded resilience for speed.
    let data = pseudo_random(4 << 20, 17);
    let mut edited = data.clone();
    edited.splice(2_000_000..2_000_000, b"edit".iter().copied());
    let (rabin_lost, _) = churn(CdcAlgorithm::Rabin, &data, &edited);
    let (fast_lost, total) = churn(CdcAlgorithm::FastCdc, &data, &edited);
    assert!(
        fast_lost <= rabin_lost + 4,
        "fastcdc lost {fast_lost}/{total}, rabin baseline lost {rabin_lost}"
    );
}
