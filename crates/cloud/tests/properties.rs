//! Property-based tests for the cloud simulator.

use proptest::prelude::*;

use aadedupe_cloud::{CloudSim, ObjectStore, PriceModel, WanModel};

#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    Get(u8),
    Delete(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..256))
                .prop_map(|(k, v)| Op::Put(k, v)),
            any::<u8>().prop_map(Op::Get),
            any::<u8>().prop_map(Op::Delete),
        ],
        0..100,
    )
}

proptest! {
    /// The object store behaves like a HashMap with exact accounting.
    #[test]
    fn store_matches_reference_model(ops in arb_ops()) {
        let store = ObjectStore::new();
        let mut model: std::collections::HashMap<u8, Vec<u8>> = Default::default();
        let (mut puts, mut gets, mut dels, mut bytes_in, mut bytes_out) = (0u64, 0u64, 0u64, 0u64, 0u64);
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    puts += 1;
                    bytes_in += v.len() as u64;
                    store.put(&format!("k/{k}"), v.clone()).unwrap();
                    model.insert(k, v);
                }
                Op::Get(k) => {
                    gets += 1;
                    let got = store.get(&format!("k/{k}")).unwrap();
                    if let Some(v) = &got {
                        bytes_out += v.len() as u64;
                    }
                    prop_assert_eq!(got.as_ref(), model.get(&k));
                }
                Op::Delete(k) => {
                    dels += 1;
                    prop_assert_eq!(store.delete(&format!("k/{k}")).unwrap(), model.remove(&k).is_some());
                }
            }
        }
        let s = store.stats();
        prop_assert_eq!(s.put_requests, puts);
        prop_assert_eq!(s.get_requests, gets);
        prop_assert_eq!(s.delete_requests, dels);
        prop_assert_eq!(s.bytes_in, bytes_in);
        prop_assert_eq!(s.bytes_out, bytes_out);
        prop_assert_eq!(store.object_count(), model.len());
        prop_assert_eq!(store.stored_bytes(), model.values().map(|v| v.len() as u64).sum::<u64>());
    }

    /// Listing returns exactly the prefix-matching keys, sorted.
    #[test]
    fn listing_sorted_and_filtered(keys in proptest::collection::vec("[a-c]/[a-z]{1,4}", 0..30)) {
        let store = ObjectStore::new();
        for k in &keys {
            store.put(k, vec![]).unwrap();
        }
        for prefix in ["a/", "b/", "c/", ""] {
            let listed = store.list(prefix);
            prop_assert!(listed.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            let mut expected: Vec<String> = keys.iter()
                .filter(|k| k.starts_with(prefix)).cloned().collect();
            expected.sort();
            expected.dedup();
            prop_assert_eq!(listed, expected);
        }
    }

    /// WAN transfer time is additive and monotone in bytes.
    #[test]
    fn wan_time_monotone(a in 0u64..1 << 32, b in 0u64..1 << 32) {
        let wan = WanModel::paper_defaults();
        prop_assert!(wan.upload_time(a + b) >= wan.upload_time(a));
        // One big transfer beats two small ones (per-request overhead).
        let combined = wan.upload_time(a + b);
        let split = wan.upload_time(a) + wan.upload_time(b);
        prop_assert!(combined <= split);
        prop_assert!(wan.download_time(a) <= wan.upload_time(a), "download link is faster");
    }

    /// Cost model: linear in each component, zero at zero.
    #[test]
    fn cost_linear(stored in 0u64..1 << 40, uploaded in 0u64..1 << 40, reqs in 0u64..1 << 20) {
        let p = PriceModel::s3_april_2011();
        let c1 = p.monthly_cost(stored, uploaded, reqs);
        let c2 = p.monthly_cost(stored * 2, uploaded * 2, reqs * 2);
        prop_assert!((c2.total() - 2.0 * c1.total()).abs() < 1e-6 * c1.total().max(1.0));
        prop_assert_eq!(p.monthly_cost(0, 0, 0).total(), 0.0);
    }

    /// CloudSim clock advances by exactly the sum of transfer times.
    #[test]
    fn clock_is_sum_of_transfers(payloads in proptest::collection::vec(0usize..200_000, 1..10)) {
        let cloud = CloudSim::with_paper_defaults();
        let mut expected = std::time::Duration::ZERO;
        for (i, n) in payloads.iter().enumerate() {
            expected += cloud.put(&format!("o/{i}"), vec![0u8; *n]).unwrap();
        }
        prop_assert_eq!(cloud.elapsed(), expected);
    }
}
