//! WAN link model.
//!
//! The paper's testbed reached "about 500 KB/s average upload speed and
//! 1 MB/s average download speed with the AirPort Extreme 802.11g wireless
//! card" (§IV.A). Backup windows and transfer times in the evaluation are
//! derived from these rates; this model reproduces them deterministically,
//! adding an optional per-request overhead that captures why small
//! transfers are inefficient over WAN ("the overhead of lower layer
//! protocols can be high for small data transfers", §II.B).

use std::time::Duration;

/// Deterministic WAN link: fixed up/down bandwidth plus per-request
/// overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WanModel {
    /// Upload bandwidth, bytes/second.
    pub upload_bps: f64,
    /// Download bandwidth, bytes/second.
    pub download_bps: f64,
    /// Fixed per-request overhead (connection setup, request framing,
    /// protocol round trips).
    pub per_request_overhead: Duration,
}

impl WanModel {
    /// The paper's link: 500 KB/s up, 1 MB/s down, 30 ms per request.
    pub const fn paper_defaults() -> Self {
        WanModel {
            upload_bps: 500.0 * 1024.0,
            download_bps: 1024.0 * 1024.0,
            per_request_overhead: Duration::from_millis(30),
        }
    }

    /// An idealised link with no per-request overhead (for analytic-model
    /// cross-checks).
    pub const fn ideal(upload_bps: f64, download_bps: f64) -> Self {
        WanModel {
            upload_bps,
            download_bps,
            per_request_overhead: Duration::ZERO,
        }
    }

    /// Time to upload `bytes` in one request.
    pub fn upload_time(&self, bytes: u64) -> Duration {
        self.per_request_overhead + Duration::from_secs_f64(bytes as f64 / self.upload_bps)
    }

    /// Time to download `bytes` in one request.
    pub fn download_time(&self, bytes: u64) -> Duration {
        self.per_request_overhead + Duration::from_secs_f64(bytes as f64 / self.download_bps)
    }

    /// Effective upload throughput (bytes/s) for a workload of `requests`
    /// requests totalling `bytes` — shows the small-transfer penalty.
    pub fn effective_upload_bps(&self, bytes: u64, requests: u64) -> f64 {
        let total = self.per_request_overhead.as_secs_f64() * requests as f64
            + bytes as f64 / self.upload_bps;
        if total == 0.0 {
            0.0
        } else {
            bytes as f64 / total
        }
    }
}

impl Default for WanModel {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rates() {
        let wan = WanModel::paper_defaults();
        // 5 MB upload at 500 KB/s ≈ 10 s (+30 ms overhead).
        let t = wan.upload_time(5 * 500 * 1024);
        assert!((t.as_secs_f64() - 5.03).abs() < 1e-9, "{t:?}");
        // Download is twice as fast.
        let d = wan.download_time(1024 * 1024);
        assert!((d.as_secs_f64() - 1.03).abs() < 1e-9, "{d:?}");
    }

    #[test]
    fn small_transfers_are_inefficient() {
        let wan = WanModel::paper_defaults();
        let total: u64 = 1 << 20; // 1 MiB
        // One 1 MiB request vs 256 4 KiB requests.
        let one = wan.effective_upload_bps(total, 1);
        let many = wan.effective_upload_bps(total, 256);
        assert!(one > 2.0 * many, "aggregation should at least double throughput: {one} vs {many}");
    }

    #[test]
    fn ideal_link_has_no_overhead() {
        let wan = WanModel::ideal(1000.0, 2000.0);
        assert_eq!(wan.upload_time(1000), Duration::from_secs(1));
        assert_eq!(wan.download_time(1000), Duration::from_secs_f64(0.5));
        assert_eq!(wan.upload_time(0), Duration::ZERO);
    }

    #[test]
    fn zero_bytes_costs_only_overhead() {
        let wan = WanModel::paper_defaults();
        assert_eq!(wan.upload_time(0), Duration::from_millis(30));
    }
}
