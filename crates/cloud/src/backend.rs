//! The object-store backend abstraction.
//!
//! [`CloudSim`](crate::CloudSim) models WAN and pricing identically for
//! any backend; the backend decides where object bytes live. Three are
//! provided: the in-memory [`ObjectStore`](crate::ObjectStore) (fast,
//! used by tests and the evaluation harness), the filesystem-backed
//! [`FsObjectStore`](crate::FsObjectStore) (durable, used by the
//! `aabackup` CLI), and the [`FaultInjectingBackend`](crate::FaultInjectingBackend)
//! wrapper that makes any of them fail on a deterministic schedule.
//!
//! Transfers can fail — a real S3 endpoint over a WAN drops connections,
//! a local disk fills up — so `put`/`get`/`delete` are fallible and every
//! error carries a [`BackendError::transient`] classification that the
//! engine's retry policy consults.

use std::fmt;

use crate::objectstore::ObjectStoreStats;

/// The backend operation an error arose from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendOp {
    /// Storing an object.
    Put,
    /// Fetching an object.
    Get,
    /// Deleting an object.
    Delete,
}

impl BackendOp {
    /// Stable lowercase name.
    pub const fn name(self) -> &'static str {
        match self {
            BackendOp::Put => "put",
            BackendOp::Get => "get",
            BackendOp::Delete => "delete",
        }
    }
}

/// A failed backend operation.
///
/// `transient: true` means a retry may succeed (timeout, interrupted
/// transfer); `false` means retrying is pointless (permission denied,
/// invalid key, crash-stopped backend).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendError {
    /// Which operation failed.
    pub op: BackendOp,
    /// The object key it targeted.
    pub key: String,
    /// Whether a retry may succeed.
    pub transient: bool,
    /// Human-readable cause.
    pub message: String,
}

impl BackendError {
    /// An error worth retrying.
    pub fn transient(op: BackendOp, key: &str, message: impl Into<String>) -> Self {
        BackendError { op, key: key.to_owned(), transient: true, message: message.into() }
    }

    /// An error retrying cannot fix.
    pub fn permanent(op: BackendOp, key: &str, message: impl Into<String>) -> Self {
        BackendError { op, key: key.to_owned(), transient: false, message: message.into() }
    }

    /// Classifies an I/O error: interrupted/timed-out transfers are worth
    /// retrying, everything else (permissions, missing directories, disk
    /// full) is not.
    pub fn from_io(op: BackendOp, key: &str, e: &std::io::Error) -> Self {
        use std::io::ErrorKind;
        let transient = matches!(
            e.kind(),
            ErrorKind::Interrupted | ErrorKind::TimedOut | ErrorKind::WouldBlock
        );
        BackendError { op, key: key.to_owned(), transient, message: e.to_string() }
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} failed ({}): {}",
            self.op.name(),
            self.key,
            if self.transient { "transient" } else { "permanent" },
            self.message
        )
    }
}

impl std::error::Error for BackendError {}

/// A flat key → bytes object namespace with request/byte accounting.
///
/// Implementations must be thread-safe; accounting counters cover every
/// *attempted* operation including misses and failures (matching how a
/// cloud provider bills requests).
pub trait ObjectBackend: Send + Sync {
    /// Stores `bytes` under `key`, replacing any previous object. An `Err`
    /// means the object was **not** durably stored (a partially written
    /// object must never become visible under `key`).
    fn put(&self, key: &str, bytes: Vec<u8>) -> Result<(), BackendError>;

    /// Fetches the object at `key`. `Ok(None)` is a clean miss; `Err` is a
    /// failed transfer whose outcome is unknown.
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, BackendError>;

    /// Deletes the object at `key`; returns whether it existed.
    fn delete(&self, key: &str) -> Result<bool, BackendError>;

    /// True if an object exists at `key` (not counted as a request).
    fn contains(&self, key: &str) -> bool;

    /// Keys starting with `prefix`, in lexicographic order.
    fn list(&self, prefix: &str) -> Vec<String>;

    /// Number of stored objects.
    fn object_count(&self) -> usize;

    /// Total bytes currently stored.
    fn stored_bytes(&self) -> u64;

    /// Accounting snapshot.
    fn stats(&self) -> ObjectStoreStats;

    /// Corrupts one byte of the object at `key` (failure injection);
    /// returns false if the object is missing or empty.
    fn corrupt(&self, key: &str, byte_index: usize) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_op_key_and_classification() {
        let e = BackendError::transient(BackendOp::Put, "c/1", "timeout");
        assert_eq!(e.to_string(), "put c/1 failed (transient): timeout");
        let e = BackendError::permanent(BackendOp::Get, "m/0", "gone");
        assert_eq!(e.to_string(), "get m/0 failed (permanent): gone");
    }

    #[test]
    fn io_classification() {
        use std::io::{Error, ErrorKind};
        let t = BackendError::from_io(BackendOp::Put, "k", &Error::new(ErrorKind::TimedOut, "t"));
        assert!(t.transient);
        let p =
            BackendError::from_io(BackendOp::Put, "k", &Error::new(ErrorKind::PermissionDenied, "p"));
        assert!(!p.transient);
    }
}
