//! The object-store backend abstraction.
//!
//! [`CloudSim`](crate::CloudSim) models WAN and pricing identically for
//! any backend; the backend decides where object bytes live. Two are
//! provided: the in-memory [`ObjectStore`](crate::ObjectStore) (fast,
//! used by tests and the evaluation harness) and the filesystem-backed
//! [`FsObjectStore`](crate::FsObjectStore) (durable, used by the
//! `aabackup` CLI).

use crate::objectstore::ObjectStoreStats;

/// A flat key → bytes object namespace with request/byte accounting.
///
/// Implementations must be thread-safe; accounting counters cover every
/// operation including misses.
pub trait ObjectBackend: Send + Sync {
    /// Stores `bytes` under `key`, replacing any previous object.
    fn put(&self, key: &str, bytes: Vec<u8>);

    /// Fetches the object at `key`.
    fn get(&self, key: &str) -> Option<Vec<u8>>;

    /// Deletes the object at `key`; returns whether it existed.
    fn delete(&self, key: &str) -> bool;

    /// True if an object exists at `key` (not counted as a request).
    fn contains(&self, key: &str) -> bool;

    /// Keys starting with `prefix`, in lexicographic order.
    fn list(&self, prefix: &str) -> Vec<String>;

    /// Number of stored objects.
    fn object_count(&self) -> usize;

    /// Total bytes currently stored.
    fn stored_bytes(&self) -> u64;

    /// Accounting snapshot.
    fn stats(&self) -> ObjectStoreStats;

    /// Corrupts one byte of the object at `key` (failure injection);
    /// returns false if the object is missing or empty.
    fn corrupt(&self, key: &str, byte_index: usize) -> bool;
}
