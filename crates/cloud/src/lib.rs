#![forbid(unsafe_code)]
//! Simulated cloud backend for AA-Dedupe.
//!
//! The paper evaluates against Amazon S3 over a home 802.11g uplink. This
//! crate substitutes a deterministic simulator with the same observable
//! quantities (see DESIGN.md §5):
//!
//! * [`ObjectStore`] — flat key→bytes namespace with request/byte
//!   accounting (the S3 stand-in).
//! * [`WanModel`] — 500 KB/s up / 1 MB/s down link with per-request
//!   overhead; produces the transfer times that dominate backup windows.
//! * [`PriceModel`] — S3's April 2011 tariff and the paper's
//!   `CC = DS/DR·(SP+TP) + OC·OP` cost model.
//! * [`CloudSim`] — the three combined: every `put`/`get` moves simulated
//!   time and accumulates billable usage.

pub mod backend;
pub mod fault;
pub mod fsstore;
pub mod objectstore;
pub mod pricing;
pub mod wan;

pub use backend::{BackendError, BackendOp, ObjectBackend};
pub use fault::{FaultInjectingBackend, FaultPlan, FaultRule};
pub use fsstore::FsObjectStore;
pub use objectstore::{ObjectStore, ObjectStoreStats};
pub use pricing::{CostBreakdown, PriceModel, BYTES_PER_GB};
pub use wan::WanModel;

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// A cloud endpoint: object backend + WAN + pricing, with simulated-time
/// accounting. Cheap to clone (shared state).
#[derive(Clone)]
pub struct CloudSim {
    store: Arc<dyn ObjectBackend>,
    wan: WanModel,
    prices: PriceModel,
    clock: Arc<Mutex<Duration>>,
}

impl CloudSim {
    /// Simulator with explicit models over an in-memory backend.
    pub fn new(wan: WanModel, prices: PriceModel) -> Self {
        Self::with_backend(Arc::new(ObjectStore::new()), wan, prices)
    }

    /// Simulator over a caller-supplied backend (e.g. [`FsObjectStore`]).
    pub fn with_backend(
        store: Arc<dyn ObjectBackend>,
        wan: WanModel,
        prices: PriceModel,
    ) -> Self {
        CloudSim { store, wan, prices, clock: Arc::new(Mutex::new(Duration::ZERO)) }
    }

    /// The paper's configuration: 802.11g WAN + S3 April 2011 prices.
    pub fn with_paper_defaults() -> Self {
        Self::new(WanModel::paper_defaults(), PriceModel::s3_april_2011())
    }

    /// Uploads an object; returns the simulated transfer time (also added
    /// to the simulated clock). A failed attempt still consumes the link
    /// time — the bytes travelled, the backend just didn't keep them.
    pub fn put(&self, key: &str, bytes: Vec<u8>) -> Result<Duration, BackendError> {
        let t = self.wan.upload_time(bytes.len() as u64);
        *self.clock.lock() += t;
        self.store.put(key, bytes)?;
        Ok(t)
    }

    /// Downloads an object; returns its bytes and the simulated transfer
    /// time (misses and failures cost one request overhead).
    pub fn get(&self, key: &str) -> Result<(Option<Vec<u8>>, Duration), BackendError> {
        let out = self.store.get(key);
        let t = match &out {
            Ok(Some(b)) => self.wan.download_time(b.len() as u64),
            Ok(None) | Err(_) => self.wan.per_request_overhead,
        };
        *self.clock.lock() += t;
        Ok((out?, t))
    }

    /// Deletes an object (request overhead only).
    pub fn delete(&self, key: &str) -> Result<bool, BackendError> {
        *self.clock.lock() += self.wan.per_request_overhead;
        self.store.delete(key)
    }

    /// Charges extra wall-clock to the simulated transfer clock (retry
    /// backoff waits, for instance, count toward the backup window).
    pub fn charge(&self, d: Duration) {
        *self.clock.lock() += d;
    }

    /// The underlying object backend (for inspection and failure
    /// injection).
    pub fn store(&self) -> &dyn ObjectBackend {
        self.store.as_ref()
    }

    /// The WAN model in force.
    pub fn wan(&self) -> &WanModel {
        &self.wan
    }

    /// The price model in force.
    pub fn prices(&self) -> &PriceModel {
        &self.prices
    }

    /// Total simulated wall-clock consumed by transfers so far.
    pub fn elapsed(&self) -> Duration {
        *self.clock.lock()
    }

    /// Resets the simulated clock (between backup sessions).
    pub fn reset_clock(&self) {
        *self.clock.lock() = Duration::ZERO;
    }

    /// One month's bill for the current contents and cumulative upload
    /// traffic (the paper's CC formula with measured quantities).
    pub fn monthly_cost(&self) -> CostBreakdown {
        let stats = self.store.stats();
        self.prices.monthly_cost(
            self.store.stored_bytes(),
            stats.bytes_in,
            stats.put_requests,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_advances_clock_by_transfer_time() {
        let cloud = CloudSim::with_paper_defaults();
        let payload = vec![0u8; 500 * 1024]; // exactly 1 s at 500 KB/s
        let t = cloud.put("c/1", payload).unwrap();
        assert!((t.as_secs_f64() - 1.03).abs() < 1e-9);
        assert_eq!(cloud.elapsed(), t);
    }

    #[test]
    fn get_round_trip() {
        let cloud = CloudSim::with_paper_defaults();
        cloud.put("k", vec![1, 2, 3]).unwrap();
        let (data, t) = cloud.get("k").unwrap();
        assert_eq!(data, Some(vec![1, 2, 3]));
        assert!(t >= Duration::from_millis(30));
        let (missing, tm) = cloud.get("nope").unwrap();
        assert_eq!(missing, None);
        assert_eq!(tm, Duration::from_millis(30));
    }

    #[test]
    fn monthly_cost_reflects_usage() {
        let cloud = CloudSim::with_paper_defaults();
        cloud.put("a", vec![0u8; 1 << 20]).unwrap();
        cloud.put("b", vec![0u8; 1 << 20]).unwrap();
        let c = cloud.monthly_cost();
        // 2 MiB stored + uploaded, 2 requests.
        let gb = 2.0 / 1024.0;
        assert!((c.storage - gb * 0.14).abs() < 1e-9);
        assert!((c.transfer - gb * 0.10).abs() < 1e-9);
        assert!((c.request - 2e-5).abs() < 1e-12);
    }

    #[test]
    fn clones_share_state() {
        let cloud = CloudSim::with_paper_defaults();
        let clone = cloud.clone();
        clone.put("shared", vec![9]).unwrap();
        assert_eq!(cloud.get("shared").unwrap().0, Some(vec![9]));
        assert!(cloud.elapsed() > Duration::ZERO);
    }

    #[test]
    fn reset_clock() {
        let cloud = CloudSim::with_paper_defaults();
        cloud.put("x", vec![0u8; 1024]).unwrap();
        assert!(cloud.elapsed() > Duration::ZERO);
        cloud.reset_clock();
        assert_eq!(cloud.elapsed(), Duration::ZERO);
        // Contents survive the clock reset.
        assert!(cloud.store().contains("x"));
    }

    #[test]
    fn delete_costs_a_request() {
        let cloud = CloudSim::with_paper_defaults();
        cloud.put("x", vec![1]).unwrap();
        cloud.reset_clock();
        assert!(cloud.delete("x").unwrap());
        assert_eq!(cloud.elapsed(), Duration::from_millis(30));
        assert!(!cloud.delete("x").unwrap());
    }
}
