//! Deterministic fault injection for any [`ObjectBackend`].
//!
//! Real cloud backup runs over an unreliable WAN to storage the client
//! does not control; the engine's retry and commit logic is only
//! trustworthy if it can be exercised against *scheduled* failures. A
//! [`FaultInjectingBackend`] wraps any backend and makes operations fail
//! according to a [`FaultPlan`] — a seeded, fully deterministic schedule,
//! so every test failure reproduces from its seed and rule list alone.
//!
//! Supported faults:
//!
//! * fail the Nth put (transient or permanent);
//! * fail every key under a prefix K times, then let it succeed
//!   (the classic flaky-endpoint shape retries must absorb);
//! * the same two shapes for gets, so restore downloads can be drilled
//!   exactly like uploads;
//! * truncate the Nth put — the *partial* object becomes visible and the
//!   put reports a transient failure, modelling a torn write;
//! * crash-stop at the Nth operation — that operation and every later one
//!   fails permanently, modelling process death mid-session;
//! * seeded random transient put failures at a fixed per-mille rate.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::{BackendError, BackendOp, ObjectBackend};
use crate::objectstore::ObjectStoreStats;

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultRule {
    /// Fail the `n`th put (1-based over the backend's lifetime).
    NthPut {
        /// Which put to fail, counting from 1.
        n: u64,
        /// Whether the failure is worth retrying.
        transient: bool,
    },
    /// Fail the first `times` puts of every key matching `prefix`, then
    /// let that key succeed.
    PrefixPuts {
        /// Key prefix the rule applies to.
        prefix: String,
        /// Failures per key before it recovers.
        times: u32,
        /// Whether the failures are worth retrying.
        transient: bool,
    },
    /// Truncate the `n`th put to its first `keep` bytes: the truncated
    /// object becomes visible under the key and the put reports a
    /// *transient* failure (a retry overwrites it with the full bytes).
    TruncateNthPut {
        /// Which put to truncate, counting from 1.
        n: u64,
        /// Bytes of the payload that reach the backend.
        keep: usize,
    },
    /// Fail the `n`th get (1-based over the backend's lifetime).
    NthGet {
        /// Which get to fail, counting from 1.
        n: u64,
        /// Whether the failure is worth retrying.
        transient: bool,
    },
    /// Fail the first `times` gets of every key matching `prefix`, then
    /// let that key succeed.
    PrefixGets {
        /// Key prefix the rule applies to.
        prefix: String,
        /// Failures per key before it recovers.
        times: u32,
        /// Whether the failures are worth retrying.
        transient: bool,
    },
    /// Crash-stop: operation number `op` (1-based, counting puts, gets and
    /// deletes together) and every operation after it fails permanently.
    /// The crashed operation never reaches the inner backend.
    CrashAtOp {
        /// First operation that fails.
        op: u64,
    },
    /// Fail roughly `per_mille`/1000 of puts with a transient error,
    /// chosen deterministically from the plan seed and the put number.
    RandomPuts {
        /// Failure rate in thousandths.
        per_mille: u16,
    },
}

/// A deterministic failure schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, rules: Vec::new() }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds [`FaultRule::NthPut`].
    pub fn fail_nth_put(mut self, n: u64, transient: bool) -> Self {
        self.rules.push(FaultRule::NthPut { n, transient });
        self
    }

    /// Adds [`FaultRule::PrefixPuts`].
    pub fn fail_prefix_puts(mut self, prefix: impl Into<String>, times: u32, transient: bool) -> Self {
        self.rules.push(FaultRule::PrefixPuts { prefix: prefix.into(), times, transient });
        self
    }

    /// Adds [`FaultRule::TruncateNthPut`].
    pub fn truncate_nth_put(mut self, n: u64, keep: usize) -> Self {
        self.rules.push(FaultRule::TruncateNthPut { n, keep });
        self
    }

    /// Adds [`FaultRule::NthGet`].
    pub fn fail_nth_get(mut self, n: u64, transient: bool) -> Self {
        self.rules.push(FaultRule::NthGet { n, transient });
        self
    }

    /// Adds [`FaultRule::PrefixGets`].
    pub fn fail_prefix_gets(mut self, prefix: impl Into<String>, times: u32, transient: bool) -> Self {
        self.rules.push(FaultRule::PrefixGets { prefix: prefix.into(), times, transient });
        self
    }

    /// Adds [`FaultRule::CrashAtOp`].
    pub fn crash_at_op(mut self, op: u64) -> Self {
        self.rules.push(FaultRule::CrashAtOp { op });
        self
    }

    /// Adds [`FaultRule::RandomPuts`].
    pub fn random_transient_puts(mut self, per_mille: u16) -> Self {
        self.rules.push(FaultRule::RandomPuts { per_mille });
        self
    }
}

/// splitmix64 — the deterministic bit mixer behind [`FaultRule::RandomPuts`].
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[derive(Debug, Default)]
struct FaultState {
    /// Operations attempted (puts + gets + deletes), 1-based after increment.
    ops: u64,
    /// Puts attempted, 1-based after increment.
    puts: u64,
    /// Gets attempted, 1-based after increment.
    gets: u64,
    /// Per-key failures already injected by `PrefixPuts` rules.
    prefix_failures: HashMap<String, u32>,
    /// Per-key failures already injected by `PrefixGets` rules.
    prefix_get_failures: HashMap<String, u32>,
    /// Faults injected so far (for test assertions).
    injected: u64,
    /// Set once a `CrashAtOp` rule fires; everything fails afterwards.
    crashed: bool,
}

/// An [`ObjectBackend`] decorator that fails operations per a [`FaultPlan`].
///
/// Read-only inspection methods (`contains`, `list`, `stats`, …) pass
/// through unfaulted so tests can always examine the surviving state.
pub struct FaultInjectingBackend {
    inner: Arc<dyn ObjectBackend>,
    plan: FaultPlan,
    state: Mutex<FaultState>,
}

impl FaultInjectingBackend {
    /// Wraps `inner` with the failure schedule `plan`.
    pub fn new(inner: Arc<dyn ObjectBackend>, plan: FaultPlan) -> Self {
        FaultInjectingBackend { inner, plan, state: Mutex::new(FaultState::default()) }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &Arc<dyn ObjectBackend> {
        &self.inner
    }

    /// Faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.state.lock().injected
    }

    /// Operations attempted so far (puts + gets + deletes).
    pub fn ops_attempted(&self) -> u64 {
        self.state.lock().ops
    }

    /// Whether a crash-stop rule has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Advances the op counter; returns an error if the backend is (now)
    /// crash-stopped.
    fn tick_op(&self, op: BackendOp, key: &str) -> Result<u64, BackendError> {
        let mut g = self.state.lock();
        g.ops += 1;
        let n = g.ops;
        if g.crashed || self.plan.rules.iter().any(|r| matches!(r, FaultRule::CrashAtOp { op } if *op <= n))
        {
            g.crashed = true;
            g.injected += 1;
            return Err(BackendError::permanent(op, key, "injected crash-stop"));
        }
        Ok(n)
    }

    /// Consults every put rule; returns the fault to inject, if any.
    /// `Some((transient, keep))`: `keep` is `Some(len)` for a truncation.
    fn put_fault(&self, key: &str) -> Option<(bool, Option<usize>)> {
        let mut g = self.state.lock();
        g.puts += 1;
        let nth = g.puts;
        for rule in &self.plan.rules {
            match rule {
                FaultRule::NthPut { n, transient } if *n == nth => {
                    g.injected += 1;
                    return Some((*transient, None));
                }
                FaultRule::TruncateNthPut { n, keep } if *n == nth => {
                    g.injected += 1;
                    return Some((true, Some(*keep)));
                }
                FaultRule::PrefixPuts { prefix, times, transient } if key.starts_with(prefix.as_str()) => {
                    let seen = g.prefix_failures.entry(key.to_owned()).or_insert(0);
                    if *seen < *times {
                        *seen += 1;
                        g.injected += 1;
                        return Some((*transient, None));
                    }
                }
                FaultRule::RandomPuts { per_mille }
                    if splitmix64(self.plan.seed ^ nth) % 1000 < *per_mille as u64 =>
                {
                    g.injected += 1;
                    return Some((true, None));
                }
                _ => {}
            }
        }
        None
    }

    /// Consults every get rule; returns `Some(transient)` to inject a fault.
    fn get_fault(&self, key: &str) -> Option<bool> {
        let mut g = self.state.lock();
        g.gets += 1;
        let nth = g.gets;
        for rule in &self.plan.rules {
            match rule {
                FaultRule::NthGet { n, transient } if *n == nth => {
                    g.injected += 1;
                    return Some(*transient);
                }
                FaultRule::PrefixGets { prefix, times, transient }
                    if key.starts_with(prefix.as_str()) =>
                {
                    let seen = g.prefix_get_failures.entry(key.to_owned()).or_insert(0);
                    if *seen < *times {
                        *seen += 1;
                        g.injected += 1;
                        return Some(*transient);
                    }
                }
                _ => {}
            }
        }
        None
    }
}

impl ObjectBackend for FaultInjectingBackend {
    fn put(&self, key: &str, bytes: Vec<u8>) -> Result<(), BackendError> {
        self.tick_op(BackendOp::Put, key)?;
        match self.put_fault(key) {
            Some((_, Some(keep))) => {
                // Torn write: the partial object lands, the put still fails.
                let keep = keep.min(bytes.len());
                // aalint: allow(panic-path) -- keep was clamped to bytes.len() on the line above
                self.inner.put(key, bytes[..keep].to_vec())?;
                Err(BackendError::transient(
                    BackendOp::Put,
                    key,
                    format!("injected truncation to {keep} bytes"),
                ))
            }
            Some((true, None)) => {
                Err(BackendError::transient(BackendOp::Put, key, "injected transient failure"))
            }
            Some((false, None)) => {
                Err(BackendError::permanent(BackendOp::Put, key, "injected permanent failure"))
            }
            None => self.inner.put(key, bytes),
        }
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, BackendError> {
        self.tick_op(BackendOp::Get, key)?;
        match self.get_fault(key) {
            Some(true) => {
                Err(BackendError::transient(BackendOp::Get, key, "injected transient failure"))
            }
            Some(false) => {
                Err(BackendError::permanent(BackendOp::Get, key, "injected permanent failure"))
            }
            None => self.inner.get(key),
        }
    }

    fn delete(&self, key: &str) -> Result<bool, BackendError> {
        self.tick_op(BackendOp::Delete, key)?;
        self.inner.delete(key)
    }

    fn contains(&self, key: &str) -> bool {
        self.inner.contains(key)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.inner.list(prefix)
    }

    fn object_count(&self) -> usize {
        self.inner.object_count()
    }

    fn stored_bytes(&self) -> u64 {
        self.inner.stored_bytes()
    }

    fn stats(&self) -> ObjectStoreStats {
        self.inner.stats()
    }

    fn corrupt(&self, key: &str, byte_index: usize) -> bool {
        self.inner.corrupt(key, byte_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objectstore::ObjectStore;

    fn faulty(plan: FaultPlan) -> (FaultInjectingBackend, Arc<ObjectStore>) {
        let store = Arc::new(ObjectStore::new());
        (FaultInjectingBackend::new(store.clone(), plan), store)
    }

    #[test]
    fn nth_put_fails_once() {
        let (b, inner) = faulty(FaultPlan::new(1).fail_nth_put(2, true));
        b.put("a", vec![1]).unwrap();
        let err = b.put("b", vec![2]).unwrap_err();
        assert!(err.transient);
        b.put("b", vec![2]).unwrap(); // third put: rule no longer matches
        assert_eq!(inner.object_count(), 2);
        assert_eq!(b.faults_injected(), 1);
    }

    #[test]
    fn prefix_puts_fail_k_times_then_recover() {
        let (b, _) = faulty(FaultPlan::new(1).fail_prefix_puts("c/", 2, true));
        assert!(b.put("c/1", vec![1]).is_err());
        assert!(b.put("c/1", vec![1]).is_err());
        b.put("c/1", vec![1]).unwrap();
        // An unrelated key never fails; each key has its own counter.
        b.put("m/0", vec![9]).unwrap();
        assert!(b.put("c/2", vec![2]).is_err());
        assert_eq!(b.faults_injected(), 3);
    }

    #[test]
    fn truncation_makes_partial_object_visible_and_fails() {
        let (b, inner) = faulty(FaultPlan::new(1).truncate_nth_put(1, 3));
        let err = b.put("k", vec![1, 2, 3, 4, 5]).unwrap_err();
        assert!(err.transient);
        assert_eq!(inner.get("k").unwrap(), Some(vec![1, 2, 3]), "torn write is visible");
        b.put("k", vec![1, 2, 3, 4, 5]).unwrap();
        assert_eq!(inner.get("k").unwrap(), Some(vec![1, 2, 3, 4, 5]), "retry heals it");
    }

    #[test]
    fn nth_get_fails_once() {
        let (b, _) = faulty(FaultPlan::new(1).fail_nth_get(2, true));
        b.put("a", vec![1]).unwrap();
        assert_eq!(b.get("a").unwrap(), Some(vec![1]));
        let err = b.get("a").unwrap_err();
        assert!(err.transient);
        assert_eq!(b.get("a").unwrap(), Some(vec![1]), "third get: rule no longer matches");
        assert_eq!(b.faults_injected(), 1);
    }

    #[test]
    fn prefix_gets_fail_k_times_then_recover() {
        let (b, _) = faulty(FaultPlan::new(1).fail_prefix_gets("c/", 2, true));
        b.put("c/1", vec![1]).unwrap();
        b.put("m/0", vec![9]).unwrap();
        assert!(b.get("c/1").is_err());
        assert!(b.get("c/1").is_err());
        assert_eq!(b.get("c/1").unwrap(), Some(vec![1]));
        // An unrelated key never fails; each key has its own counter.
        assert_eq!(b.get("m/0").unwrap(), Some(vec![9]));
        assert!(b.get("c/1").unwrap().is_some(), "counter is per key, not global");
        assert_eq!(b.faults_injected(), 2);
    }

    #[test]
    fn permanent_get_failure_is_not_transient() {
        let (b, _) = faulty(FaultPlan::new(1).fail_prefix_gets("c/", u32::MAX, false));
        b.put("c/1", vec![1]).unwrap();
        let err = b.get("c/1").unwrap_err();
        assert!(!err.transient);
        assert!(b.get("c/1").is_err(), "never recovers");
    }

    #[test]
    fn crash_stop_fails_everything_from_the_chosen_op() {
        let (b, inner) = faulty(FaultPlan::new(1).crash_at_op(3));
        b.put("a", vec![1]).unwrap();
        assert_eq!(b.get("a").unwrap(), Some(vec![1]));
        let err = b.put("b", vec![2]).unwrap_err();
        assert!(!err.transient, "crash-stop is not retryable");
        assert!(b.get("a").is_err(), "backend stays dead");
        assert!(b.delete("a").is_err());
        assert!(b.crashed());
        assert!(!inner.contains("b"), "crashed op never reached the store");
        // Inspection still works on the surviving state.
        assert_eq!(b.list(""), vec!["a"]);
    }

    #[test]
    fn random_puts_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let (b, _) = faulty(FaultPlan::new(seed).random_transient_puts(300));
            (0..100).map(|i| b.put(&format!("k/{i}"), vec![0]).is_err()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "different seed, different schedule");
        let failures = run(7).iter().filter(|f| **f).count();
        assert!((15..=45).contains(&failures), "rate ~300/1000, got {failures}");
    }

    #[test]
    fn empty_plan_passes_everything_through() {
        let (b, inner) = faulty(FaultPlan::new(0));
        b.put("x", vec![1, 2]).unwrap();
        assert_eq!(b.get("x").unwrap(), Some(vec![1, 2]));
        assert!(b.delete("x").unwrap());
        assert_eq!(b.faults_injected(), 0);
        assert_eq!(b.ops_attempted(), 3);
        assert_eq!(inner.stats().put_requests, 1);
    }
}
