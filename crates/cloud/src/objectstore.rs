//! In-memory cloud object store.
//!
//! Stands in for Amazon S3 in the paper's experiments (see DESIGN.md §5):
//! a flat key → bytes namespace with put/get/delete/list and exact
//! request/byte accounting, which the WAN and price models consume.

use parking_lot::RwLock;
use std::collections::BTreeMap;

use crate::backend::BackendError;

/// Per-operation accounting counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObjectStoreStats {
    /// PUT requests served.
    pub put_requests: u64,
    /// GET requests served (including misses).
    pub get_requests: u64,
    /// DELETE requests served.
    pub delete_requests: u64,
    /// Bytes received by PUTs.
    pub bytes_in: u64,
    /// Bytes returned by GETs.
    pub bytes_out: u64,
    /// Stale temp files removed by crash-recovery sweeps (durable stores).
    pub tmp_swept: u64,
    /// Best-effort cleanup deletions that themselves failed. Never silent:
    /// every swallowed `remove_file` error lands here for audit.
    pub cleanup_failures: u64,
}

/// A flat in-memory object namespace with accounting.
///
/// `BTreeMap` keeps listings ordered, matching S3's lexicographic listing
/// semantics.
pub struct ObjectStore {
    inner: RwLock<Inner>,
}

struct Inner {
    objects: BTreeMap<String, Vec<u8>>,
    stats: ObjectStoreStats,
}

impl Default for ObjectStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ObjectStore {
            inner: RwLock::new(Inner {
                objects: BTreeMap::new(),
                stats: ObjectStoreStats::default(),
            }),
        }
    }

    /// Stores `bytes` under `key`, replacing any previous object. Memory
    /// never fails, but the signature matches [`ObjectBackend`] so callers
    /// written against the trait handle errors uniformly.
    ///
    /// [`ObjectBackend`]: crate::backend::ObjectBackend
    pub fn put(&self, key: &str, bytes: Vec<u8>) -> Result<(), BackendError> {
        let mut g = self.inner.write();
        g.stats.put_requests += 1;
        g.stats.bytes_in += bytes.len() as u64;
        g.objects.insert(key.to_owned(), bytes);
        Ok(())
    }

    /// Fetches the object at `key`.
    pub fn get(&self, key: &str) -> Result<Option<Vec<u8>>, BackendError> {
        let mut g = self.inner.write();
        g.stats.get_requests += 1;
        let out = g.objects.get(key).cloned();
        if let Some(o) = &out {
            g.stats.bytes_out += o.len() as u64;
        }
        Ok(out)
    }

    /// Deletes the object at `key`; returns whether it existed.
    pub fn delete(&self, key: &str) -> Result<bool, BackendError> {
        let mut g = self.inner.write();
        g.stats.delete_requests += 1;
        Ok(g.objects.remove(key).is_some())
    }

    /// True if an object exists at `key` (not counted as a request).
    pub fn contains(&self, key: &str) -> bool {
        self.inner.read().objects.contains_key(key)
    }

    /// Keys starting with `prefix`, in lexicographic order.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.inner
            .read()
            .objects
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.inner.read().objects.len()
    }

    /// Total bytes currently stored.
    pub fn stored_bytes(&self) -> u64 {
        self.inner.read().objects.values().map(|v| v.len() as u64).sum()
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> ObjectStoreStats {
        self.inner.read().stats
    }

    /// Corrupts one byte of the object at `key` (failure injection for
    /// tests); returns false if the object is missing or empty.
    pub fn corrupt(&self, key: &str, byte_index: usize) -> bool {
        let mut g = self.inner.write();
        match g.objects.get_mut(key) {
            Some(v) if !v.is_empty() => {
                let i = byte_index % v.len();
                // aalint: allow(panic-path) -- i is reduced modulo v.len(), which the guard proved non-zero
                v[i] ^= 0xff;
                true
            }
            _ => false,
        }
    }
}

impl crate::backend::ObjectBackend for ObjectStore {
    fn put(&self, key: &str, bytes: Vec<u8>) -> Result<(), BackendError> {
        ObjectStore::put(self, key, bytes)
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, BackendError> {
        ObjectStore::get(self, key)
    }

    fn delete(&self, key: &str) -> Result<bool, BackendError> {
        ObjectStore::delete(self, key)
    }

    fn contains(&self, key: &str) -> bool {
        ObjectStore::contains(self, key)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        ObjectStore::list(self, prefix)
    }

    fn object_count(&self) -> usize {
        ObjectStore::object_count(self)
    }

    fn stored_bytes(&self) -> u64 {
        ObjectStore::stored_bytes(self)
    }

    fn stats(&self) -> ObjectStoreStats {
        ObjectStore::stats(self)
    }

    fn corrupt(&self, key: &str, byte_index: usize) -> bool {
        ObjectStore::corrupt(self, key, byte_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_cycle() {
        let s = ObjectStore::new();
        s.put("a/1", vec![1, 2, 3]).unwrap();
        assert_eq!(s.get("a/1").unwrap(), Some(vec![1, 2, 3]));
        assert!(s.contains("a/1"));
        assert!(s.delete("a/1").unwrap());
        assert!(!s.delete("a/1").unwrap());
        assert_eq!(s.get("a/1").unwrap(), None);
    }

    #[test]
    fn put_replaces() {
        let s = ObjectStore::new();
        s.put("k", vec![1]).unwrap();
        s.put("k", vec![2, 3]).unwrap();
        assert_eq!(s.get("k").unwrap(), Some(vec![2, 3]));
        assert_eq!(s.object_count(), 1);
        assert_eq!(s.stored_bytes(), 2);
    }

    #[test]
    fn listing_is_prefix_filtered_and_ordered() {
        let s = ObjectStore::new();
        s.put("containers/2", vec![]).unwrap();
        s.put("containers/1", vec![]).unwrap();
        s.put("index/snap", vec![]).unwrap();
        assert_eq!(s.list("containers/"), vec!["containers/1", "containers/2"]);
        assert_eq!(s.list(""), vec!["containers/1", "containers/2", "index/snap"]);
        assert!(s.list("zzz").is_empty());
    }

    #[test]
    fn accounting() {
        let s = ObjectStore::new();
        s.put("a", vec![0u8; 100]).unwrap();
        s.put("b", vec![0u8; 50]).unwrap();
        s.get("a").unwrap();
        s.get("missing").unwrap();
        s.delete("b").unwrap();
        let st = s.stats();
        assert_eq!(st.put_requests, 2);
        assert_eq!(st.get_requests, 2);
        assert_eq!(st.delete_requests, 1);
        assert_eq!(st.bytes_in, 150);
        assert_eq!(st.bytes_out, 100);
        assert_eq!(s.stored_bytes(), 100);
    }

    #[test]
    fn corruption_injection() {
        let s = ObjectStore::new();
        s.put("x", vec![0u8; 10]).unwrap();
        assert!(s.corrupt("x", 3));
        assert_eq!(s.get("x").unwrap().unwrap()[3], 0xff);
        assert!(!s.corrupt("missing", 0));
    }
}
