//! Cloud pricing model.
//!
//! The paper (§IV.E) prices its workloads with Amazon S3's April 2011
//! tariff: **$0.14 per GB·month** of storage, **$0.10 per GB** of upload
//! transfer, and **$0.01 per 1,000 upload requests**, and models total cost
//! as
//!
//! ```text
//! CC = DS/DR · (SP + TP) + OC · OP
//! ```
//!
//! (dataset size over dedup ratio — i.e. stored/transferred bytes — times
//! storage+transfer price, plus operation count times operation price).

/// Pricing constants (US dollars).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceModel {
    /// Storage price, $ per GB per month (SP).
    pub storage_per_gb_month: f64,
    /// Upload transfer price, $ per GB (TP).
    pub transfer_per_gb: f64,
    /// Upload request price, $ per request (OP; S3 charged per 1,000).
    pub per_request: f64,
}

/// Bytes per GB in pricing arithmetic (S3 bills decimal-ish GiB; the paper
/// does not distinguish — we use 2^30 consistently for all schemes, which
/// cancels in every ratio).
pub const BYTES_PER_GB: f64 = (1u64 << 30) as f64;

impl PriceModel {
    /// Amazon S3, April 2011 (the paper's constants).
    pub const fn s3_april_2011() -> Self {
        PriceModel {
            storage_per_gb_month: 0.14,
            transfer_per_gb: 0.10,
            per_request: 0.01 / 1000.0,
        }
    }

    /// One month's cost for `stored_bytes` resident, `uploaded_bytes`
    /// transferred in, and `requests` upload operations.
    pub fn monthly_cost(&self, stored_bytes: u64, uploaded_bytes: u64, requests: u64) -> CostBreakdown {
        let storage = stored_bytes as f64 / BYTES_PER_GB * self.storage_per_gb_month;
        let transfer = uploaded_bytes as f64 / BYTES_PER_GB * self.transfer_per_gb;
        let request = requests as f64 * self.per_request;
        CostBreakdown { storage, transfer, request }
    }
}

impl Default for PriceModel {
    fn default() -> Self {
        Self::s3_april_2011()
    }
}

/// A cost split into the three billed components.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostBreakdown {
    /// Storage component ($).
    pub storage: f64,
    /// Upload transfer component ($).
    pub transfer: f64,
    /// Request component ($).
    pub request: f64,
}

impl CostBreakdown {
    /// Total monthly cost ($).
    pub fn total(&self) -> f64 {
        self.storage + self.transfer + self.request
    }

    /// Component-wise sum.
    pub fn add(&self, other: &CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            storage: self.storage + other.storage,
            transfer: self.transfer + other.transfer,
            request: self.request + other.request,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s3_constants() {
        let p = PriceModel::s3_april_2011();
        assert!((p.storage_per_gb_month - 0.14).abs() < 1e-12);
        assert!((p.transfer_per_gb - 0.10).abs() < 1e-12);
        assert!((p.per_request - 1e-5).abs() < 1e-15);
    }

    #[test]
    fn one_gb_once() {
        let p = PriceModel::s3_april_2011();
        let gb = 1u64 << 30;
        let c = p.monthly_cost(gb, gb, 1000);
        assert!((c.storage - 0.14).abs() < 1e-9);
        assert!((c.transfer - 0.10).abs() < 1e-9);
        assert!((c.request - 0.01).abs() < 1e-9);
        assert!((c.total() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn request_cost_dominates_tiny_transfers() {
        // 100,000 one-KB uploads: request cost ($1.00) dwarfs transfer cost
        // (~$0.0095) — the effect container aggregation eliminates.
        let p = PriceModel::s3_april_2011();
        let c = p.monthly_cost(0, 100_000 * 1024, 100_000);
        assert!(c.request > 50.0 * c.transfer);
    }

    #[test]
    fn breakdown_add() {
        let a = CostBreakdown { storage: 1.0, transfer: 2.0, request: 3.0 };
        let b = CostBreakdown { storage: 0.5, transfer: 0.5, request: 0.5 };
        let c = a.add(&b);
        assert!((c.total() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn zero_usage_is_free() {
        let c = PriceModel::default().monthly_cost(0, 0, 0);
        assert_eq!(c.total(), 0.0);
    }
}
