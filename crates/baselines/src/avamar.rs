//! Avamar: source chunk-level (CDC) deduplication.
//!
//! The paper's representative of fine-grained source dedup [24]: *every*
//! file — media, archives, VM images, documents, tiny files alike — is
//! content-defined-chunked (8 KiB average) and SHA-1-fingerprinted against
//! one monolithic chunk index; each unique chunk is uploaded as its own
//! cloud object. This maximises detected redundancy (Fig. 7's best-case
//! storage) but pays for it three times over, exactly as the paper
//! reports: CDC boundary detection plus SHA-1 over all bytes (CPU), a full
//! unclassified chunk index that outgrows RAM (modelled disk seeks), and a
//! per-chunk request storm over the WAN (Fig. 10's request cost) — making
//! its backup throughput the worst of the five schemes, "even worse than
//! the full backup method".

use std::time::Instant;

use aadedupe_chunking::{CdcChunker, Chunker};
use aadedupe_cloud::CloudSim;
use aadedupe_container::ContainerStore;
use aadedupe_core::recipe::{ChunkRef, FileRecipe, Manifest};
use aadedupe_core::restore::{restore_session, RestoredFile};
use aadedupe_core::timing::DedupClock;
use aadedupe_core::{BackupError, BackupScheme};
use aadedupe_filetype::SourceFile;
use aadedupe_hashing::{Fingerprint, HashAlgorithm};
use aadedupe_index::{ChunkEntry, ChunkIndex, MonolithicIndex};
use aadedupe_metrics::SessionReport;

use crate::common::{ship_session, PER_UNIT};

const SCHEME_KEY: &str = "avamar";

/// Default modelled RAM budget for baseline indexes, in entries. Matches
/// the total budget AA-Dedupe's 13 partitions get by default in the
/// evaluation configuration (see the harness), so comparisons are
/// RAM-fair.
pub const DEFAULT_RAM_ENTRIES: usize = 13 * 4096;

/// Chunk-level CDC dedup client.
pub struct Avamar {
    cloud: CloudSim,
    containers: ContainerStore,
    index: MonolithicIndex,
    cdc: CdcChunker,
    sessions: usize,
}

impl Avamar {
    /// New client over `cloud` with the default RAM budget.
    pub fn new(cloud: CloudSim) -> Self {
        Self::with_ram(cloud, DEFAULT_RAM_ENTRIES)
    }

    /// New client with an explicit index RAM budget (entries).
    pub fn with_ram(cloud: CloudSim, ram_entries: usize) -> Self {
        Avamar {
            cloud,
            containers: ContainerStore::new(PER_UNIT),
            index: MonolithicIndex::new(ram_entries),
            cdc: CdcChunker::default(),
            sessions: 0,
        }
    }
}

impl BackupScheme for Avamar {
    fn name(&self) -> &'static str {
        "Avamar"
    }

    fn backup_session(
        &mut self,
        files: &[&dyn SourceFile],
    ) -> Result<SessionReport, BackupError> {
        let mut report = SessionReport::new(self.name(), self.sessions);
        let mut clock = DedupClock::new();
        let mut manifest = Manifest::new(self.sessions as u64);

        for file in files {
            report.files_total += 1;
            report.logical_bytes += file.size();
            let data = file.read();
            let start = Instant::now();
            let spans = self.cdc.chunk(&data);
            let mut chunks = Vec::with_capacity(spans.len());
            for span in &spans {
                let bytes = span.slice(&data);
                let fp = Fingerprint::compute(HashAlgorithm::Sha1, bytes);
                report.chunks_total += 1;
                let outcome = self.index.lookup_classified(&fp);
                if outcome.touched_disk() {
                    clock.charge_disk_probes(1);
                    report.index_disk_reads += 1;
                }
                let reference = match outcome.entry() {
                    Some(entry) => {
                        report.chunks_duplicate += 1;
                        ChunkRef {
                            fingerprint: fp,
                            len: bytes.len() as u32,
                            container: entry.container,
                            offset: entry.offset,
                        }
                    }
                    None => {
                        let placement = self.containers.add_chunk(0, fp, bytes);
                        self.index.insert(
                            fp,
                            ChunkEntry::new(
                                bytes.len() as u64,
                                placement.container,
                                placement.offset,
                            ),
                        );
                        report.stored_bytes += bytes.len() as u64;
                        ChunkRef {
                            fingerprint: fp,
                            len: bytes.len() as u32,
                            container: placement.container,
                            offset: placement.offset,
                        }
                    }
                };
                chunks.push(reference);
            }
            clock.add_cpu(start.elapsed());
            manifest.files.push(FileRecipe {
                path: file.path().to_string(),
                app: file.app_type(),
                tiny: false,
                chunks,
            });
        }

        // Every byte of the dataset is read once from the source disk.
        clock.charge_source_read(report.logical_bytes);
        ship_session(&self.cloud, &mut self.containers, SCHEME_KEY, &manifest, &mut report)?;
        report.dedup_cpu = clock.total();
        self.sessions += 1;
        Ok(report)
    }

    fn restore_session(&self, session: usize) -> Result<Vec<RestoredFile>, BackupError> {
        restore_session(&self.cloud, SCHEME_KEY, session as u64)
    }

    fn sessions_completed(&self) -> usize {
        self.sessions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadedupe_filetype::MemoryFile;

    fn sources(files: &[MemoryFile]) -> Vec<&dyn SourceFile> {
        files.iter().map(|f| f as &dyn SourceFile).collect()
    }

    #[test]
    fn finds_sub_file_redundancy_where_backuppc_cannot() {
        let mut av = Avamar::new(CloudSim::with_paper_defaults());
        let base: Vec<u8> = (0..200_000u32).map(|i| (i.wrapping_mul(2654435761) >> 11) as u8).collect();
        av.backup_session(&sources(&[MemoryFile::new("f.txt", base.clone())])).unwrap();
        // Insert a byte at the front: CDC re-aligns, most chunks dedupe.
        let mut edited = base.clone();
        edited.insert(0, 0x42);
        let s1 = av
            .backup_session(&sources(&[MemoryFile::new("f.txt", edited.clone())]))
            .unwrap();
        assert!(
            s1.stored_bytes < base.len() as u64 / 4,
            "CDC should store a small delta, stored {}",
            s1.stored_bytes
        );
        assert_eq!(av.restore_session(1).unwrap()[0].data, edited);
    }

    #[test]
    fn one_request_per_unique_chunk() {
        let mut av = Avamar::new(CloudSim::with_paper_defaults());
        let data: Vec<u8> = (0..100_000u32).map(|i| (i * 37 % 251) as u8).collect();
        let s0 = av.backup_session(&sources(&[MemoryFile::new("a.bin", data)])).unwrap();
        // chunks + 1 manifest.
        assert_eq!(s0.put_requests, s0.chunks_total - s0.chunks_duplicate + 1);
        assert!(s0.put_requests > 5, "fine-grained chunking, many requests");
    }

    #[test]
    fn large_dataset_overflows_ram_index() {
        let mut av = Avamar::with_ram(CloudSim::with_paper_defaults(), 8);
        // Non-periodic stream (a multiplicative byte sequence repeats every
        // 32 KiB, which would dedupe into fewer unique chunks than the
        // cache holds); xorshift has no such short period.
        let mut x = 0x9E3779B97F4A7C15u64;
        let data: Vec<u8> = (0..400_000)
            .map(|_| { x ^= x << 13; x ^= x >> 7; x ^= x << 17; (x >> 32) as u8 })
            .collect();
        let s0 = av.backup_session(&sources(&[MemoryFile::new("big.bin", data)])).unwrap();
        assert!(s0.index_disk_reads > 0, "tiny cache must spill");
    }

    #[test]
    fn round_trip_many_files() {
        let mut av = Avamar::new(CloudSim::with_paper_defaults());
        let files: Vec<MemoryFile> = (0..5)
            .map(|i| MemoryFile::new(format!("f{i}.doc"), vec![i as u8; 30_000 + i * 1000]))
            .collect();
        av.backup_session(&sources(&files)).unwrap();
        let restored = av.restore_session(0).unwrap();
        for (orig, rest) in files.iter().zip(restored.iter()) {
            assert_eq!(orig.data, rest.data);
        }
    }
}
