//! Jungle Disk: file-incremental cloud backup (no deduplication).
//!
//! The paper's representative of plain incremental backup [25]: a file is
//! re-uploaded *whole* whenever its metadata (here: change token) differs
//! from the previous session, one request per file, with no redundancy
//! elimination of any kind. Unchanged files are carried forward by
//! reference. Space efficiency is therefore the worst of the five schemes
//! (Fig. 7) — a one-byte edit to a VM image re-ships the whole image — but
//! CPU cost is minimal: the only data-touching work is an MD5 integrity
//! digest over the bytes actually uploaded (as real clients compute for
//! S3's content-MD5 check).

use std::collections::HashMap;
use std::time::Instant;

use aadedupe_cloud::CloudSim;
use aadedupe_container::ContainerStore;
use aadedupe_core::recipe::{ChunkRef, FileRecipe, Manifest};
use aadedupe_core::restore::{restore_session, RestoredFile};
use aadedupe_core::timing::DedupClock;
use aadedupe_core::{BackupError, BackupScheme};
use aadedupe_filetype::SourceFile;
use aadedupe_hashing::{Fingerprint, HashAlgorithm};
use aadedupe_metrics::SessionReport;

use crate::common::{ship_session, PER_UNIT};

const SCHEME_KEY: &str = "jungledisk";

/// File-incremental backup client.
pub struct JungleDisk {
    cloud: CloudSim,
    containers: ContainerStore,
    /// path → (change token, last uploaded placement) from the previous
    /// session.
    seen: HashMap<String, (u64, ChunkRef)>,
    sessions: usize,
}

impl JungleDisk {
    /// New client over `cloud`.
    pub fn new(cloud: CloudSim) -> Self {
        JungleDisk {
            cloud,
            containers: ContainerStore::new(PER_UNIT),
            seen: HashMap::new(),
            sessions: 0,
        }
    }
}

impl BackupScheme for JungleDisk {
    fn name(&self) -> &'static str {
        "Jungle Disk"
    }

    fn backup_session(
        &mut self,
        files: &[&dyn SourceFile],
    ) -> Result<SessionReport, BackupError> {
        let mut report = SessionReport::new(self.name(), self.sessions);
        let mut clock = DedupClock::new();
        let mut manifest = Manifest::new(self.sessions as u64);
        let mut next_seen = HashMap::with_capacity(files.len());

        for file in files {
            report.files_total += 1;
            report.logical_bytes += file.size();
            // Hash-verify change detection: read and MD5 the file, compare
            // against the previous session's digest. (The real client keeps
            // a content-addressed block database and cannot blindly trust
            // mtimes.)
            let data = file.read();
            let start = Instant::now();
            let fp = Fingerprint::compute(HashAlgorithm::Md5, &data);
            clock.add_cpu(start.elapsed());
            let token = fp.prefix64();
            let reference = match self.seen.get(file.path()) {
                Some((old_token, reference)) if *old_token == token => *reference,
                _ => {
                    // Changed or new: upload whole.
                    let start = Instant::now();
                    let placement = self.containers.add_chunk(0, fp, &data);
                    clock.add_cpu(start.elapsed());
                    report.stored_bytes += data.len() as u64;
                    ChunkRef {
                        fingerprint: fp,
                        len: data.len() as u32,
                        container: placement.container,
                        offset: placement.offset,
                    }
                }
            };
            report.chunks_total += 1;
            next_seen.insert(file.path().to_string(), (token, reference));
            manifest.files.push(FileRecipe {
                path: file.path().to_string(),
                app: file.app_type(),
                tiny: false,
                chunks: if file.size() == 0 { vec![] } else { vec![reference] },
            });
        }
        // Every byte of the dataset is read once from the source disk.
        clock.charge_source_read(report.logical_bytes);
        self.seen = next_seen;

        ship_session(&self.cloud, &mut self.containers, SCHEME_KEY, &manifest, &mut report)?;
        report.dedup_cpu = clock.total();
        self.sessions += 1;
        Ok(report)
    }

    fn restore_session(&self, session: usize) -> Result<Vec<RestoredFile>, BackupError> {
        restore_session(&self.cloud, SCHEME_KEY, session as u64)
    }

    fn sessions_completed(&self) -> usize {
        self.sessions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadedupe_filetype::MemoryFile;

    fn sources(files: &[MemoryFile]) -> Vec<&dyn SourceFile> {
        files.iter().map(|f| f as &dyn SourceFile).collect()
    }

    #[test]
    fn uploads_everything_then_only_changes() {
        let cloud = CloudSim::with_paper_defaults();
        let mut jd = JungleDisk::new(cloud);
        let mut files = vec![
            MemoryFile::new("a.txt", b"alpha".repeat(1000)),
            MemoryFile::new("b.pdf", vec![1u8; 20_000]),
        ];
        let s0 = jd.backup_session(&sources(&files)).unwrap();
        assert_eq!(s0.stored_bytes, s0.logical_bytes, "first session: no savings");

        // Unchanged second session: nothing re-uploaded.
        let s1 = jd.backup_session(&sources(&files)).unwrap();
        assert_eq!(s1.stored_bytes, 0);

        // Edit one byte of the PDF: the whole file is re-shipped.
        files[1] = MemoryFile::new("b.pdf", {
            let mut d = vec![1u8; 20_000];
            d[10] = 2;
            d
        });
        let s2 = jd.backup_session(&sources(&files)).unwrap();
        assert_eq!(s2.stored_bytes, 20_000, "whole changed file re-uploaded");
    }

    #[test]
    fn restores_any_session() {
        let cloud = CloudSim::with_paper_defaults();
        let mut jd = JungleDisk::new(cloud);
        let v1 = vec![MemoryFile::new("doc.doc", b"version-1".repeat(500))];
        jd.backup_session(&sources(&v1)).unwrap();
        let v2 = vec![MemoryFile::new("doc.doc", b"version-2".repeat(500))];
        jd.backup_session(&sources(&v2)).unwrap();

        assert_eq!(jd.restore_session(0).unwrap()[0].data, v1[0].data);
        assert_eq!(jd.restore_session(1).unwrap()[0].data, v2[0].data);
        assert!(matches!(
            jd.restore_session(7),
            Err(BackupError::UnknownSession(7))
        ));
    }

    #[test]
    fn no_dedup_of_identical_files() {
        let cloud = CloudSim::with_paper_defaults();
        let mut jd = JungleDisk::new(cloud);
        let payload = b"identical twins".repeat(800);
        let files = vec![
            MemoryFile::new("one.txt", payload.clone()),
            MemoryFile::new("two.txt", payload.clone()),
        ];
        let s0 = jd.backup_session(&sources(&files)).unwrap();
        assert_eq!(s0.stored_bytes, 2 * payload.len() as u64, "incremental ≠ dedup");
    }

    #[test]
    fn one_request_per_changed_file() {
        let cloud = CloudSim::with_paper_defaults();
        let mut jd = JungleDisk::new(cloud);
        let files: Vec<MemoryFile> = (0..7)
            .map(|i| MemoryFile::new(format!("f{i}.txt"), vec![i as u8; 5000]))
            .collect();
        let s0 = jd.backup_session(&sources(&files)).unwrap();
        // 7 file objects + 1 manifest.
        assert_eq!(s0.put_requests, 8);
    }
}
