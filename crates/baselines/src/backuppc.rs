//! BackupPC: source file-level deduplication.
//!
//! The paper's representative of whole-file dedup [26]: every file is
//! fingerprinted whole (SHA-1) and checked against a global file index; a
//! hit means the file's bytes are already in the pool and only a reference
//! is recorded, a miss uploads the file whole (one request per file).
//! Metadata overhead is minimal and lookup cost low, at the price of
//! missing all sub-file redundancy — a one-byte edit stores the file
//! again in full.

use std::time::Instant;

use aadedupe_cloud::CloudSim;
use aadedupe_container::ContainerStore;
use aadedupe_core::recipe::{ChunkRef, FileRecipe, Manifest};
use aadedupe_core::restore::{restore_session, RestoredFile};
use aadedupe_core::timing::DedupClock;
use aadedupe_core::{BackupError, BackupScheme};
use aadedupe_filetype::SourceFile;
use aadedupe_hashing::{Fingerprint, HashAlgorithm};
use aadedupe_index::{ChunkEntry, ChunkIndex, MonolithicIndex};
use aadedupe_metrics::SessionReport;

use crate::common::{ship_session, PER_UNIT};

const SCHEME_KEY: &str = "backuppc";

/// File-level dedup client.
pub struct BackupPc {
    cloud: CloudSim,
    containers: ContainerStore,
    /// Global whole-file fingerprint index.
    index: MonolithicIndex,
    sessions: usize,
}

impl BackupPc {
    /// New client over `cloud`, with the default RAM budget.
    pub fn new(cloud: CloudSim) -> Self {
        Self::with_ram(cloud, crate::avamar::DEFAULT_RAM_ENTRIES)
    }

    /// New client with an explicit index RAM budget (entries).
    pub fn with_ram(cloud: CloudSim, ram_entries: usize) -> Self {
        BackupPc {
            cloud,
            containers: ContainerStore::new(PER_UNIT),
            index: MonolithicIndex::new(ram_entries),
            sessions: 0,
        }
    }
}

impl BackupScheme for BackupPc {
    fn name(&self) -> &'static str {
        "BackupPC"
    }

    fn backup_session(
        &mut self,
        files: &[&dyn SourceFile],
    ) -> Result<SessionReport, BackupError> {
        let mut report = SessionReport::new(self.name(), self.sessions);
        let mut clock = DedupClock::new();
        let mut manifest = Manifest::new(self.sessions as u64);

        for file in files {
            report.files_total += 1;
            report.logical_bytes += file.size();
            report.chunks_total += 1;
            let data = file.read();
            let start = Instant::now();
            let fp = Fingerprint::compute(HashAlgorithm::Sha1, &data);
            let outcome = self.index.lookup_classified(&fp);
            if outcome.touched_disk() {
                clock.charge_disk_probes(1);
                report.index_disk_reads += 1;
            }
            let reference = match outcome.entry() {
                Some(entry) => {
                    report.chunks_duplicate += 1;
                    ChunkRef {
                        fingerprint: fp,
                        len: data.len() as u32,
                        container: entry.container,
                        offset: entry.offset,
                    }
                }
                None => {
                    let placement = self.containers.add_chunk(0, fp, &data);
                    self.index.insert(
                        fp,
                        ChunkEntry::new(data.len() as u64, placement.container, placement.offset),
                    );
                    report.stored_bytes += data.len() as u64;
                    ChunkRef {
                        fingerprint: fp,
                        len: data.len() as u32,
                        container: placement.container,
                        offset: placement.offset,
                    }
                }
            };
            clock.add_cpu(start.elapsed());
            manifest.files.push(FileRecipe {
                path: file.path().to_string(),
                app: file.app_type(),
                tiny: false,
                chunks: vec![reference],
            });
        }

        // Every byte of the dataset is read once from the source disk.
        clock.charge_source_read(report.logical_bytes);
        ship_session(&self.cloud, &mut self.containers, SCHEME_KEY, &manifest, &mut report)?;
        report.dedup_cpu = clock.total();
        self.sessions += 1;
        Ok(report)
    }

    fn restore_session(&self, session: usize) -> Result<Vec<RestoredFile>, BackupError> {
        restore_session(&self.cloud, SCHEME_KEY, session as u64)
    }

    fn sessions_completed(&self) -> usize {
        self.sessions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadedupe_filetype::MemoryFile;

    fn sources(files: &[MemoryFile]) -> Vec<&dyn SourceFile> {
        files.iter().map(|f| f as &dyn SourceFile).collect()
    }

    #[test]
    fn dedupes_identical_files_any_path() {
        let mut bp = BackupPc::new(CloudSim::with_paper_defaults());
        let payload = b"same content".repeat(1000);
        let files = vec![
            MemoryFile::new("a/x.doc", payload.clone()),
            MemoryFile::new("b/y.doc", payload.clone()),
        ];
        let s0 = bp.backup_session(&sources(&files)).unwrap();
        assert_eq!(s0.chunks_duplicate, 1, "second copy dedupes");
        assert_eq!(s0.stored_bytes, payload.len() as u64);
        let restored = bp.restore_session(0).unwrap();
        assert_eq!(restored[0].data, payload);
        assert_eq!(restored[1].data, payload);
    }

    #[test]
    fn misses_sub_file_redundancy() {
        let mut bp = BackupPc::new(CloudSim::with_paper_defaults());
        let base = vec![9u8; 50_000];
        bp.backup_session(&sources(&[MemoryFile::new("f.pdf", base.clone())])).unwrap();
        // One byte changed: file-level dedup stores it all again.
        let mut edited = base.clone();
        edited[25_000] ^= 1;
        let s1 = bp
            .backup_session(&sources(&[MemoryFile::new("f.pdf", edited)]))
            .unwrap();
        assert_eq!(s1.stored_bytes, 50_000);
    }

    #[test]
    fn unchanged_sessions_store_nothing() {
        let mut bp = BackupPc::new(CloudSim::with_paper_defaults());
        let files = vec![MemoryFile::new("v.avi", vec![5u8; 30_000])];
        bp.backup_session(&sources(&files)).unwrap();
        let s1 = bp.backup_session(&sources(&files)).unwrap();
        assert_eq!(s1.stored_bytes, 0);
        assert_eq!(s1.chunks_duplicate, 1);
        // Both sessions restorable.
        assert_eq!(bp.restore_session(0).unwrap(), bp.restore_session(1).unwrap());
    }
}
