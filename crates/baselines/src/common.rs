//! Shared plumbing for the baseline schemes.

use aadedupe_cloud::CloudSim;
use aadedupe_container::format::HEADER_LEN;
use aadedupe_container::ContainerStore;
use aadedupe_core::recipe::Manifest;
use aadedupe_core::restore::container_key;
use aadedupe_core::scheme::BackupError;
use aadedupe_metrics::SessionReport;

/// Container size that forces every chunk into its own dedicated, unpadded
/// container — modelling schemes that upload each unit (file or chunk) as
/// an individual cloud object instead of aggregating.
pub const PER_UNIT: usize = HEADER_LEN + 1;

/// Seals all open containers, uploads them (and the manifest) under
/// `scheme_key`, updating the report's transfer and request accounting.
/// Any upload failure aborts the session — the baselines model no retry.
pub fn ship_session(
    cloud: &CloudSim,
    containers: &mut ContainerStore,
    scheme_key: &str,
    manifest: &Manifest,
    report: &mut SessionReport,
) -> Result<(), BackupError> {
    let puts_before = cloud.store().stats().put_requests;
    let wan_before = cloud.elapsed();
    containers.seal_all();
    for sealed in containers.drain_sealed() {
        let key = container_key(scheme_key, sealed.id);
        report.transferred_bytes += sealed.bytes.len() as u64;
        cloud.put(&key, sealed.bytes)?;
    }
    let mbytes = manifest.encode();
    report.transferred_bytes += mbytes.len() as u64;
    cloud.put(&Manifest::key(scheme_key, manifest.session), mbytes)?;
    report.put_requests += cloud.store().stats().put_requests - puts_before;
    report.transfer_time += cloud.elapsed() - wan_before;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadedupe_hashing::{Fingerprint, HashAlgorithm};

    #[test]
    fn per_unit_store_gives_one_object_per_chunk() {
        let mut store = ContainerStore::new(PER_UNIT);
        for i in 0..5u8 {
            store.add_chunk(0, Fingerprint::compute(HashAlgorithm::Sha1, &[i]), &[i; 100]);
        }
        store.seal_all();
        let sealed = store.drain_sealed();
        assert_eq!(sealed.len(), 5);
        assert!(sealed.iter().all(|s| s.padding == 0 && s.chunks == 1));
    }

    #[test]
    fn ship_session_accounts_requests_and_bytes() {
        let cloud = CloudSim::with_paper_defaults();
        let mut store = ContainerStore::new(PER_UNIT);
        store.add_chunk(0, Fingerprint::compute(HashAlgorithm::Sha1, b"x"), b"payload");
        let manifest = Manifest::new(0);
        let mut report = SessionReport::new("t", 0);
        ship_session(&cloud, &mut store, "t", &manifest, &mut report).unwrap();
        assert_eq!(report.put_requests, 2, "one container + one manifest");
        assert!(report.transferred_bytes > 7);
        assert!(report.transfer_time > std::time::Duration::ZERO);
    }
}
