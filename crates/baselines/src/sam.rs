//! SAM: hybrid semantic-aware source deduplication.
//!
//! The paper's closest prior work [11]: SAM combines file-level and
//! chunk-level dedup using file semantics — whole-file fingerprints for
//! data unlikely to carry sub-file redundancy (compressed files, tiny
//! files), CDC chunk-level dedup for the rest — over *global* indexes.
//! It thus saves most of Avamar's space at lower CPU cost, but unlike
//! AA-Dedupe it (a) keeps SHA-1 everywhere instead of matching hash
//! strength to granularity, (b) keeps one unclassified index instead of
//! per-application partitions, and (c) ships each unique unit as its own
//! object instead of aggregating into containers — the three deltas the
//! paper's Figs. 8–11 quantify.

use std::time::Instant;

use aadedupe_chunking::{CdcChunker, Chunker};
use aadedupe_cloud::CloudSim;
use aadedupe_container::ContainerStore;
use aadedupe_core::recipe::{ChunkRef, FileRecipe, Manifest};
use aadedupe_core::restore::{restore_session, RestoredFile};
use aadedupe_core::timing::DedupClock;
use aadedupe_core::{BackupError, BackupScheme};
use aadedupe_filetype::{Category, SourceFile};
use aadedupe_hashing::{Fingerprint, HashAlgorithm};
use aadedupe_index::{ChunkEntry, ChunkIndex, MonolithicIndex};
use aadedupe_metrics::SessionReport;

use crate::common::{ship_session, PER_UNIT};

const SCHEME_KEY: &str = "sam";

/// Hybrid file/chunk-level dedup client.
pub struct Sam {
    cloud: CloudSim,
    containers: ContainerStore,
    /// Global whole-file index (compressed + tiny files).
    file_index: MonolithicIndex,
    /// Global chunk index (everything else).
    chunk_index: MonolithicIndex,
    cdc: CdcChunker,
    sessions: usize,
}

impl Sam {
    /// New client over `cloud` with the default RAM budget.
    pub fn new(cloud: CloudSim) -> Self {
        Self::with_ram(cloud, crate::avamar::DEFAULT_RAM_ENTRIES)
    }

    /// New client; the RAM budget is split between the two global indexes.
    pub fn with_ram(cloud: CloudSim, ram_entries: usize) -> Self {
        Sam {
            cloud,
            containers: ContainerStore::new(PER_UNIT),
            file_index: MonolithicIndex::new(ram_entries / 4),
            chunk_index: MonolithicIndex::new(ram_entries - ram_entries / 4),
            cdc: CdcChunker::default(),
            sessions: 0,
        }
    }

    /// Whether SAM handles a file at whole-file granularity.
    fn file_level(file: &dyn SourceFile) -> bool {
        file.app_type().category() == Category::Compressed || file.size() < 10 * 1024
    }
}

impl BackupScheme for Sam {
    fn name(&self) -> &'static str {
        "SAM"
    }

    fn backup_session(
        &mut self,
        files: &[&dyn SourceFile],
    ) -> Result<SessionReport, BackupError> {
        let mut report = SessionReport::new(self.name(), self.sessions);
        let mut clock = DedupClock::new();
        let mut manifest = Manifest::new(self.sessions as u64);

        for file in files {
            report.files_total += 1;
            report.logical_bytes += file.size();
            let data = file.read();
            let file_level = Self::file_level(*file);
            if file.size() < 10 * 1024 {
                report.files_tiny += 1;
            }
            let start = Instant::now();
            let mut chunks = Vec::new();
            if file_level {
                let fp = Fingerprint::compute(HashAlgorithm::Sha1, &data);
                report.chunks_total += 1;
                let outcome = self.file_index.lookup_classified(&fp);
                if outcome.touched_disk() {
                    clock.charge_disk_probes(1);
                    report.index_disk_reads += 1;
                }
                let reference = match outcome.entry() {
                    Some(e) => {
                        report.chunks_duplicate += 1;
                        ChunkRef { fingerprint: fp, len: data.len() as u32, container: e.container, offset: e.offset }
                    }
                    None => {
                        let p = self.containers.add_chunk(0, fp, &data);
                        self.file_index.insert(
                            fp,
                            ChunkEntry::new(data.len() as u64, p.container, p.offset),
                        );
                        report.stored_bytes += data.len() as u64;
                        ChunkRef { fingerprint: fp, len: data.len() as u32, container: p.container, offset: p.offset }
                    }
                };
                chunks.push(reference);
            } else {
                for span in self.cdc.chunk(&data) {
                    let bytes = span.slice(&data);
                    let fp = Fingerprint::compute(HashAlgorithm::Sha1, bytes);
                    report.chunks_total += 1;
                    let outcome = self.chunk_index.lookup_classified(&fp);
                    if outcome.touched_disk() {
                        clock.charge_disk_probes(1);
                        report.index_disk_reads += 1;
                    }
                    let reference = match outcome.entry() {
                        Some(e) => {
                            report.chunks_duplicate += 1;
                            ChunkRef { fingerprint: fp, len: bytes.len() as u32, container: e.container, offset: e.offset }
                        }
                        None => {
                            let p = self.containers.add_chunk(1, fp, bytes);
                            self.chunk_index.insert(
                                fp,
                                ChunkEntry::new(bytes.len() as u64, p.container, p.offset),
                            );
                            report.stored_bytes += bytes.len() as u64;
                            ChunkRef { fingerprint: fp, len: bytes.len() as u32, container: p.container, offset: p.offset }
                        }
                    };
                    chunks.push(reference);
                }
            }
            clock.add_cpu(start.elapsed());
            manifest.files.push(FileRecipe {
                path: file.path().to_string(),
                app: file.app_type(),
                tiny: file.size() < 10 * 1024,
                chunks,
            });
        }

        // Every byte of the dataset is read once from the source disk.
        clock.charge_source_read(report.logical_bytes);
        ship_session(&self.cloud, &mut self.containers, SCHEME_KEY, &manifest, &mut report)?;
        report.dedup_cpu = clock.total();
        self.sessions += 1;
        Ok(report)
    }

    fn restore_session(&self, session: usize) -> Result<Vec<RestoredFile>, BackupError> {
        restore_session(&self.cloud, SCHEME_KEY, session as u64)
    }

    fn sessions_completed(&self) -> usize {
        self.sessions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadedupe_filetype::MemoryFile;

    fn sources(files: &[MemoryFile]) -> Vec<&dyn SourceFile> {
        files.iter().map(|f| f as &dyn SourceFile).collect()
    }

    #[test]
    fn media_is_whole_file_documents_are_chunked() {
        let mut sam = Sam::new(CloudSim::with_paper_defaults());
        let files = vec![
            MemoryFile::new("song.mp3", vec![1u8; 100_000]),
            MemoryFile::new("paper.txt", b"text ".repeat(20_000)),
        ];
        let s0 = sam.backup_session(&sources(&files)).unwrap();
        // MP3 contributes exactly one "chunk"; TXT contributes many.
        assert!(s0.chunks_total > 5);
        let restored = sam.restore_session(0).unwrap();
        assert_eq!(restored[0].data, files[0].data);
        assert_eq!(restored[1].data, files[1].data);
    }

    #[test]
    fn tiny_files_dedupe_at_file_level() {
        let mut sam = Sam::new(CloudSim::with_paper_defaults());
        let files = vec![
            MemoryFile::new("a/cfg.txt", b"config".to_vec()),
            MemoryFile::new("b/cfg.txt", b"config".to_vec()),
        ];
        let s0 = sam.backup_session(&sources(&files)).unwrap();
        assert_eq!(s0.files_tiny, 2);
        assert_eq!(s0.chunks_duplicate, 1, "identical tiny files dedupe");
        assert_eq!(s0.stored_bytes, 6);
    }

    #[test]
    fn sub_file_redundancy_found_for_documents() {
        let mut sam = Sam::new(CloudSim::with_paper_defaults());
        let base: Vec<u8> = (0..150_000u32).map(|i| (i.wrapping_mul(48271) >> 9) as u8).collect();
        sam.backup_session(&sources(&[MemoryFile::new("d.doc", base.clone())])).unwrap();
        let mut edited = base.clone();
        edited.insert(100, 7);
        let s1 = sam
            .backup_session(&sources(&[MemoryFile::new("d.doc", edited)]))
            .unwrap();
        assert!(s1.stored_bytes < base.len() as u64 / 4);
    }

    #[test]
    fn compressed_edit_stores_whole_file_again() {
        let mut sam = Sam::new(CloudSim::with_paper_defaults());
        let base = vec![3u8; 80_000];
        sam.backup_session(&sources(&[MemoryFile::new("m.avi", base.clone())])).unwrap();
        let mut edited = base.clone();
        edited[40_000] ^= 1;
        let s1 = sam
            .backup_session(&sources(&[MemoryFile::new("m.avi", edited)]))
            .unwrap();
        assert_eq!(s1.stored_bytes, 80_000, "whole-file granularity for media");
    }
}
