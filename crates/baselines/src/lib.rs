#![forbid(unsafe_code)]
//! Baseline cloud backup schemes (paper §IV.A, §V).
//!
//! Clean-room reimplementations of the *strategies* the paper compares
//! AA-Dedupe against, built over the same substrates (chunking, hashing,
//! index, containers, cloud) so that every measured difference is due to
//! the strategy, exactly as in the paper's evaluation:
//!
//! * [`JungleDisk`] — file-*incremental* backup: no deduplication; files
//!   whose change token moved since the previous session are re-uploaded
//!   whole, one request per file.
//! * [`BackupPc`] — source *file-level* deduplication: every file is
//!   SHA-1-fingerprinted whole; only unseen files are uploaded (whole, one
//!   request per file).
//! * [`Avamar`] — source *chunk-level* deduplication: every file (any
//!   type) is CDC-chunked and SHA-1-fingerprinted against one monolithic
//!   chunk index; unique chunks are uploaded individually. Maximum space
//!   savings, maximum CPU/index/request overhead.
//! * [`Sam`] — the *hybrid* semantic-aware scheme: whole-file dedup for
//!   compressed files and tiny files, CDC chunk-level dedup for the rest,
//!   over global (monolithic) indexes; unique units uploaded individually.
//!
//! All four implement [`BackupScheme`](aadedupe_core::BackupScheme), so the
//! harness sweeps them interchangeably with AA-Dedupe.

pub mod avamar;
pub mod backuppc;
mod common;
pub mod jungledisk;
pub mod sam;

pub use avamar::Avamar;
pub use backuppc::BackupPc;
pub use jungledisk::JungleDisk;
pub use sam::Sam;

use aadedupe_cloud::CloudSim;
use aadedupe_core::{AaDedupe, AaDedupeConfig, BackupScheme};

/// Instantiates all five schemes of the paper's evaluation over fresh
/// engines sharing nothing, each with its own namespace in `cloud`.
pub fn all_schemes(cloud: &CloudSim) -> Vec<Box<dyn BackupScheme>> {
    all_schemes_with_ram(cloud, avamar::DEFAULT_RAM_ENTRIES)
}

/// Like [`all_schemes`] but under an explicit modelled RAM budget
/// (`ram_entries` cacheable index entries per client).
///
/// The budget is applied per *client*, matching how the paper's clients
/// compete: the monolithic schemes hold one index of that size; AA-Dedupe
/// gives the budget to each partition because only one application stream
/// is hot at a time (files are processed app-by-app, so at any moment a
/// single partition occupies the client's index RAM) -- this is exactly
/// the "small independent indices" effect of paper SIII.E.
pub fn all_schemes_with_ram(cloud: &CloudSim, ram_entries: usize) -> Vec<Box<dyn BackupScheme>> {
    let aa_config = AaDedupeConfig {
        ram_entries_per_partition: ram_entries,
        ..AaDedupeConfig::default()
    };
    vec![
        Box::new(JungleDisk::new(cloud.clone())),
        Box::new(BackupPc::with_ram(cloud.clone(), ram_entries)),
        Box::new(Avamar::with_ram(cloud.clone(), ram_entries)),
        Box::new(Sam::with_ram(cloud.clone(), ram_entries)),
        Box::new(AaDedupe::with_config(cloud.clone(), aa_config)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_schemes_with_distinct_names() {
        let cloud = CloudSim::with_paper_defaults();
        let schemes = all_schemes(&cloud);
        let names: Vec<&str> = schemes.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["Jungle Disk", "BackupPC", "Avamar", "SAM", "AA-Dedupe"]
        );
    }
}
