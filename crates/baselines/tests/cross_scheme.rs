//! Cross-scheme behavioural contracts.
//!
//! These tests pin the *strategy* differences the paper's evaluation
//! relies on, using hand-built workloads where the expected behaviour is
//! exactly computable.

use aadedupe_baselines::{Avamar, BackupPc, JungleDisk, Sam};
use aadedupe_cloud::CloudSim;
use aadedupe_core::{AaDedupe, BackupScheme};
use aadedupe_filetype::{MemoryFile, SourceFile};

fn sources(files: &[MemoryFile]) -> Vec<&dyn SourceFile> {
    files.iter().map(|f| f as &dyn SourceFile).collect()
}

/// A 1-byte in-place edit to a large static file.
fn edited(base: &[u8]) -> Vec<u8> {
    let mut v = base.to_vec();
    let mid = v.len() / 2;
    v[mid] ^= 0x80;
    v
}

#[test]
fn one_byte_edit_cost_ladder() {
    // The defining strategy difference: after a 1-byte in-place edit to a
    // 200 KB PDF, how much does each scheme store?
    let base: Vec<u8> = (0..200_000u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
    let v1 = vec![MemoryFile::new("big.pdf", base.clone())];
    let v2 = vec![MemoryFile::new("big.pdf", edited(&base))];

    let mut stored = std::collections::HashMap::new();
    macro_rules! run {
        ($name:expr, $scheme:expr) => {{
            let mut s = $scheme;
            s.backup_session(&sources(&v1)).unwrap();
            let r = s.backup_session(&sources(&v2)).unwrap();
            stored.insert($name, r.stored_bytes);
        }};
    }
    run!("jd", JungleDisk::new(CloudSim::with_paper_defaults()));
    run!("bp", BackupPc::new(CloudSim::with_paper_defaults()));
    run!("av", Avamar::new(CloudSim::with_paper_defaults()));
    run!("sam", Sam::new(CloudSim::with_paper_defaults()));
    run!("aa", AaDedupe::new(CloudSim::with_paper_defaults()));

    // Whole-file schemes re-store everything.
    assert_eq!(stored["jd"], 200_000);
    assert_eq!(stored["bp"], 200_000);
    // Chunk-level schemes store roughly one chunk.
    assert!(stored["av"] <= 20 * 1024, "avamar stored {}", stored["av"]);
    assert!(stored["sam"] <= 20 * 1024, "sam stored {}", stored["sam"]);
    // AA-Dedupe uses SC for PDFs: exactly one 8 KiB block differs.
    assert!(stored["aa"] <= 8 * 1024, "aa stored {}", stored["aa"]);
}

#[test]
fn media_edit_cost_is_whole_file_for_aa_and_sam() {
    // For compressed media, AA-Dedupe and SAM deliberately fall back to
    // whole-file granularity; only Avamar chunks it (and wastes CPU, per
    // Observation 1 — the redundancy it finds is negligible anyway).
    let base: Vec<u8> = (0..150_000u32).map(|i| (i.wrapping_mul(40503) >> 9) as u8).collect();
    let v1 = vec![MemoryFile::new("clip.avi", base.clone())];
    let v2 = vec![MemoryFile::new("clip.avi", edited(&base))];

    let mut aa = AaDedupe::new(CloudSim::with_paper_defaults());
    aa.backup_session(&sources(&v1)).unwrap();
    let aa_r = aa.backup_session(&sources(&v2)).unwrap();
    assert_eq!(aa_r.stored_bytes, 150_000, "WFC: whole file re-stored");

    let mut sam = Sam::new(CloudSim::with_paper_defaults());
    sam.backup_session(&sources(&v1)).unwrap();
    let sam_r = sam.backup_session(&sources(&v2)).unwrap();
    assert_eq!(sam_r.stored_bytes, 150_000);

    let mut av = Avamar::new(CloudSim::with_paper_defaults());
    av.backup_session(&sources(&v1)).unwrap();
    let av_r = av.backup_session(&sources(&v2)).unwrap();
    assert!(av_r.stored_bytes <= 20 * 1024);
}

#[test]
fn request_counts_reflect_aggregation() {
    // 50 distinct 4 KiB text files: Avamar/SAM pay ~one PUT per unit,
    // AA-Dedupe packs tiny files into ~one container.
    let files: Vec<MemoryFile> = (0..50)
        .map(|i| {
            MemoryFile::new(
                format!("notes/n{i}.txt"),
                format!("note {i} ").repeat(500).into_bytes(),
            )
        })
        .collect();

    let mut av = Avamar::new(CloudSim::with_paper_defaults());
    let av_r = av.backup_session(&sources(&files)).unwrap();
    let mut aa = AaDedupe::new(CloudSim::with_paper_defaults());
    let aa_r = aa.backup_session(&sources(&files)).unwrap();

    assert!(av_r.put_requests >= 50, "per-chunk uploads: {}", av_r.put_requests);
    assert!(
        aa_r.put_requests <= 6,
        "container aggregation should need only a few PUTs: {}",
        aa_r.put_requests
    );
    // Both restore fine.
    assert_eq!(av.restore_session(0).unwrap().len(), 50);
    assert_eq!(aa.restore_session(0).unwrap().len(), 50);
}

#[test]
fn rename_is_free_for_content_addressed_schemes_only() {
    let payload = b"stable content ".repeat(2000);
    let v1 = vec![MemoryFile::new("old_name.doc", payload.clone())];
    let v2 = vec![MemoryFile::new("new_name.doc", payload.clone())];

    // Jungle Disk keys on path: a rename is a full re-upload.
    let mut jd = JungleDisk::new(CloudSim::with_paper_defaults());
    jd.backup_session(&sources(&v1)).unwrap();
    let jd_r = jd.backup_session(&sources(&v2)).unwrap();
    assert_eq!(jd_r.stored_bytes, payload.len() as u64);

    // BackupPC keys on content: a rename stores nothing.
    let mut bp = BackupPc::new(CloudSim::with_paper_defaults());
    bp.backup_session(&sources(&v1)).unwrap();
    let bp_r = bp.backup_session(&sources(&v2)).unwrap();
    assert_eq!(bp_r.stored_bytes, 0);

    // AA-Dedupe likewise (chunks are content-addressed per app).
    let mut aa = AaDedupe::new(CloudSim::with_paper_defaults());
    aa.backup_session(&sources(&v1)).unwrap();
    let aa_r = aa.backup_session(&sources(&v2)).unwrap();
    assert_eq!(aa_r.stored_bytes, 0);
}

#[test]
fn dedup_cpu_ladder_on_mixed_workload() {
    // Avamar (CDC+SHA-1 over everything) must spend at least as much
    // dedup CPU as AA-Dedupe (WFC+Rabin on media, SC+MD5 on static) on a
    // media-heavy workload.
    let files: Vec<MemoryFile> = (0..4)
        .map(|i| {
            let mut x = 0x5DEECE66Du64.wrapping_mul(i as u64 + 1) | 1;
            MemoryFile::new(
                format!("m{i}.mp3"),
                (0..2_000_000)
                    .map(|_| { x ^= x << 13; x ^= x >> 7; x ^= x << 17; (x >> 32) as u8 })
                    .collect::<Vec<u8>>(),
            )
        })
        .collect();
    let mut av = Avamar::new(CloudSim::with_paper_defaults());
    let av_r = av.backup_session(&sources(&files)).unwrap();
    let mut aa = AaDedupe::new(CloudSim::with_paper_defaults());
    let aa_r = aa.backup_session(&sources(&files)).unwrap();
    // CDC + SHA-1 over every byte must cost more than one weak whole-file
    // fingerprint per file; generous margin so scheduler noise can't flake.
    assert!(
        av_r.dedup_cpu.as_secs_f64() > aa_r.dedup_cpu.as_secs_f64() * 1.2,
        "avamar {:?} vs aa {:?}",
        av_r.dedup_cpu,
        aa_r.dedup_cpu
    );
}
