//! The four rule families, file classification, and allow-comment
//! suppression.
//!
//! Rules operate on the token stream from [`crate::lexer`], so they can
//! never match inside strings or comments, and they consult a
//! test-region map so `#[cfg(test)]` modules and `#[test]` functions
//! are exempt from the library-code rules. Every rule is a linear token
//! pattern with a small amount of scope tracking — deliberately simple
//! enough to audit by reading, at the cost of being heuristic: a rule
//! that cannot be satisfied at a site that is genuinely correct is
//! silenced with `// aalint: allow(<rule>) -- <justification>`, which
//! the report inventories so suppressions stay visible.

use crate::lexer::{lex, Comment, Tok, TokKind};
use crate::report::{Allow, Diagnostic};

/// Crates whose code makes dedup decisions: chunk boundaries,
/// fingerprints, index placement, container layout. Nondeterminism here
/// breaks the serial≡parallel byte-reproducibility contract (DESIGN §8,
/// §11), so the determinism rules apply to these crates.
pub(crate) const DEDUP_DECISION_CRATES: &[&str] =
    &["core", "chunking", "hashing", "index", "container"];

/// Crates additionally covered by the unordered-iteration rule because
/// they shape report output (metrics) or observability snapshots (obs).
const OUTPUT_SHAPING_CRATES: &[&str] = &["metrics", "obs"];

/// Rules an allow comment may suppress. The unsafe rules and the allow
/// machinery's own diagnostics are deliberately not suppressible.
const SUPPRESSIBLE: &[&str] = &[
    "swallowed-result",
    "unwrap-in-lib",
    "nondeterministic-time",
    "unordered-iteration",
    "blocking-under-lock",
    "lock-order-cycle",
    "panic-path",
    "discarded-fallibility",
];

/// Iterator adapters whose result does not depend on iteration order,
/// and sorted collection targets: a HashMap/HashSet traversal whose
/// statement ends in one of these is order-safe.
const ORDER_INSENSITIVE: &[&str] = &[
    "sum", "count", "min", "max", "min_by", "max_by", "min_by_key", "max_by_key", "all", "any",
    "len", "is_empty", "sort", "sort_unstable", "sort_by", "sort_by_key", "sort_unstable_by",
    "sort_unstable_by_key", "BTreeMap", "BTreeSet", "BinaryHeap",
];

/// Methods that traverse a map/set in hash order.
const ITER_METHODS: &[&str] = &[
    "iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "into_keys", "into_values",
    "drain", "retain",
];

/// How a file participates in the scan, derived from its
/// workspace-relative path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// `crates/<name>/...` → `<name>`; root `src`/`tests` → `aa-dedupe`.
    pub crate_name: String,
    /// Integration tests, benches, examples: only the unsafe rules
    /// apply (panics and nondeterminism are fine in test harnesses).
    pub test_path: bool,
    /// Binary targets (`src/main.rs`, `src/bin/*`): exempt from
    /// `unwrap-in-lib` (a CLI aborting on startup is a policy choice),
    /// all other rules apply.
    pub bin_path: bool,
    /// `src/lib.rs` / `src/main.rs`: must carry `#![forbid(unsafe_code)]`.
    pub crate_root: bool,
}

/// Classifies `rel` (workspace-root-relative, `/`-separated). `None`
/// means the file is out of scope: vendored code, build artifacts, and
/// the lint fixture corpus (which exists to violate the rules).
pub fn classify(rel: &str) -> Option<FileClass> {
    if rel.starts_with("target/")
        || rel.starts_with("vendor/")
        || rel.starts_with('.')
        || rel.contains("/fixtures/")
    {
        return None;
    }
    if !rel.ends_with(".rs") {
        return None;
    }
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("aa-dedupe")
        .to_string();
    let test_path = rel.split('/').any(|seg| seg == "tests" || seg == "benches" || seg == "examples");
    let bin_path = rel.ends_with("/src/main.rs") || rel.contains("/src/bin/");
    let crate_root = rel.ends_with("/src/lib.rs")
        || rel.ends_with("/src/main.rs")
        || rel == "src/lib.rs"
        || rel == "src/main.rs";
    Some(FileClass { crate_name, test_path, bin_path, crate_root })
}

/// Scans one file's source text with the file-local rule families
/// (L1–L4). The interprocedural rules (L5–L7) need the whole workspace
/// and only run through [`crate::scan_workspace`]. Returns surviving
/// diagnostics plus the inventory of allow comments that suppressed
/// something.
pub fn scan_source(rel: &str, src: &str) -> (Vec<Diagnostic>, Vec<Allow>) {
    let Some(class) = classify(rel) else { return (Vec::new(), Vec::new()) };
    let (toks, comments) = lex(src);
    let test_ranges = test_line_ranges(&toks);
    let mut cands = file_candidates(rel, &class, &toks, &test_ranges);
    let (mut dirs, malformed) = parse_directives(rel, &toks, &comments);
    cands = suppress(cands, &mut dirs);
    cands.extend(malformed);
    let (allows, unused) = directive_hygiene(rel, dirs);
    cands.extend(unused);
    (cands, allows)
}

/// The file-local rule families (L1–L4), before allow suppression.
pub(crate) fn file_candidates(
    rel: &str,
    class: &FileClass,
    toks: &[Tok],
    test_ranges: &[(u32, u32)],
) -> Vec<Diagnostic> {
    let in_test = |line: u32| {
        class.test_path || test_ranges.iter().any(|&(a, b)| line >= a && line <= b)
    };

    let mut cands: Vec<Diagnostic> = Vec::new();
    let diag = |rule: &'static str, line: u32, message: String| Diagnostic {
        rule,
        file: rel.to_string(),
        line,
        message,
    };

    rule_swallowed_result(toks, &mut |line, msg| cands.push(diag("swallowed-result", line, msg)));
    if !class.bin_path {
        rule_unwrap_in_lib(toks, &mut |line, msg| cands.push(diag("unwrap-in-lib", line, msg)));
    }
    if DEDUP_DECISION_CRATES.contains(&class.crate_name.as_str()) {
        rule_nondet_time(toks, &mut |line, msg| {
            cands.push(diag("nondeterministic-time", line, msg));
        });
    }
    if DEDUP_DECISION_CRATES.contains(&class.crate_name.as_str())
        || OUTPUT_SHAPING_CRATES.contains(&class.crate_name.as_str())
    {
        rule_unordered_iteration(toks, &mut |line, msg| {
            cands.push(diag("unordered-iteration", line, msg));
        });
    }
    rule_blocking_under_lock(toks, &mut |line, msg| {
        cands.push(diag("blocking-under-lock", line, msg));
    });

    // The library rules do not apply inside test code; the unsafe rules
    // (added below) apply everywhere.
    cands.retain(|d| !in_test(d.line));

    for t in toks {
        if let TokKind::Ident(name) = &t.kind {
            if name == "unsafe" {
                cands.push(diag(
                    "unsafe-code",
                    t.line,
                    "`unsafe` is forbidden outside vendor/ (L4); move the code behind a \
                     safe abstraction or into a vendored shim"
                        .into(),
                ));
            }
        }
    }
    if class.crate_root && !has_forbid_unsafe(toks) {
        cands.push(diag(
            "missing-forbid-unsafe",
            1,
            "crate root lacks `#![forbid(unsafe_code)]` (L4)".into(),
        ));
    }

    cands
}

/// Matches `forbid ( unsafe_code )` anywhere in the token stream (the
/// attribute form `#![forbid(unsafe_code)]` is the only way this
/// sequence occurs in real code).
fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    toks.windows(4).any(|w| {
        ident_is(&w[0], "forbid")
            && punct_is(&w[1], '(')
            && ident_is(&w[2], "unsafe_code")
            && punct_is(&w[3], ')')
    })
}

fn ident_is(t: &Tok, name: &str) -> bool {
    matches!(&t.kind, TokKind::Ident(s) if s == name)
}

pub(crate) fn ident_of(t: &Tok) -> Option<&str> {
    match &t.kind {
        TokKind::Ident(s) => Some(s),
        _ => None,
    }
}

pub(crate) fn punct_is(t: &Tok, c: char) -> bool {
    t.kind == TokKind::Punct(c)
}

/// Line ranges (inclusive) of `#[cfg(test)]` / `#[test]`-attributed
/// items, so library rules skip unit-test modules embedded in src files.
pub(crate) fn test_line_ranges(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if punct_is(&toks[i], '#') && i + 1 < toks.len() && punct_is(&toks[i + 1], '[') {
            let start_line = toks[i].line;
            let (attr, after) = balanced(toks, i + 1, '[', ']');
            if attr_marks_test(attr) {
                if let Some(end_line) = item_end_line(toks, after) {
                    ranges.push((start_line, end_line));
                }
            }
            i = after;
            continue;
        }
        i += 1;
    }
    ranges
}

/// True for `#[test]`, `#[xxx::test]`, and `#[cfg(...test...)]` (but
/// not `#[cfg(not(test))]` or `#[cfg_attr(test, ...)]`, which attach to
/// code that is also compiled outside tests).
fn attr_marks_test(attr: &[Tok]) -> bool {
    let mut idents = attr.iter().filter_map(ident_of);
    match idents.next() {
        Some("cfg") => {
            attr.iter().filter_map(ident_of).any(|s| s == "test")
                && !attr.iter().filter_map(ident_of).any(|s| s == "not")
        }
        Some("cfg_attr") | None => false,
        Some(first) => {
            // `#[test]` or a path ending in `::test` before any `(`.
            let mut last = first;
            for t in &attr[1..] {
                match &t.kind {
                    TokKind::Ident(s) => last = s,
                    TokKind::Punct(':') => {}
                    _ => break,
                }
            }
            last == "test"
        }
    }
}

/// Tokens inside one balanced `open..close` pair starting at `start`
/// (which must hold `open`); returns (inner tokens, index after close).
fn balanced(toks: &[Tok], start: usize, open: char, close: char) -> (&[Tok], usize) {
    let mut depth = 0usize;
    let mut i = start;
    while i < toks.len() {
        if punct_is(&toks[i], open) {
            depth += 1;
        } else if punct_is(&toks[i], close) {
            depth -= 1;
            if depth == 0 {
                return (&toks[start + 1..i], i + 1);
            }
        }
        i += 1;
    }
    (&toks[start..start], toks.len())
}

/// Finds the end line of the item following index `i`: skips further
/// attributes, then either a `{...}` body (matching brace) or a `;`.
fn item_end_line(toks: &[Tok], mut i: usize) -> Option<u32> {
    while i + 1 < toks.len() && punct_is(&toks[i], '#') && punct_is(&toks[i + 1], '[') {
        let (_, after) = balanced(toks, i + 1, '[', ']');
        i = after;
    }
    while i < toks.len() {
        if punct_is(&toks[i], ';') {
            return Some(toks[i].line);
        }
        if punct_is(&toks[i], '{') {
            let mut depth = 0usize;
            while i < toks.len() {
                if punct_is(&toks[i], '{') {
                    depth += 1;
                } else if punct_is(&toks[i], '}') {
                    depth -= 1;
                    if depth == 0 {
                        return Some(toks[i].line);
                    }
                }
                i += 1;
            }
            return Some(toks.last()?.line);
        }
        i += 1;
    }
    None
}

/// L1a: `let _ = <expr containing a call>;` and L1b: a statement
/// discarded with a trailing `.ok();`.
fn rule_swallowed_result(toks: &[Tok], emit: &mut impl FnMut(u32, String)) {
    let mut i = 0usize;
    while i < toks.len() {
        if ident_is(&toks[i], "let")
            && i + 2 < toks.len()
            && ident_is(&toks[i + 1], "_")
            && punct_is(&toks[i + 2], '=')
        {
            let mut j = i + 3;
            let mut depth = 0i32;
            let mut has_call = false;
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => {
                        if punct_is(&toks[j], '(') {
                            has_call = true;
                        }
                        depth += 1;
                    }
                    TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
                    TokKind::Punct(';') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if has_call {
                emit(
                    toks[i].line,
                    "`let _ =` discards a call result (L1); handle the error, or justify \
                     with `// aalint: allow(swallowed-result) -- <why>`"
                        .into(),
                );
            }
            i = j;
            continue;
        }
        i += 1;
    }

    // `.ok();` as the tail of an expression statement.
    let mut stmt_start = 0usize;
    for i in 0..toks.len() {
        match &toks[i].kind {
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => stmt_start = i + 1,
            TokKind::Ident(name)
                if name == "ok"
                    && i >= 1
                    && punct_is(&toks[i - 1], '.')
                    && i + 3 < toks.len()
                    && punct_is(&toks[i + 1], '(')
                    && punct_is(&toks[i + 2], ')')
                    && punct_is(&toks[i + 3], ';') =>
            {
                let head = &toks[stmt_start..i];
                let binds = head.first().is_some_and(|t| {
                    ident_is(t, "let") || ident_is(t, "return") || ident_is(t, "break")
                });
                let assigns = head.iter().any(|t| punct_is(t, '='));
                if !binds && !assigns {
                    emit(
                        toks[i].line,
                        "`.ok();` swallows a `Result` (L1); handle the error, or justify \
                         with `// aalint: allow(swallowed-result) -- <why>`"
                            .into(),
                    );
                }
            }
            _ => {}
        }
    }
}

/// L1c: `.unwrap()` / `.expect(` in library (non-bin, non-test) code.
fn rule_unwrap_in_lib(toks: &[Tok], emit: &mut impl FnMut(u32, String)) {
    for i in 1..toks.len().saturating_sub(1) {
        if !punct_is(&toks[i - 1], '.') || !punct_is(&toks[i + 1], '(') {
            continue;
        }
        let Some(name) = ident_of(&toks[i]) else { continue };
        if name == "unwrap" || name == "expect" {
            emit(
                toks[i].line,
                format!(
                    "`.{name}()` can panic in library code (L1); propagate the error, or \
                     justify with `// aalint: allow(unwrap-in-lib) -- <why>`"
                ),
            );
        }
    }
}

/// L2a: wall-clock or thread-identity reads inside dedup-decision
/// crates (`SystemTime::now`, `Instant::now`, `thread::current`).
fn rule_nondet_time(toks: &[Tok], emit: &mut impl FnMut(u32, String)) {
    for i in 0..toks.len().saturating_sub(3) {
        let Some(head) = ident_of(&toks[i]) else { continue };
        if !punct_is(&toks[i + 1], ':') || !punct_is(&toks[i + 2], ':') {
            continue;
        }
        let Some(tail) = ident_of(&toks[i + 3]) else { continue };
        let bad = matches!((head, tail), ("SystemTime", "now") | ("Instant", "now") | ("thread", "current"));
        if bad {
            emit(
                toks[i].line,
                format!(
                    "`{head}::{tail}` in a dedup-decision crate (L2): wall-clock and \
                     thread identity must not influence chunking, fingerprints, index or \
                     container layout; route timing through the obs Recorder gate, or \
                     justify with `// aalint: allow(nondeterministic-time) -- <why>`"
                ),
            );
        }
    }
}

/// L2b: iteration over a `HashMap`/`HashSet` binding with no
/// order-insensitive sink in the same statement.
fn rule_unordered_iteration(toks: &[Tok], emit: &mut impl FnMut(u32, String)) {
    // Pass 1: names declared with a HashMap/HashSet type anywhere in the
    // file — `let m = HashMap::new()`, `m: HashMap<..>` (field, param,
    // or annotated let).
    let mut names: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        let Some(name) = ident_of(&toks[i]) else { continue };
        if name == "HashMap" || name == "HashSet" {
            // Walk back past the type context to the introducing ident.
            let mut j = i;
            let mut guard = 0usize;
            while j > 0 && guard < 24 {
                j -= 1;
                guard += 1;
                if let Some(prev) = ident_of(&toks[j]) {
                    if prev == "let" || prev == "mut" {
                        continue;
                    }
                    if prev == "HashMap" || prev == "HashSet" || prev == "impl" || prev == "for" {
                        break;
                    }
                    // `name :` or `name =` introduce the binding.
                    let next_is_intro = toks
                        .get(j + 1)
                        .is_some_and(|t| punct_is(t, ':') || punct_is(t, '='));
                    if next_is_intro && !names.iter().any(|n| n == prev) {
                        names.push(prev.to_string());
                    }
                    break;
                }
                match &toks[j].kind {
                    TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => break,
                    _ => {}
                }
            }
        }
    }

    // Pass 2: traversals of those names.
    for i in 0..toks.len() {
        let Some(name) = ident_of(&toks[i]) else { continue };
        if !names.iter().any(|n| n == name) {
            continue;
        }
        // `name.iter()` and friends.
        let method_hit = toks.get(i + 1).is_some_and(|t| punct_is(t, '.'))
            && toks
                .get(i + 2)
                .and_then(ident_of)
                .is_some_and(|m| ITER_METHODS.contains(&m));
        // `for x in name {` / `for x in &name {` / `&mut name {`.
        let loop_hit = toks.get(i + 1).is_some_and(|t| punct_is(t, '{')) && {
            let mut j = i;
            if j > 0 && ident_is(&toks[j - 1], "mut") {
                j -= 1;
            }
            if j > 0 && punct_is(&toks[j - 1], '&') {
                j -= 1;
            }
            j > 0 && ident_is(&toks[j - 1], "in")
        };
        if !method_hit && !loop_hit {
            continue;
        }
        if method_hit && statement_is_order_insensitive(toks, i) {
            continue;
        }
        emit(
            toks[i].line,
            format!(
                "iteration over hash-ordered `{name}` (L2): anything feeding manifests, \
                 container layout, or report output must sort first (collect + sort, or a \
                 BTree collection), or justify with \
                 `// aalint: allow(unordered-iteration) -- <why>`"
            ),
        );
    }
}

/// Does the statement containing index `i` end in an order-insensitive
/// reduction or a sorted collection — or is the traversal immediately
/// followed by a sorting statement (`let mut v = m.iter()...collect();
/// v.sort();`, the canonical intervening-sort fix)?
fn statement_is_order_insensitive(toks: &[Tok], i: usize) -> bool {
    let mut j = i;
    let mut depth = 0i32;
    let mut semis = 0u8;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            // A bare `{` is a loop/match body: the chain ended without a
            // sink. Braces inside call arguments (closures) sit at
            // depth > 0 and pass through.
            TokKind::Punct('{') => {
                if depth == 0 {
                    break;
                }
                depth += 1;
            }
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            TokKind::Punct(';') if depth <= 0 => {
                // Look one statement ahead for the intervening sort.
                semis += 1;
                if semis == 2 {
                    break;
                }
            }
            // Past the first `;` only a sort counts: `sum` in the next
            // statement says nothing about this traversal.
            TokKind::Ident(s)
                if ORDER_INSENSITIVE.contains(&s.as_str())
                    && (semis == 0 || s.starts_with("sort")) =>
            {
                return true;
            }
            _ => {}
        }
        j += 1;
    }
    false
}

/// L3: a blocking channel/thread operation (`send`, `recv`,
/// `recv_timeout`, argument-less `join`) while a `MutexGuard` binding
/// is live in the same scope — the deadlock shape the pipeline topology
/// must never grow.
fn rule_blocking_under_lock(toks: &[Tok], emit: &mut impl FnMut(u32, String)) {
    struct Guard {
        name: String,
        depth: i32,
        line: u32,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            TokKind::Ident(kw) if kw == "let" => {
                // `let [mut] name = ...;` — a lock() in the initializer
                // makes `name` a guard; any other initializer shadows it.
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| ident_is(t, "mut")) {
                    j += 1;
                }
                if let Some(name) = toks.get(j).and_then(ident_of) {
                    if toks.get(j + 1).is_some_and(|t| punct_is(t, '=')) {
                        let mut k = j + 2;
                        let mut d = 0i32;
                        let mut lock_seen = false;
                        // `lock()` in tail position (only unwrap/expect/
                        // poison-recovery adapters after it) binds a guard
                        // to `name`; a mid-chain `lock()` produces a
                        // temporary guard that dies at the `;`, so the
                        // binding is NOT tracked — but a blocking call
                        // later in that same chain holds the temporary
                        // across it and flags here.
                        let mut tail = false;
                        let mut chained_block: Option<(u32, String)> = None;
                        while k < toks.len() {
                            match &toks[k].kind {
                                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => d += 1,
                                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => d -= 1,
                                TokKind::Punct(';') if d <= 0 => break,
                                TokKind::Ident(m) if k >= 1 && punct_is(&toks[k - 1], '.') => {
                                    if m == "lock" {
                                        lock_seen = true;
                                        tail = true;
                                    } else if lock_seen
                                        && !matches!(
                                            m.as_str(),
                                            "unwrap" | "expect" | "unwrap_or_else" | "into_inner"
                                        )
                                    {
                                        tail = false;
                                        let argless_join = m == "join"
                                            && toks.get(k + 1).is_some_and(|t| punct_is(t, '('))
                                            && toks.get(k + 2).is_some_and(|t| punct_is(t, ')'));
                                        let blocking =
                                            matches!(m.as_str(), "send" | "recv" | "recv_timeout")
                                                || argless_join;
                                        if blocking && chained_block.is_none() {
                                            chained_block = Some((toks[k].line, m.clone()));
                                        }
                                    }
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                        guards.retain(|g| g.name != *name);
                        if lock_seen && tail {
                            guards.push(Guard {
                                name: name.to_string(),
                                depth,
                                line: toks[i].line,
                            });
                        }
                        if let Some((line, m)) = chained_block {
                            emit(
                                line,
                                format!(
                                    "blocking `.{m}()` chained onto a temporary MutexGuard \
                                     (L3): the lock is held across the blocking call; split \
                                     the statement, or justify with \
                                     `// aalint: allow(blocking-under-lock) -- <why>`"
                                ),
                            );
                        }
                        // Resume just after the `=`: the initializer is
                        // re-scanned so a blocking call inside it (`let v
                        // = rx.recv();` under a live guard) still flags.
                        i = j + 2;
                        continue;
                    }
                }
            }
            TokKind::Ident(kw)
                if kw == "drop"
                    && toks.get(i + 1).is_some_and(|t| punct_is(t, '('))
                    && toks.get(i + 3).is_some_and(|t| punct_is(t, ')')) =>
            {
                if let Some(name) = toks.get(i + 2).and_then(ident_of) {
                    guards.retain(|g| g.name != name);
                }
            }
            TokKind::Ident(m)
                if !guards.is_empty()
                    && i >= 1
                    && punct_is(&toks[i - 1], '.')
                    && toks.get(i + 1).is_some_and(|t| punct_is(t, '(')) =>
            {
                let blocking = matches!(m.as_str(), "send" | "recv" | "recv_timeout")
                    || (m == "join" && toks.get(i + 2).is_some_and(|t| punct_is(t, ')')));
                if blocking {
                    let g = &guards[guards.len() - 1];
                    emit(
                        toks[i].line,
                        format!(
                            "blocking `.{m}()` while MutexGuard `{g}` (declared line {l}) is \
                             live (L3): drop the guard first, or justify with \
                             `// aalint: allow(blocking-under-lock) -- <why>`",
                            g = g.name,
                            l = g.line
                        ),
                    );
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// One parsed allow directive. The `used` flag is set by whichever
/// rule family (file-local or interprocedural) the directive ends up
/// suppressing; directives still unused after every pass become
/// `unused-allow` diagnostics in [`directive_hygiene`].
pub(crate) struct Directive {
    pub rule: String,
    pub comment_line: u32,
    pub target_line: u32,
    pub justification: String,
    pub used: bool,
}

/// Parses the allow comments of one file. Returns the directives plus
/// `malformed-allow` diagnostics.
pub(crate) fn parse_directives(
    rel: &str,
    toks: &[Tok],
    comments: &[Comment],
) -> (Vec<Directive>, Vec<Diagnostic>) {
    let mut directives: Vec<Directive> = Vec::new();
    let mut extra: Vec<Diagnostic> = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("aalint:") else { continue };
        let malformed = |msg: &str| Diagnostic {
            rule: "malformed-allow",
            file: rel.to_string(),
            line: c.line,
            message: format!(
                "{msg}; expected `// aalint: allow(<rule>) -- <justification>` with rule \
                 in {SUPPRESSIBLE:?}"
            ),
        };
        let rest = rest.trim();
        let Some(args) = rest.strip_prefix("allow").map(str::trim_start) else {
            extra.push(malformed("unknown aalint directive"));
            continue;
        };
        let Some(open) = args.strip_prefix('(') else {
            extra.push(malformed("missing `(` after allow"));
            continue;
        };
        let Some(close_at) = open.find(')') else {
            extra.push(malformed("unterminated allow(...)"));
            continue;
        };
        let (rule_list, after) = open.split_at(close_at);
        let after = after[1..].trim();
        let Some(justification) = after.strip_prefix("--").map(str::trim) else {
            extra.push(malformed("missing `-- <justification>`"));
            continue;
        };
        if justification.is_empty() {
            extra.push(malformed("empty justification"));
            continue;
        }
        let target_line = if c.trailing {
            c.line
        } else {
            toks.iter().map(|t| t.line).find(|&l| l > c.line).unwrap_or(c.line)
        };
        let mut any = false;
        for rule in rule_list.split(',').map(str::trim).filter(|r| !r.is_empty()) {
            if !SUPPRESSIBLE.contains(&rule) {
                extra.push(malformed(&format!("`{rule}` is not a suppressible rule")));
                continue;
            }
            any = true;
            directives.push(Directive {
                rule: rule.to_string(),
                comment_line: c.line,
                target_line,
                justification: justification.to_string(),
                used: false,
            });
        }
        if !any && rule_list.trim().is_empty() {
            extra.push(malformed("empty rule list"));
        }
    }
    (directives, extra)
}

/// Drops candidates a directive targets, marking those directives used.
pub(crate) fn suppress(mut cands: Vec<Diagnostic>, dirs: &mut [Directive]) -> Vec<Diagnostic> {
    cands.retain(|d| {
        for dir in dirs.iter_mut() {
            if dir.rule == d.rule && dir.target_line == d.line {
                dir.used = true;
                return false;
            }
        }
        true
    });
    cands
}

/// Final accounting for one file's directives: used ones enter the
/// allow inventory, unused ones are diagnostics (this covers the
/// interprocedural rules too — the workspace pass marks the directives
/// it consumed before this runs).
pub(crate) fn directive_hygiene(
    rel: &str,
    dirs: Vec<Directive>,
) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut unused = Vec::new();
    for dir in dirs {
        if dir.used {
            allows.push(Allow {
                rule: dir.rule,
                file: rel.to_string(),
                line: dir.comment_line,
                justification: dir.justification,
            });
        } else {
            unused.push(Diagnostic {
                rule: "unused-allow",
                file: rel.to_string(),
                line: dir.comment_line,
                message: format!(
                    "`allow({})` suppresses nothing on line {}; remove it or move it onto \
                     the offending line",
                    dir.rule, dir.target_line
                ),
            });
        }
    }
    (allows, unused)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(rel: &str, src: &str) -> Vec<(String, u32)> {
        scan_source(rel, src).0.into_iter().map(|d| (d.rule.to_string(), d.line)).collect()
    }

    const CORE: &str = "crates/core/src/x.rs";

    #[test]
    fn classify_scopes_paths() {
        assert!(classify("vendor/bytes/src/lib.rs").is_none());
        assert!(classify("target/debug/build/x.rs").is_none());
        assert!(classify("crates/lint/tests/fixtures/bad.rs").is_none());
        let c = classify("crates/core/src/engine.rs").unwrap();
        assert_eq!(c.crate_name, "core");
        assert!(!c.test_path && !c.bin_path && !c.crate_root);
        assert!(classify("tests/end_to_end.rs").unwrap().test_path);
        assert!(classify("crates/cli/src/main.rs").unwrap().bin_path);
        assert!(classify("crates/bench/src/bin/evaluation.rs").unwrap().bin_path);
        assert!(classify("src/lib.rs").unwrap().crate_root);
    }

    #[test]
    fn swallowed_result_flags_call_discards_only() {
        let hits = diags(CORE, "#![forbid(unsafe_code)]\nfn f() { let _ = g(); let _ = x; }\n");
        assert_eq!(hits, vec![("swallowed-result".into(), 2)]);
    }

    #[test]
    fn ok_discard_flagged_but_bound_ok_is_fine() {
        let src = "#![forbid(unsafe_code)]\nfn f() { tx.send(1).ok(); let v = g().ok(); }\n";
        assert_eq!(diags(CORE, src), vec![("swallowed-result".into(), 2)]);
    }

    #[test]
    fn unwrap_flagged_outside_tests_only() {
        let src = "#![forbid(unsafe_code)]\nfn f() { x.unwrap(); }\n#[cfg(test)]\nmod t {\n fn g() { y.unwrap(); }\n}\n";
        assert_eq!(diags(CORE, src), vec![("unwrap-in-lib".into(), 2)]);
        // bins are exempt
        assert!(diags("crates/cli/src/main.rs", "#![forbid(unsafe_code)]\nfn f() { x.unwrap(); }\n").is_empty());
    }

    #[test]
    fn nondet_time_only_in_dedup_crates() {
        let src = "#![forbid(unsafe_code)]\nfn f() { let t = Instant::now(); }\n";
        assert_eq!(diags(CORE, src), vec![("nondeterministic-time".into(), 2)]);
        assert!(diags("crates/cloud/src/x.rs", src).is_empty());
    }

    #[test]
    fn unordered_iteration_respects_sorted_sinks() {
        let src = "#![forbid(unsafe_code)]\nfn f(m: HashMap<u32, u32>) {\n\
                   let a: u32 = m.values().sum();\n\
                   for v in m.values() { emit(v); }\n}\n";
        assert_eq!(diags(CORE, src), vec![("unordered-iteration".into(), 4)]);
    }

    #[test]
    fn collect_then_sort_next_statement_is_accepted() {
        let src = "#![forbid(unsafe_code)]\nfn f(m: HashMap<u32, u32>) {\n\
                   let mut v: Vec<u32> = m.keys().copied().collect();\n\
                   v.sort_unstable();\n}\n\
                   fn g(m: HashMap<u32, u32>) {\n\
                   let v: Vec<u32> = m.keys().copied().collect();\n\
                   emit(v);\n}\n";
        assert_eq!(diags(CORE, src), vec![("unordered-iteration".into(), 7)]);
    }

    #[test]
    fn bare_for_loop_over_map_is_flagged() {
        let src = "#![forbid(unsafe_code)]\nfn f() { let mut m = HashMap::new(); for x in &m { g(x); } }\n";
        assert_eq!(diags(CORE, src), vec![("unordered-iteration".into(), 2)]);
    }

    #[test]
    fn blocking_under_lock_lifecycle() {
        let src = "#![forbid(unsafe_code)]\nfn f() {\n let g = m.lock();\n rx.recv();\n drop(g);\n rx.recv();\n}\n\
                   fn h() {\n { let g = m.lock(); }\n tx.send(1);\n}\n";
        assert_eq!(diags(CORE, src), vec![("blocking-under-lock".into(), 4)]);
    }

    #[test]
    fn midchain_lock_flags_once_and_binding_is_not_a_guard() {
        // The spmc idiom: the temporary guard is held across `.recv()`
        // (flag it at the statement), but `job` is a plain value — a
        // later send must NOT be reported against it.
        let src = "#![forbid(unsafe_code)]\nfn f() {\n\
                   let job = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner).recv();\n\
                   tx.send(job);\n}\n";
        assert_eq!(diags(CORE, src), vec![("blocking-under-lock".into(), 3)]);
    }

    #[test]
    fn tail_lock_with_poison_recovery_is_a_guard() {
        let src = "#![forbid(unsafe_code)]\nfn f() {\n\
                   let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
                   rx.recv();\n}\n";
        assert_eq!(diags(CORE, src), vec![("blocking-under-lock".into(), 4)]);
    }

    #[test]
    fn join_needs_empty_parens() {
        let src = "#![forbid(unsafe_code)]\nfn f() { let g = m.lock(); let p = path.join(name); h.join(); }\n";
        assert_eq!(diags(CORE, src), vec![("blocking-under-lock".into(), 2)]);
    }

    #[test]
    fn unsafe_flagged_everywhere_even_tests() {
        let src = "#![forbid(unsafe_code)]\nfn f() { unsafe { x() } }\n";
        assert_eq!(diags("tests/e2e.rs", src), vec![("unsafe-code".into(), 2)]);
    }

    #[test]
    fn crate_root_needs_forbid() {
        assert_eq!(diags("crates/core/src/lib.rs", "pub fn f() {}\n"), vec![("missing-forbid-unsafe".into(), 1)]);
        assert!(diags("crates/core/src/lib.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n").is_empty());
    }

    #[test]
    fn allow_suppresses_and_is_inventoried() {
        let src = "#![forbid(unsafe_code)]\nfn f() {\n\
                   let _ = g(); // aalint: allow(swallowed-result) -- best effort\n}\n";
        let (d, a) = scan_source(CORE, src);
        assert!(d.is_empty());
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].rule, "swallowed-result");
        assert_eq!(a[0].justification, "best effort");
    }

    #[test]
    fn standalone_allow_covers_next_line() {
        let src = "#![forbid(unsafe_code)]\nfn f() {\n\
                   // aalint: allow(unwrap-in-lib) -- invariant: non-empty\n\
                   x.unwrap();\n}\n";
        let (d, a) = scan_source(CORE, src);
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn malformed_and_unused_allows_are_diagnosed() {
        let src = "#![forbid(unsafe_code)]\n// aalint: allow(unwrap-in-lib)\n\
                   // aalint: allow(nope) -- x\n\
                   // aalint: allow(unwrap-in-lib) -- nothing here\nfn f() {}\n";
        let rules: Vec<_> = diags(CORE, src).into_iter().map(|(r, _)| r).collect();
        assert!(rules.contains(&"malformed-allow".to_string()));
        assert!(rules.contains(&"unused-allow".to_string()));
    }

    #[test]
    fn allow_cannot_silence_unsafe() {
        let src = "#![forbid(unsafe_code)]\nfn f() { unsafe { x() } // aalint: allow(unsafe-code) -- no\n}\n";
        let rules: Vec<_> = diags(CORE, src).into_iter().map(|(r, _)| r).collect();
        assert!(rules.contains(&"unsafe-code".to_string()));
        assert!(rules.contains(&"malformed-allow".to_string()));
    }
}
