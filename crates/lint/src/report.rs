//! Diagnostics, the allow-comment inventory, and report output.
//!
//! Output is deterministic by construction: diagnostics and allows are
//! sorted by (file, line, rule) before emission, and the JSON emitter
//! writes keys in a fixed order — the same tree always serializes to
//! the same bytes, so reports are diffable and golden-testable.
//!
//! String building uses `push_str(&format!(..))` rather than `write!`:
//! `fmt::Write` returns a `Result` that can only be discarded, and the
//! tool holds itself to its own swallowed-result rule.

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule slug (`swallowed-result`, `nondeterministic-time`, ...).
    pub rule: &'static str,
    /// Workspace-root-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

/// One `// aalint: allow(<rule>) -- <justification>` comment that
/// suppressed at least one diagnostic. The report inventories these so
/// every suppression stays visible and justified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    pub rule: String,
    pub file: String,
    /// Line of the comment itself.
    pub line: u32,
    pub justification: String,
}

/// Call-graph statistics from the interprocedural pass (L5–L7): how
/// much of the workspace the graph saw, and how widely may-panic taint
/// spread. Zero in single-file scans, which never build the graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// `fn` definitions (graph nodes), test code included.
    pub nodes: usize,
    /// Resolved caller→callee pairs (deduplicated).
    pub edges: usize,
    /// Functions from which a panic leaf is reachable.
    pub panic_tainted: usize,
}

/// Full scan result.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub graph: GraphStats,
    pub diagnostics: Vec<Diagnostic>,
    pub allows: Vec<Allow>,
}

impl Report {
    /// True when the scan produced no diagnostics.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Canonical order: by file, then line, then rule.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.allows
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    }

    /// Human-readable listing: one `file:line: [rule] message` per
    /// diagnostic, then the allow inventory, then a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{}:{}: [{}] {}\n", d.file, d.line, d.rule, d.message));
        }
        if !self.allows.is_empty() {
            out.push_str(&format!("\nallow inventory ({} suppressions):\n", self.allows.len()));
            for a in &self.allows {
                out.push_str(&format!(
                    "  {}:{}: allow({}) -- {}\n",
                    a.file, a.line, a.rule, a.justification
                ));
            }
        }
        out.push_str(&format!(
            "\n{} file(s) scanned, {} diagnostic(s), {} allow(s)\n",
            self.files_scanned,
            self.diagnostics.len(),
            self.allows.len()
        ));
        out.push_str(&format!(
            "call graph: {} fn(s), {} edge(s), {} panic-tainted\n",
            self.graph.nodes, self.graph.edges, self.graph.panic_tainted
        ));
        out
    }

    /// Machine-readable JSON (stable key order, sorted entries).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"version\": 2,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"graph\": {{\"nodes\": {}, \"edges\": {}, \"panic_tainted\": {}}},\n",
            self.graph.nodes, self.graph.edges, self.graph.panic_tainted
        ));
        out.push_str(&format!("  \"clean\": {},\n", self.clean()));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(d.rule),
                json_str(&d.file),
                d.line,
                json_str(&d.message)
            ));
        }
        out.push_str(if self.diagnostics.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"allows\": [");
        for (i, a) in self.allows.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"justification\": {}}}",
                json_str(&a.rule),
                json_str(&a.file),
                a.line,
                json_str(&a.justification)
            ));
        }
        out.push_str(if self.allows.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }
}

/// JSON string literal with the escapes the report can actually contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_stable_and_escaped() {
        let mut r = Report { files_scanned: 2, ..Default::default() };
        r.diagnostics.push(Diagnostic {
            rule: "unsafe-code",
            file: "b.rs".into(),
            line: 3,
            message: "say \"no\"".into(),
        });
        r.diagnostics.push(Diagnostic {
            rule: "swallowed-result",
            file: "a.rs".into(),
            line: 9,
            message: "x".into(),
        });
        r.sort();
        let j = r.render_json();
        assert_eq!(r.diagnostics[0].file, "a.rs", "sorted by file first");
        assert!(j.contains("\\\"no\\\""));
        assert!(j.contains("\"clean\": false"));
        assert_eq!(j, r.render_json(), "deterministic bytes");
    }

    #[test]
    fn empty_report_is_clean() {
        let r = Report::default();
        assert!(r.clean());
        assert!(r.render_json().contains("\"clean\": true"));
    }
}
