#![forbid(unsafe_code)]
//! `aalint` — workspace-native static analysis for AA-Dedupe.
//!
//! Enforces, at the source level and on every commit, the two
//! hardest-won invariants of this codebase plus two hygiene contracts
//! (DESIGN §12 catalogs the rules; §8/§11 state the contracts they
//! guard):
//!
//! - **L1 `swallowed-result` / `unwrap-in-lib`** — no storage or I/O
//!   error is ever silently dropped (`let _ = call(...)`, trailing
//!   `.ok();`), and library code never panics where it should
//!   propagate.
//! - **L2 `nondeterministic-time` / `unordered-iteration`** — dedup
//!   decisions (chunk boundaries, fingerprints, index placement,
//!   container layout) are byte-reproducible: no wall-clock or
//!   thread-identity reads in decision crates, no hash-order traversal
//!   feeding manifests, layout, or reports without a sort.
//! - **L3 `blocking-under-lock`** — no blocking channel/thread call
//!   while a `MutexGuard` is live in the same scope.
//! - **L4 `unsafe-code` / `missing-forbid-unsafe`** — `unsafe` only in
//!   `vendor/`; every first-party crate root carries
//!   `#![forbid(unsafe_code)]`.
//!
//! A second pass ([`graph`]) lexes no new source: it resolves a
//! conservative whole-workspace call graph (name + arity, bounded by
//! the Cargo dependency DAG, dev-dependencies and test functions
//! excluded) from the same token streams and runs three
//! interprocedural rules (DESIGN §17):
//!
//! - **L5 `lock-order-cycle`** — two locks acquired in opposite orders
//!   on any pair of call paths (per-call-site transitive resolution).
//! - **L6 `panic-path`** — a public API of a decision crate (`core`,
//!   `chunking`, `hashing`, `index`, `container`) reaches an unvetted
//!   panic leaf (`unwrap`/`expect`/`panic!`/indexing) through any call
//!   chain.
//! - **L7 `discarded-fallibility`** — a caller of the object-store
//!   fallible surface (`put`/`get`/`delete`) does not itself return
//!   `Result`, so the error cannot propagate.
//!
//! Suppression is per-site via
//! `// aalint: allow(<rule>) -- <justification>`; every used allow is
//! inventoried in the report, malformed or unused allows are
//! themselves diagnostics. The scanner is hand-rolled and std-only (no
//! `syn`): the container is air-gapped, and the rules are linear token
//! patterns that do not need a full parse.

pub mod graph;
pub mod lexer;
pub mod report;
pub mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

pub use report::{Allow, Diagnostic, GraphStats, Report};

/// Directories never descended into, at any depth.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git", ".github", "results"];

/// Scans every first-party `.rs` file under `root` (a workspace root)
/// and returns the sorted report.
///
/// Two phases: the file-local rules (L1–L4) run per file on its token
/// stream; the same pre-lexed streams then feed the workspace call
/// graph and the interprocedural rules (L5–L7). Allow directives are
/// shared — either phase can consume one — and only directives unused
/// by *both* become `unused-allow` diagnostics.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut report = Report::default();
    let mut inputs: Vec<graph::FileInput> = Vec::new();
    let mut cands_by_file: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    let mut dirs_by_file: BTreeMap<String, Vec<rules::Directive>> = BTreeMap::new();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        let Some(class) = rules::classify(&rel) else { continue };
        report.files_scanned += 1;
        let (toks, comments) = lexer::lex(&src);
        let test_ranges = rules::test_line_ranges(&toks);
        let cands = rules::file_candidates(&rel, &class, &toks, &test_ranges);
        let (dirs, malformed) = rules::parse_directives(&rel, &toks, &comments);
        report.diagnostics.extend(malformed);
        cands_by_file.insert(rel.clone(), cands);
        dirs_by_file.insert(rel.clone(), dirs);
        inputs.push(graph::FileInput { rel, class, toks, test_ranges });
    }

    let (ip_diags, stats) = graph::interprocedural(&inputs, root, &mut dirs_by_file);
    report.graph = stats;
    report.diagnostics.extend(ip_diags);

    for (rel, cands) in cands_by_file {
        let mut dirs = dirs_by_file.remove(&rel).unwrap_or_default();
        let survivors = rules::suppress(cands, &mut dirs);
        report.diagnostics.extend(survivors);
        let (allows, unused) = rules::directive_hygiene(&rel, dirs);
        report.allows.extend(allows);
        report.diagnostics.extend(unused);
    }
    report.sort();
    Ok(report)
}

/// Recursively collects workspace-relative `/`-separated `.rs` paths.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// Walks upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]` — the scan root when invoked via
/// `cargo run -p aalint` from anywhere inside the tree.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_found_from_crate_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates/lint").is_dir());
    }

    #[test]
    fn scan_workspace_covers_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let report = scan_workspace(&root).expect("scan");
        assert!(report.files_scanned > 50, "walker found the workspace sources");
    }
}
