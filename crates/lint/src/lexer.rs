//! Minimal Rust token scanner.
//!
//! `aalint` runs in an air-gapped container, so it cannot use `syn` or
//! any other parser crate. This lexer covers exactly the slice of Rust
//! lexical structure the rules need: identifiers and punctuation with
//! line numbers, with comments and every literal form (strings, raw
//! strings, byte/C strings, chars, numbers) stripped so rule patterns
//! can never match inside them. Line comments are kept in a side
//! channel because `// aalint: allow(...)` suppressions live there.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line the token starts on.
    pub line: u32,
    pub kind: TokKind,
}

/// Token payload. Literals carry no content: no rule inspects them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`let`, `unsafe`, `unwrap`, `_`, ...).
    Ident(String),
    /// Single punctuation character (`.`, `;`, `(`, `::` arrives as two).
    Punct(char),
    /// String/char/number literal, content discarded.
    Lit,
}

/// A `//` line comment (block comments cannot carry allow directives).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Text after the `//`, untrimmed.
    pub text: String,
    /// True when a token precedes the comment on the same line
    /// (trailing comment) rather than the comment standing alone.
    pub trailing: bool,
}

/// Lexes `src`, returning the token stream and the line comments.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    Lexer { src: src.as_bytes(), pos: 0, line: 1 }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl Lexer<'_> {
    fn run(mut self) -> (Vec<Tok>, Vec<Comment>) {
        let mut toks = Vec::new();
        let mut comments = Vec::new();
        while let Some(&b) = self.src.get(self.pos) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    let line = self.line;
                    let trailing = toks.last().is_some_and(|t: &Tok| t.line == line);
                    let start = self.pos + 2;
                    while self.src.get(self.pos).is_some_and(|&c| c != b'\n') {
                        self.pos += 1;
                    }
                    let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    comments.push(Comment { line, text, trailing });
                }
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => {
                    toks.push(Tok { line: self.line, kind: TokKind::Lit });
                    self.pos += 1;
                    self.cooked_string_tail();
                }
                b'\'' => self.char_or_lifetime(&mut toks),
                b'0'..=b'9' => {
                    toks.push(Tok { line: self.line, kind: TokKind::Lit });
                    self.number_tail();
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    let line = self.line;
                    let start = self.pos;
                    while self
                        .src
                        .get(self.pos)
                        .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
                    {
                        self.pos += 1;
                    }
                    let word = &self.src[start..self.pos];
                    if self.string_prefix(word) {
                        toks.push(Tok { line, kind: TokKind::Lit });
                    } else {
                        let ident = String::from_utf8_lossy(word).into_owned();
                        toks.push(Tok { line, kind: TokKind::Ident(ident) });
                    }
                }
                _ => {
                    if b.is_ascii() {
                        toks.push(Tok { line: self.line, kind: TokKind::Punct(b as char) });
                    }
                    self.pos += 1;
                }
            }
        }
        (toks, comments)
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Consumes a (nested) block comment starting at `/*`.
    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.src.get(self.pos), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(&c), _) => {
                    if c == b'\n' {
                        self.line += 1;
                    }
                    self.pos += 1;
                }
                (None, _) => return,
            }
        }
    }

    /// Consumes the body of a `"..."` string after the opening quote.
    fn cooked_string_tail(&mut self) {
        while let Some(&c) = self.src.get(self.pos) {
            self.pos += 1;
            match c {
                b'"' => return,
                b'\\' => {
                    if self.src.get(self.pos).is_some_and(|&n| n == b'\n') {
                        self.line += 1;
                    }
                    self.pos += 1;
                }
                b'\n' => self.line += 1,
                _ => {}
            }
        }
    }

    /// Consumes a `r##"..."##` body after the prefix ident; the cursor
    /// sits on the first `#` or `"`.
    fn raw_string_tail(&mut self) {
        let mut hashes = 0usize;
        while self.src.get(self.pos) == Some(&b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        loop {
            match self.src.get(self.pos) {
                None => return,
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b'"') => {
                    self.pos += 1;
                    let mut seen = 0usize;
                    while seen < hashes && self.src.get(self.pos) == Some(&b'#') {
                        seen += 1;
                        self.pos += 1;
                    }
                    if seen == hashes {
                        return;
                    }
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// Handles an identifier that turns out to prefix a string literal
    /// (`r"..."`, `b"..."`, `br#"..."#`, `c"..."`, `cr#"..."#`).
    /// Returns true when a literal was consumed.
    fn string_prefix(&mut self, word: &[u8]) -> bool {
        let raw = matches!(word, b"r" | b"br" | b"cr");
        let cooked = matches!(word, b"b" | b"c");
        match self.src.get(self.pos) {
            Some(b'"') if raw => {
                self.raw_string_tail();
                true
            }
            Some(b'"') if cooked => {
                self.pos += 1;
                self.cooked_string_tail();
                true
            }
            Some(b'#') if raw && self.rest_has_quote_before_newline() => {
                self.raw_string_tail();
                true
            }
            _ => false,
        }
    }

    /// Distinguishes `r#"..."#` from the raw identifier `r#foo`: a raw
    /// string's quote follows its hashes immediately.
    fn rest_has_quote_before_newline(&self) -> bool {
        let mut i = self.pos;
        while self.src.get(i) == Some(&b'#') {
            i += 1;
        }
        self.src.get(i) == Some(&b'"')
    }

    /// Number literal tail: integer/float/suffix forms, loosely. The
    /// cursor sits on the first digit.
    fn number_tail(&mut self) {
        while self
            .src
            .get(self.pos)
            .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.pos += 1;
        }
        // Fraction: only when a digit follows the dot (so `0..n` and
        // tuple-index chains stay punctuation).
        if self.src.get(self.pos) == Some(&b'.')
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.pos += 1;
            while self
                .src
                .get(self.pos)
                .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.pos += 1;
            }
        }
        // Signed exponent (`1e-9`): the alnum loop above stops at `-`.
        if self.src.get(self.pos.wrapping_sub(1)).is_some_and(|&c| c == b'e' || c == b'E')
            && self.src.get(self.pos).is_some_and(|&c| c == b'+' || c == b'-')
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.pos += 1;
            while self.src.get(self.pos).is_some_and(|&c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
    }

    /// `'` starts either a char literal or a lifetime. A lifetime is a
    /// quote followed by ident chars with no closing quote right after
    /// the first char (`'a`, `'static`); anything else is a char
    /// literal (`'x'`, `'\n'`, `'\''`).
    fn char_or_lifetime(&mut self, toks: &mut Vec<Tok>) {
        let line = self.line;
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime = next.is_some_and(|c| c.is_ascii_alphabetic() || c == b'_')
            && after != Some(b'\'');
        if is_lifetime {
            self.pos += 1; // skip quote; the ident lexes on the next loop turn
            return;
        }
        toks.push(Tok { line, kind: TokKind::Lit });
        self.pos += 1;
        if self.src.get(self.pos) == Some(&b'\\') {
            self.pos += 1; // escaped char: skip it so `'\''` closes correctly
        }
        self.pos += 1;
        while self.src.get(self.pos).is_some_and(|&c| c != b'\'' && c != b'\n') {
            self.pos += 1;
        }
        if self.src.get(self.pos) == Some(&b'\'') {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            let a = "unwrap() inside string";
            // unwrap() inside comment
            /* block /* nested */ unwrap() */
            let b = r#"raw "quoted" unwrap()"#;
            let c = b"bytes unwrap()";
        "##;
        let names = idents(src);
        assert!(!names.iter().any(|s| s == "unwrap"));
        assert_eq!(names, vec!["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn comments_are_collected_with_position() {
        let (_, comments) = lex("let x = 1; // aalint: allow(x) -- why\n// standalone\n");
        assert_eq!(comments.len(), 2);
        assert!(comments[0].trailing);
        assert_eq!(comments[0].line, 1);
        assert!(!comments[1].trailing);
        assert_eq!(comments[1].line, 2);
        assert_eq!(comments[1].text, " standalone");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let names = idents("fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; let n = '\\n';");
        assert!(names.contains(&"a".to_string()));
        assert!(names.contains(&"str".to_string()));
        // the char literals did not swallow trailing code
        assert_eq!(names.iter().filter(|s| *s == "let").count(), 2);
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let s = \"line\none\";\nlet t = 2;\n";
        let (toks, _) = lex(src);
        let t_line = toks
            .iter()
            .find(|t| t.kind == TokKind::Ident("t".into()))
            .map(|t| t.line);
        assert_eq!(t_line, Some(3));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let (toks, _) = lex("for i in 0..10 { a[i] = 1.5e-3; let t = x.0; }");
        let dots = toks.iter().filter(|t| t.kind == TokKind::Punct('.')).count();
        assert_eq!(dots, 3, "two range dots + one tuple-index dot");
    }
}
