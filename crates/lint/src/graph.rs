//! Workspace symbol table, conservative call graph, and the three
//! interprocedural rule families (L5–L7).
//!
//! The graph is built from the same hand-rolled token stream the
//! file-local rules use (no `syn`, air-gap friendly), so it is
//! *conservative by construction* rather than precise:
//!
//! - **Definitions** are `fn` items keyed by (crate, enclosing
//!   impl/trait, name, arity). Bodies are token ranges; nested `fn`
//!   items are carved out of their parent's range.
//! - **Call resolution is name + arity.** A call `x.get(k)` resolves to
//!   *every* visible method named `get` taking one argument — the
//!   lexer has no types, so the graph over-approximates edges rather
//!   than miss one. Visibility is bounded by the declared Cargo
//!   dependency graph (a call in `core` never resolves into `cli`),
//!   which removes most cross-crate collisions; a crate without a
//!   parseable manifest conservatively sees every crate.
//! - Test code (`#[cfg(test)]` regions, `tests/`/`benches/` paths) is
//!   never a resolution target and never reported against.
//!
//! The rules on top:
//!
//! - **L5 `lock-order-cycle`** — every `.lock()` acquisition records the
//!   named lock field and the set of locks already held (guard-liveness
//!   tracking shared in spirit with `blocking-under-lock`, extended
//!   through calls: holding lock A while calling a function that
//!   transitively acquires lock B contributes an A→B edge). Edges
//!   aggregate workspace-wide, keyed by (crate, lock field); any cycle
//!   is a potential deadlock and is reported with both acquisition
//!   sites of every edge.
//! - **L6 `panic-path`** — leaf panic sources (`unwrap`/`expect`,
//!   `panic!`/`assert!`-family macros, indexing with a non-literal
//!   index) outside test code taint their function; taint propagates
//!   caller-ward over the call graph; a public API of a dedup-decision
//!   crate that can reach a leaf is a finding. A leaf suppressed with
//!   `allow(panic-path)` — or `allow(unwrap-in-lib)` for
//!   `unwrap`/`expect`, whose justification already asserts the
//!   can't-panic invariant — stops tainting.
//! - **L7 `discarded-fallibility`** — `ObjectBackend::{put,get,delete}`
//!   definitions seed a "storage-fallible" set that grows through
//!   `Result`-returning callers; at every call site of a
//!   storage-fallible function the `Result` must be propagated
//!   (`?`/`return`/tail), matched, or bound — error-dropping adapters
//!   (`.ok()`, `.unwrap_or*`, `.map_or*`) and `if let Ok(..)` launder
//!   storage errors and are findings. Because `get`/`put`/`delete` are
//!   common method names, unqualified method calls only seed from
//!   receivers named like a backend handle ([`BACKEND_RECEIVERS`]).

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::lexer::{Tok, TokKind};
use crate::report::{Diagnostic, GraphStats};
use crate::rules::{ident_of, punct_is, Directive, FileClass, DEDUP_DECISION_CRATES};

/// Receiver identifiers that mark an unqualified `.put/.get/.delete`
/// method call as a storage call for L7 seeding. Field names, not
/// types: the lexer cannot see types, and the workspace's backend
/// handles are consistently named.
const BACKEND_RECEIVERS: &[&str] =
    &["backend", "store", "cloud", "object_store", "objects", "remote"];

/// Storage trait whose `put`/`get`/`delete` seed the L7 root set.
const STORAGE_TRAIT: &str = "ObjectBackend";
const STORAGE_METHODS: &[&str] = &["put", "get", "delete"];

/// Macros that unconditionally or conditionally panic in release code.
const PANIC_MACROS: &[&str] =
    &["panic", "assert", "assert_eq", "assert_ne", "unreachable", "todo", "unimplemented"];

/// Keywords that look like `ident (` but are not calls.
const NOT_CALLS: &[&str] = &[
    "if", "else", "while", "for", "in", "match", "return", "break", "continue", "loop", "let",
    "fn", "impl", "dyn", "as", "ref", "mut", "move", "box", "where", "const", "static", "enum",
    "struct", "trait", "type", "mod", "crate", "super", "use", "pub", "unsafe", "extern",
];

/// One file, pre-lexed by the workspace walker.
pub(crate) struct FileInput {
    pub rel: String,
    pub class: FileClass,
    pub toks: Vec<Tok>,
    pub test_ranges: Vec<(u32, u32)>,
}

/// How a call site consumes the callee's return value (only meaningful
/// when the callee returns `Result`).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Consume {
    /// `?`, `return`, tail expression, `match`, `if let Err`, a named
    /// `let` binding, or a bool check — the error is observable.
    Handled,
    /// Bare expression statement: the `Result` evaporates.
    Discard,
    /// `if let Ok(..) =`: the `Err` arm is silently dropped.
    IfLetOk,
    /// `.ok()` / `.unwrap_or*` / `.map_or*`: the error is destroyed in
    /// the chain. Carries the adapter name.
    Launder(String),
}

struct Call {
    name: String,
    /// `Type::name(..)` qualifier, with `Self` resolved to the impl type.
    qual: Option<String>,
    /// For `a.b.name(..)`: `b`. `None` for free calls and chained
    /// receivers (`f().name(..)`).
    recv: Option<String>,
    method: bool,
    args: usize,
    line: u32,
    consume: Consume,
    /// (lock field, acquisition line) of guards live at the call.
    held: Vec<(String, u32)>,
}

struct Leaf {
    line: u32,
    kind: &'static str,
}

struct LockAcq {
    lock: String,
    line: u32,
    held: Vec<(String, u32)>,
}

struct FnDef {
    file: usize,
    crate_name: String,
    line: u32,
    name: String,
    /// Enclosing `impl Type`/`trait Name` context.
    impl_ctx: Option<String>,
    /// `impl Trait for Type` → the trait name.
    trait_impl: Option<String>,
    arity: usize,
    has_self: bool,
    is_pub: bool,
    returns_result: bool,
    in_test: bool,
    calls: Vec<Call>,
    leaves: Vec<Leaf>,
    lock_acqs: Vec<LockAcq>,
}

/// Declared crate-dependency closure, parsed from `Cargo.toml`s.
/// `None` for a crate means "no manifest found": it sees everything.
pub(crate) struct CrateDeps {
    vis: BTreeMap<String, Option<BTreeSet<String>>>,
}

impl CrateDeps {
    /// Reads `crates/<dir>/Cargo.toml` (and the root manifest for the
    /// root package) for every crate dir seen in the scan. Parsing is a
    /// line scanner: `name = "..."` under `[package]` and the key of
    /// every `[*dependencies]` entry. Unknown packages are ignored.
    pub(crate) fn load(root: &Path, crate_dirs: &BTreeSet<String>) -> Self {
        let mut pkg_to_dir: BTreeMap<String, String> = BTreeMap::new();
        let mut direct: BTreeMap<String, Option<BTreeSet<String>>> = BTreeMap::new();
        let mut raw: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for dir in crate_dirs {
            let manifest = if dir == "aa-dedupe" {
                root.join("Cargo.toml")
            } else {
                root.join("crates").join(dir).join("Cargo.toml")
            };
            match std::fs::read_to_string(&manifest) {
                Ok(text) => {
                    let (pkg, deps) = parse_manifest(&text);
                    if let Some(pkg) = pkg {
                        pkg_to_dir.insert(pkg, dir.clone());
                    }
                    raw.insert(dir.clone(), deps);
                }
                Err(_) => {
                    direct.insert(dir.clone(), None);
                }
            }
        }
        for (dir, deps) in &raw {
            let set: BTreeSet<String> =
                deps.iter().filter_map(|d| pkg_to_dir.get(d).cloned()).collect();
            direct.insert(dir.clone(), Some(set));
        }
        // Transitive closure over the declared edges.
        let mut vis = direct.clone();
        loop {
            let mut changed = false;
            let keys: Vec<String> = vis.keys().cloned().collect();
            for k in keys {
                let Some(Some(deps)) = vis.get(&k).cloned() else { continue };
                let mut grown = deps.clone();
                for d in &deps {
                    if let Some(Some(dd)) = vis.get(d) {
                        grown.extend(dd.iter().cloned());
                    }
                }
                if grown.len() != deps.len() {
                    changed = true;
                    vis.insert(k, Some(grown));
                }
            }
            if !changed {
                break;
            }
        }
        CrateDeps { vis }
    }

    /// May code in crate `from` call code in crate `to`?
    fn visible(&self, from: &str, to: &str) -> bool {
        if from == to {
            return true;
        }
        match self.vis.get(from) {
            Some(Some(deps)) => deps.contains(to),
            // No manifest (fixture crates): conservatively everything.
            _ => true,
        }
    }
}

/// Extracts the `[package] name` and all dependency keys from a
/// Cargo.toml text.
fn parse_manifest(text: &str) -> (Option<String>, Vec<String>) {
    let mut section = String::new();
    let mut pkg = None;
    let mut deps = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        if section == "package" {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    pkg = Some(v.trim().trim_matches('"').to_string());
                }
            }
        } else if section.ends_with("dependencies") && !section.ends_with("dev-dependencies") {
            // dev-dependencies are visible only to test code, which is
            // never a caller in the graph — counting them would let lib
            // code "reach" crates it cannot link against.
            if let Some((key, _)) = line.split_once(['=', '.']) {
                let key = key.trim();
                if !key.is_empty() && key.chars().all(|c| c.is_alphanumeric() || c == '-' || c == '_') {
                    deps.push(key.to_string());
                }
            }
        }
    }
    (pkg, deps)
}

/// Runs the interprocedural rules over the pre-lexed workspace.
/// Marks leaf-suppressing directives used via `dirs` (keyed by file
/// rel path) and returns (diagnostics, graph statistics).
pub(crate) fn interprocedural(
    files: &[FileInput],
    root: &Path,
    dirs: &mut BTreeMap<String, Vec<Directive>>,
) -> (Vec<Diagnostic>, GraphStats) {
    let crate_dirs: BTreeSet<String> =
        files.iter().map(|f| f.class.crate_name.clone()).collect();
    let deps = CrateDeps::load(root, &crate_dirs);

    let mut defs: Vec<FnDef> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        extract_defs(fi, f, &mut defs);
    }

    // Drop leaves whose site carries an applicable allow. An
    // `unwrap-in-lib` allow also neutralizes an unwrap/expect leaf: its
    // justification asserts the can't-panic invariant, and it is
    // already marked used by the file-local pass.
    for d in &mut defs {
        let rel = &files[d.file].rel;
        d.leaves.retain(|leaf| {
            if let Some(list) = dirs.get_mut(rel) {
                for dir in list.iter_mut() {
                    if dir.target_line != leaf.line {
                        continue;
                    }
                    if dir.rule == "panic-path" {
                        dir.used = true;
                        return false;
                    }
                    if dir.rule == "unwrap-in-lib" && (leaf.kind == "unwrap" || leaf.kind == "expect")
                    {
                        return false;
                    }
                }
            }
            true
        });
    }

    if std::env::var_os("AALINT_DUMP_LEAVES").is_some() {
        for d in &defs {
            if d.in_test {
                continue;
            }
            for leaf in &d.leaves {
                eprintln!("LEAF {}:{} {} in {}", files[d.file].rel, leaf.line, leaf.kind, d.name);
            }
        }
    }

    // Name index over non-test definitions (test fns are never
    // resolution targets).
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, d) in defs.iter().enumerate() {
        if !d.in_test {
            by_name.entry(&d.name).or_default().push(i);
        }
    }

    // Forward edges, deterministic and deduplicated.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); defs.len()];
    let mut edge_count = 0usize;
    for i in 0..defs.len() {
        let mut targets = BTreeSet::new();
        for c in &defs[i].calls {
            for t in resolve(&defs, &by_name, &deps, &defs[i], c) {
                targets.insert(t);
            }
        }
        edge_count += targets.len();
        edges[i] = targets.into_iter().collect();
    }
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); defs.len()];
    for (i, ts) in edges.iter().enumerate() {
        for &t in ts {
            rev[t].push(i);
        }
    }

    let mut diags = Vec::new();
    let tainted = rule_panic_path(files, &defs, &rev, dirs, &mut diags);
    rule_lock_order(files, &defs, &edges, &by_name, &deps, dirs, &mut diags);
    rule_discarded_fallibility(files, &defs, &by_name, &deps, dirs, &mut diags);

    let stats = GraphStats { nodes: defs.len(), edges: edge_count, panic_tainted: tainted };
    (diags, stats)
}

/// Resolves one call site to candidate definition ids: name + arity,
/// bounded by crate visibility, never into test code.
fn resolve(
    defs: &[FnDef],
    by_name: &BTreeMap<&str, Vec<usize>>,
    deps: &CrateDeps,
    caller: &FnDef,
    c: &Call,
) -> Vec<usize> {
    let Some(cands) = by_name.get(c.name.as_str()) else { return Vec::new() };
    let mut out = Vec::new();
    for &i in cands {
        let d = &defs[i];
        if !deps.visible(&caller.crate_name, &d.crate_name) {
            continue;
        }
        let arity_ok = if c.qual.is_some() {
            // `Type::m(recv, ..)` may pass self positionally.
            c.args == d.arity || (d.has_self && c.args == d.arity + 1)
        } else if c.method {
            d.has_self && c.args == d.arity
        } else {
            !d.has_self && c.args == d.arity
        };
        if !arity_ok {
            continue;
        }
        if let Some(q) = &c.qual {
            // Qualified calls must match the impl/trait context when
            // one exists; module-qualified free fns match by name.
            if let Some(ctx) = &d.impl_ctx {
                if ctx != q && d.trait_impl.as_deref() != Some(q.as_str()) {
                    continue;
                }
            }
        }
        out.push(i);
    }
    out
}

/// L6: propagate may-panic taint caller-ward; report public APIs of
/// dedup-decision crates that can reach a leaf. Returns the number of
/// tainted functions (for the report's graph stats).
fn rule_panic_path(
    files: &[FileInput],
    defs: &[FnDef],
    rev: &[Vec<usize>],
    dirs: &mut BTreeMap<String, Vec<Directive>>,
    diags: &mut Vec<Diagnostic>,
) -> usize {
    // taint[i] = (via, leaf index) where via == i for a fn with its own
    // leaf; BFS gives shortest witness paths deterministically.
    let mut taint: Vec<Option<usize>> = vec![None; defs.len()];
    let mut queue: Vec<usize> = Vec::new();
    for (i, d) in defs.iter().enumerate() {
        if !d.leaves.is_empty() && !d.in_test {
            taint[i] = Some(i);
            queue.push(i);
        }
    }
    let mut head = 0usize;
    while head < queue.len() {
        let cur = queue[head];
        head += 1;
        for &caller in &rev[cur] {
            if taint[caller].is_none() && !defs[caller].in_test {
                taint[caller] = Some(cur);
                queue.push(caller);
            }
        }
    }
    let tainted_count = taint.iter().filter(|t| t.is_some()).count();

    for (i, d) in defs.iter().enumerate() {
        if taint[i].is_none()
            || !d.is_pub
            || d.in_test
            || files[d.file].class.test_path
            || files[d.file].class.bin_path
            || !DEDUP_DECISION_CRATES.contains(&d.crate_name.as_str())
        {
            continue;
        }
        // Reconstruct the witness path down to the leaf holder.
        let mut path = vec![i];
        let mut cur = i;
        while let Some(next) = taint[cur] {
            if next == cur {
                break;
            }
            path.push(next);
            cur = next;
        }
        let holder = &defs[cur];
        let Some(leaf) = holder.leaves.iter().min_by_key(|l| l.line) else { continue };
        let rel = &files[d.file].rel;
        if consume_allow(dirs, rel, d.line, "panic-path") {
            continue;
        }
        let chain: Vec<String> = path
            .iter()
            .map(|&p| {
                let pd = &defs[p];
                match &pd.impl_ctx {
                    Some(c) => format!("{}::{}", c, pd.name),
                    None => pd.name.clone(),
                }
            })
            .collect();
        diags.push(Diagnostic {
            rule: "panic-path",
            file: rel.clone(),
            line: d.line,
            message: format!(
                "public `{}` can reach a panic: {} (`{}` at {}:{}) (L6); make the path \
                 fallible, prove the site can't fire and annotate the leaf, or justify here \
                 with `// aalint: allow(panic-path) -- <why>`",
                d.name,
                chain.join(" -> "),
                leaf.kind,
                files[holder.file].rel,
                leaf.line
            ),
        });
    }
    tainted_count
}

/// L5: aggregate acquired-while-holding edges workspace-wide and report
/// lock-order cycles.
#[allow(clippy::too_many_arguments)]
fn rule_lock_order(
    files: &[FileInput],
    defs: &[FnDef],
    edges: &[Vec<usize>],
    by_name: &BTreeMap<&str, Vec<usize>>,
    deps: &CrateDeps,
    dirs: &mut BTreeMap<String, Vec<Directive>>,
    diags: &mut Vec<Diagnostic>,
) {
    type Node = (String, String); // (crate, lock field)
    // Transitive lock set per fn: lock node -> representative site.
    let mut owned: Vec<BTreeMap<Node, (String, u32)>> = vec![BTreeMap::new(); defs.len()];
    for (i, d) in defs.iter().enumerate() {
        for a in &d.lock_acqs {
            owned[i]
                .entry((d.crate_name.clone(), a.lock.clone()))
                .or_insert_with(|| (files[d.file].rel.clone(), a.line));
        }
    }
    loop {
        let mut changed = false;
        for i in 0..defs.len() {
            for &t in &edges[i] {
                if t == i {
                    continue;
                }
                let add: Vec<_> = owned[t]
                    .iter()
                    .filter(|(k, _)| !owned[i].contains_key(*k))
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                if !add.is_empty() {
                    changed = true;
                    owned[i].extend(add);
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edge map: held -> acquired, with one representative site pair
    // (held acquisition site, inner acquisition site).
    let mut graph: BTreeMap<Node, BTreeMap<Node, ((String, u32), (String, u32))>> =
        BTreeMap::new();
    let mut add_edge = |from: Node, to: Node, ha: (String, u32), aa: (String, u32)| {
        if from == to {
            return; // re-acquisition of one field is out of scope here
        }
        graph.entry(from).or_default().entry(to).or_insert((ha, aa));
    };
    for (i, d) in defs.iter().enumerate() {
        if d.in_test {
            continue;
        }
        let rel = &files[d.file].rel;
        let krate = &d.crate_name;
        for a in &d.lock_acqs {
            for (h, hline) in &a.held {
                add_edge(
                    (krate.clone(), h.clone()),
                    (krate.clone(), a.lock.clone()),
                    (rel.clone(), *hline),
                    (rel.clone(), a.line),
                );
            }
        }
        for c in &d.calls {
            if c.held.is_empty() {
                continue;
            }
            // Resolve *this* call site only: using the fn's whole edge
            // set here would charge every callee's locks to every held
            // call, and self-recursive resolution would fabricate
            // cycles out of a single fn's sequential acquisitions.
            for t in resolve(defs, by_name, deps, d, c) {
                if t == i {
                    continue;
                }
                // Locks the callee may transitively take.
                for (node, site) in &owned[t] {
                    for (h, hline) in &c.held {
                        add_edge(
                            (krate.clone(), h.clone()),
                            node.clone(),
                            (rel.clone(), *hline),
                            site.clone(),
                        );
                    }
                }
            }
        }
    }

    // Shortest cycle through each node, deduplicated by node set.
    let mut seen: BTreeSet<Vec<Node>> = BTreeSet::new();
    let nodes: Vec<Node> = graph.keys().cloned().collect();
    for start in &nodes {
        let Some(cycle) = shortest_cycle(&graph, start) else { continue };
        let mut key: Vec<Node> = cycle.clone();
        key.sort();
        if !seen.insert(key) {
            continue;
        }
        // Materialize the edge list with sites.
        let mut legs = Vec::new();
        for w in 0..cycle.len() {
            let from = &cycle[w];
            let to = &cycle[(w + 1) % cycle.len()];
            let (ha, aa) = graph[from][to].clone();
            legs.push((from.clone(), to.clone(), ha, aa));
        }
        // An allow on any acquisition site of the cycle suppresses it.
        let suppressed = legs.iter().any(|(_, _, ha, aa)| {
            consume_allow(dirs, &ha.0, ha.1, "lock-order-cycle")
                || consume_allow(dirs, &aa.0, aa.1, "lock-order-cycle")
        });
        if suppressed {
            continue;
        }
        let desc: Vec<String> = legs
            .iter()
            .map(|((fc, fl), (tc, tl), ha, aa)| {
                format!(
                    "{fc}::{fl} (held at {}:{}) -> {tc}::{tl} (acquired at {}:{})",
                    ha.0, ha.1, aa.0, aa.1
                )
            })
            .collect();
        let anchor = &legs[0].3;
        diags.push(Diagnostic {
            rule: "lock-order-cycle",
            file: anchor.0.clone(),
            line: anchor.1,
            message: format!(
                "lock-order cycle: {} (L5); a concurrent interleaving can deadlock — impose \
                 one acquisition order, or justify with \
                 `// aalint: allow(lock-order-cycle) -- <why>`",
                desc.join("; ")
            ),
        });
    }
}

/// BFS for the shortest path start → ... → start in the lock graph.
fn shortest_cycle(
    graph: &BTreeMap<(String, String), BTreeMap<(String, String), ((String, u32), (String, u32))>>,
    start: &(String, String),
) -> Option<Vec<(String, String)>> {
    let mut prev: BTreeMap<(String, String), (String, String)> = BTreeMap::new();
    let mut queue = vec![start.clone()];
    let mut head = 0;
    while head < queue.len() {
        let cur = queue[head].clone();
        head += 1;
        let Some(outs) = graph.get(&cur) else { continue };
        for next in outs.keys() {
            if next == start {
                // Unwind cur back to start.
                let mut path = vec![cur.clone()];
                let mut p = cur.clone();
                while &p != start {
                    p = prev[&p].clone();
                    path.push(p.clone());
                }
                path.reverse();
                return Some(path);
            }
            if !prev.contains_key(next) && next != &cur {
                prev.insert(next.clone(), cur.clone());
                queue.push(next.clone());
            }
        }
    }
    None
}

/// L7: storage errors must stay propagatable from
/// `ObjectBackend::{put,get,delete}` all the way up.
fn rule_discarded_fallibility(
    files: &[FileInput],
    defs: &[FnDef],
    by_name: &BTreeMap<&str, Vec<usize>>,
    deps: &CrateDeps,
    dirs: &mut BTreeMap<String, Vec<Directive>>,
    diags: &mut Vec<Diagnostic>,
) {
    // Roots: the trait's own method declarations plus every impl.
    let mut fallible: Vec<bool> = defs
        .iter()
        .map(|d| {
            STORAGE_METHODS.contains(&d.name.as_str())
                && (d.impl_ctx.as_deref() == Some(STORAGE_TRAIT)
                    || d.trait_impl.as_deref() == Some(STORAGE_TRAIT))
        })
        .collect();

    // A call participates in L7 only when it can be tied to storage:
    // non-root names resolve normally; the ambiguous root names
    // (`get` on a HashMap…) additionally need a backend-shaped
    // receiver or an explicit qualifier.
    let storage_call = |caller: &FnDef, c: &Call, fallible: &[bool]| -> bool {
        if STORAGE_METHODS.contains(&c.name.as_str()) && c.method && c.qual.is_none() {
            match &c.recv {
                Some(r) if BACKEND_RECEIVERS.contains(&r.as_str()) => {}
                _ => return false,
            }
        }
        resolve(defs, by_name, deps, caller, c).iter().any(|&t| fallible[t])
    };

    // Grow the fallible set through Result-returning callers.
    loop {
        let mut changed = false;
        for i in 0..defs.len() {
            if fallible[i] || !defs[i].returns_result || defs[i].in_test {
                continue;
            }
            if defs[i].calls.iter().any(|c| storage_call(&defs[i], c, &fallible)) {
                fallible[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for d in defs {
        if d.in_test || files[d.file].class.test_path {
            continue;
        }
        let rel = &files[d.file].rel;
        for c in &d.calls {
            if !storage_call(d, c, &fallible) {
                continue;
            }
            let problem = match &c.consume {
                Consume::Handled => continue,
                Consume::Discard => "the `Result` is discarded".to_string(),
                Consume::IfLetOk => {
                    "`if let Ok(..)` silently drops the error arm".to_string()
                }
                Consume::Launder(adapter) => {
                    format!("`.{adapter}(..)` destroys the error")
                }
            };
            if consume_allow(dirs, rel, c.line, "discarded-fallibility") {
                continue;
            }
            diags.push(Diagnostic {
                rule: "discarded-fallibility",
                file: rel.clone(),
                line: c.line,
                message: format!(
                    "call to storage-fallible `{}` but {} (L7); propagate the `Result` \
                     (`?`, return it, or match both arms), or justify with \
                     `// aalint: allow(discarded-fallibility) -- <why>`",
                    c.name, problem
                ),
            });
        }
    }
}

/// Marks a matching directive used and reports whether one existed.
fn consume_allow(
    dirs: &mut BTreeMap<String, Vec<Directive>>,
    rel: &str,
    line: u32,
    rule: &str,
) -> bool {
    if let Some(list) = dirs.get_mut(rel) {
        for d in list.iter_mut() {
            if d.rule == rule && d.target_line == line {
                d.used = true;
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------
// Definition extraction and body analysis
// ---------------------------------------------------------------------

/// impl/trait context regions: (start token, end token, type/trait
/// name, trait name for `impl Trait for Type`).
fn impl_regions(toks: &[Tok]) -> Vec<(usize, usize, String, Option<String>)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let kw = ident_of(&toks[i]);
        if kw != Some("impl") && kw != Some("trait") {
            i += 1;
            continue;
        }
        let is_trait_decl = kw == Some("trait");
        // Collect path idents (outside generics) until the body `{`.
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut names: Vec<String> = Vec::new();
        let mut for_at: Option<usize> = None;
        let mut found_open = None;
        while j < toks.len() {
            match &toks[j].kind {
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => angle -= 1,
                TokKind::Punct('{') if angle <= 0 => {
                    found_open = Some(j);
                    break;
                }
                TokKind::Punct(';') if angle <= 0 => break,
                TokKind::Ident(s) if angle <= 0 => {
                    if s == "for" {
                        for_at = Some(names.len());
                    } else if s == "where" {
                        // stop collecting names; still seek the `{`
                    } else {
                        names.push(s.clone());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = found_open else {
            i = j + 1;
            continue;
        };
        let (_, after) = balanced_brace(toks, open);
        let (ctx, trait_name) = if is_trait_decl {
            (names.first().cloned().unwrap_or_default(), None)
        } else if let Some(split) = for_at {
            // `impl Trait for Type`: context is the concrete type.
            let t = names.get(split..).and_then(|s| s.last()).cloned().unwrap_or_default();
            let tr = names.get(..split).and_then(|s| s.last()).cloned();
            (t, tr)
        } else {
            (names.last().cloned().unwrap_or_default(), None)
        };
        if !ctx.is_empty() {
            out.push((open, after, ctx, trait_name));
        }
        i = open + 1; // descend: nested impls inside fns still register
    }
    out
}

/// Balanced `{}` starting at `open` (which holds `{`): returns
/// (close index, index after close).
fn balanced_brace(toks: &[Tok], open: usize) -> (usize, usize) {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return (i, i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    (toks.len().saturating_sub(1), toks.len())
}

/// Finds every `fn` definition in one file and analyzes its body.
fn extract_defs(file_idx: usize, f: &FileInput, defs: &mut Vec<FnDef>) {
    let toks = &f.toks;
    let regions = impl_regions(toks);
    let in_test = |line: u32| {
        f.class.test_path || f.test_ranges.iter().any(|&(a, b)| line >= a && line <= b)
    };

    // Pass 1: signatures and body ranges.
    struct Sig {
        kw: usize,
        line: u32,
        name: String,
        impl_ctx: Option<String>,
        trait_impl: Option<String>,
        arity: usize,
        has_self: bool,
        is_pub: bool,
        returns_result: bool,
        body: Option<(usize, usize)>,
    }
    let mut sigs: Vec<Sig> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !matches!(ident_of(&toks[i]), Some("fn")) {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(ident_of) else {
            i += 1;
            continue;
        };
        let mut j = i + 2;
        // Skip generic params.
        if toks.get(j).is_some_and(|t| punct_is(t, '<')) {
            let mut angle = 0i32;
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct('<') => angle += 1,
                    TokKind::Punct('>') => {
                        angle -= 1;
                        if angle == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if !toks.get(j).is_some_and(|t| punct_is(t, '(')) {
            i += 1;
            continue;
        }
        let (params_start, mut depth, mut k) = (j + 1, 1i32, j + 1);
        while k < toks.len() && depth > 0 {
            match &toks[k].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        let params = &toks[params_start..k.saturating_sub(1)];
        let (arity, has_self) = param_shape(params);
        // Return type & body/semicolon.
        let mut returns_result = false;
        let mut m = k;
        let mut body = None;
        while m < toks.len() {
            match &toks[m].kind {
                TokKind::Punct('{') => {
                    let (close, _) = balanced_brace(toks, m);
                    body = Some((m, close));
                    break;
                }
                TokKind::Punct(';') => break,
                TokKind::Ident(s) if s == "Result" => returns_result = true,
                _ => {}
            }
            m += 1;
        }
        // Visibility: back-scan over fn qualifiers.
        let mut p = i;
        let mut is_pub = false;
        while p > 0 {
            p -= 1;
            match &toks[p].kind {
                TokKind::Ident(s)
                    if matches!(s.as_str(), "const" | "unsafe" | "extern" | "async") => {}
                TokKind::Lit => {} // extern "C"
                TokKind::Punct(')') => {
                    // `pub(crate)` and friends: restricted, not public.
                    break;
                }
                TokKind::Ident(s) if s == "pub" => {
                    is_pub = true;
                    break;
                }
                _ => break,
            }
        }
        let region = regions
            .iter()
            .filter(|(s, e, _, _)| *s < i && i < *e)
            .last();
        sigs.push(Sig {
            kw: i,
            line: toks[i].line,
            name: name.to_string(),
            impl_ctx: region.map(|(_, _, c, _)| c.clone()),
            trait_impl: region.and_then(|(_, _, _, t)| t.clone()),
            arity,
            has_self,
            is_pub,
            returns_result,
            body,
        });
        i = match body {
            Some((open, _)) => open + 1, // descend into the body (nested fns)
            None => m + 1,
        };
    }

    // Nested fn spans to skip while analyzing an enclosing body.
    let spans: Vec<(usize, usize)> = sigs
        .iter()
        .filter_map(|s| s.body.map(|(_, close)| (s.kw, close)))
        .collect();

    for s in sigs {
        let mut def = FnDef {
            file: file_idx,
            crate_name: f.class.crate_name.clone(),
            line: s.line,
            name: s.name,
            impl_ctx: s.impl_ctx,
            trait_impl: s.trait_impl,
            arity: s.arity,
            has_self: s.has_self,
            is_pub: s.is_pub,
            returns_result: s.returns_result,
            in_test: in_test(s.line),
            calls: Vec::new(),
            leaves: Vec::new(),
            lock_acqs: Vec::new(),
        };
        if let Some((open, close)) = s.body {
            analyze_body(toks, open, close, s.kw, &spans, &mut def);
        }
        defs.push(def);
    }
}

/// (arity excluding self, has self receiver) from a param token slice.
fn param_shape(params: &[Tok]) -> (usize, bool) {
    if params.is_empty() {
        return (0, false);
    }
    let mut depth = 0i32;
    let mut segments = 1usize;
    let mut last_was_comma = false;
    for t in params {
        match &t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') | TokKind::Punct('<') => {
                depth += 1;
                last_was_comma = false;
            }
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') | TokKind::Punct('>') => {
                depth -= 1;
                last_was_comma = false;
            }
            TokKind::Punct(',') if depth == 0 => {
                segments += 1;
                last_was_comma = true;
            }
            _ => last_was_comma = false,
        }
    }
    if last_was_comma {
        segments -= 1; // trailing comma
    }
    // Self receiver: an ident `self` in the first segment.
    let mut has_self = false;
    let mut d = 0i32;
    for t in params {
        match &t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('<') => d += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('>') => d -= 1,
            TokKind::Punct(',') if d == 0 => break,
            TokKind::Ident(s) if s == "self" => {
                has_self = true;
                break;
            }
            _ => {}
        }
    }
    (segments.saturating_sub(usize::from(has_self)), has_self)
}

/// Walks one fn body: calls (with consumption + held locks), panic
/// leaves, and lock acquisitions with the held-set at each.
fn analyze_body(
    toks: &[Tok],
    open: usize,
    close: usize,
    own_kw: usize,
    nested: &[(usize, usize)],
    def: &mut FnDef,
) {
    struct Guard {
        binding: String,
        lock: String,
        line: u32,
        depth: i32,
    }
    let mut guards: Vec<Guard> = Vec::new();
    // Statement temporaries: (lock, line, depth at creation).
    let mut temps: Vec<(String, u32, i32)> = Vec::new();
    let mut depth = 0i32;

    let held_now = |guards: &[Guard], temps: &[(String, u32, i32)]| -> Vec<(String, u32)> {
        let mut held: Vec<(String, u32)> =
            guards.iter().map(|g| (g.lock.clone(), g.line)).collect();
        held.extend(temps.iter().map(|(l, ln, _)| (l.clone(), *ln)));
        held
    };

    let mut i = open;
    while i <= close {
        // Carve out nested fn items.
        if let Some(&(_, end)) = nested.iter().find(|&&(kw, _)| kw == i && kw != own_kw) {
            i = end + 1;
            continue;
        }
        match &toks[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
                temps.retain(|(_, _, d)| *d <= depth);
            }
            TokKind::Punct(';') => {
                temps.retain(|(_, _, d)| *d < depth);
            }
            TokKind::Punct('[') => {
                let indexing = i > open
                    && match &toks[i - 1].kind {
                        TokKind::Ident(s) => !NOT_CALLS.contains(&s.as_str()) && s != "_",
                        TokKind::Punct(')') | TokKind::Punct(']') => true,
                        _ => false,
                    };
                if indexing {
                    let (inner, _) = balanced_sq(toks, i);
                    let non_literal =
                        inner.iter().any(|t| matches!(&t.kind, TokKind::Ident(_)));
                    if !inner.is_empty() && non_literal {
                        def.leaves.push(Leaf { line: toks[i].line, kind: "index" });
                    }
                }
            }
            TokKind::Ident(kw) if kw == "let" => {
                // Track tail-position `.lock()` bindings as live guards
                // (same discipline as blocking-under-lock).
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| matches!(ident_of(t), Some("mut"))) {
                    j += 1;
                }
                if let (Some(name), true) = (
                    toks.get(j).and_then(ident_of),
                    toks.get(j + 1).is_some_and(|t| punct_is(t, '=')),
                ) {
                    let mut k = j + 2;
                    let mut d = 0i32;
                    let mut lock_tail: Option<(String, u32)> = None;
                    while k < toks.len() {
                        match &toks[k].kind {
                            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => {
                                d += 1;
                            }
                            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                                d -= 1;
                            }
                            TokKind::Punct(';') if d <= 0 => break,
                            TokKind::Ident(m) if k >= 1 && punct_is(&toks[k - 1], '.') => {
                                if m == "lock"
                                    && toks.get(k + 1).is_some_and(|t| punct_is(t, '('))
                                {
                                    lock_tail =
                                        Some((lock_name(toks, k), toks[k].line));
                                } else if !matches!(
                                    m.as_str(),
                                    "unwrap" | "expect" | "unwrap_or_else" | "into_inner"
                                ) {
                                    lock_tail = None;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    guards.retain(|g| g.binding != *name);
                    if let Some((lock, line)) = lock_tail {
                        guards.push(Guard {
                            binding: name.to_string(),
                            lock,
                            line,
                            depth,
                        });
                    }
                    // fall through: the initializer is re-scanned for
                    // calls/locks/leaves from j+2 onward.
                    i = j + 2;
                    continue;
                }
            }
            TokKind::Ident(kw)
                if kw == "drop"
                    && toks.get(i + 1).is_some_and(|t| punct_is(t, '('))
                    && toks.get(i + 3).is_some_and(|t| punct_is(t, ')')) =>
            {
                if let Some(name) = toks.get(i + 2).and_then(ident_of) {
                    guards.retain(|g| g.binding != name);
                }
            }
            TokKind::Ident(name) => {
                let next_open = toks.get(i + 1).is_some_and(|t| punct_is(t, '('));
                let is_macro = toks.get(i + 1).is_some_and(|t| punct_is(t, '!'));
                if is_macro && PANIC_MACROS.contains(&name.as_str()) {
                    def.leaves.push(Leaf {
                        line: toks[i].line,
                        kind: match name.as_str() {
                            "panic" => "panic!",
                            "assert" | "assert_eq" | "assert_ne" => "assert!",
                            other if other == "unreachable" => "unreachable!",
                            _ => "todo!",
                        },
                    });
                } else if next_open && !NOT_CALLS.contains(&name.as_str()) {
                    let method = i > 0 && punct_is(&toks[i - 1], '.');
                    if method && (name == "lock")
                        || (method && name == "try_lock")
                    {
                        // `.lock()` anywhere: an acquisition. Tail
                        // bindings are handled by the `let` arm; every
                        // occurrence also records the edge source and a
                        // statement-scoped temporary.
                        let lname = lock_name(toks, i);
                        def.lock_acqs.push(LockAcq {
                            lock: lname.clone(),
                            line: toks[i].line,
                            held: held_now(&guards, &temps),
                        });
                        temps.push((lname, toks[i].line, depth));
                    } else {
                        if method && (name == "unwrap" || name == "expect") {
                            def.leaves.push(Leaf {
                                line: toks[i].line,
                                kind: if name == "unwrap" { "unwrap" } else { "expect" },
                            });
                        }
                        let qual = if !method
                            && i >= 2
                            && punct_is(&toks[i - 1], ':')
                            && punct_is(&toks[i - 2], ':')
                        {
                            toks.get(i.wrapping_sub(3)).and_then(ident_of).map(|q| {
                                if q == "Self" {
                                    def.impl_ctx.clone().unwrap_or_else(|| q.to_string())
                                } else {
                                    q.to_string()
                                }
                            })
                        } else {
                            None
                        };
                        let recv = if method && i >= 2 {
                            ident_of(&toks[i - 2]).map(str::to_string)
                        } else {
                            None
                        };
                        let (args, close_paren) = count_args(toks, i + 1);
                        let consume = classify_consume(toks, open, close, i, close_paren);
                        def.calls.push(Call {
                            name: name.clone(),
                            qual,
                            recv,
                            method,
                            args,
                            line: toks[i].line,
                            consume,
                            held: held_now(&guards, &temps),
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// The lock field name for a `.lock()` at token `k` (`k` holds `lock`):
/// the ident two tokens back (`state.lock()` → `state`).
fn lock_name(toks: &[Tok], k: usize) -> String {
    if k >= 2 {
        if let Some(n) = ident_of(&toks[k - 2]) {
            return n.to_string();
        }
    }
    "<expr>".to_string()
}

/// Inner tokens of a balanced `[..]` at `open`.
fn balanced_sq(toks: &[Tok], open: usize) -> (&[Tok], usize) {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (&toks[open + 1..i], i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    (&toks[open..open], toks.len())
}

/// Argument count of the call whose `(` is at `popen`; returns
/// (args, index of the closing paren). Closure parameter pipes at the
/// top level are skipped so `f(|a, b| ..)` counts one argument.
fn count_args(toks: &[Tok], popen: usize) -> (usize, usize) {
    let mut depth = 0i32;
    let mut i = popen;
    let mut commas = 0usize;
    let mut any = false;
    let mut in_pipes = false;
    let mut prev_sig = ' ';
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    let args = if any { commas + 1 } else { 0 };
                    return (args, i);
                }
            }
            TokKind::Punct('|') if depth == 1 => {
                // Closure params start right after `(`/`,` (or `move`).
                if in_pipes || prev_sig == '(' || prev_sig == ',' || prev_sig == 'm' {
                    in_pipes = !in_pipes;
                }
            }
            TokKind::Punct(',') if depth == 1 && !in_pipes => {
                // Trailing commas don't add an argument.
                if !toks.get(i + 1).is_some_and(|t| punct_is(t, ')')) {
                    commas += 1;
                }
            }
            _ => {}
        }
        if i > popen && depth >= 1 {
            match &toks[i].kind {
                TokKind::Punct(c) if depth == 1 => prev_sig = *c,
                TokKind::Ident(s) if depth == 1 => {
                    prev_sig = if s == "move" { 'm' } else { 'i' };
                    any = true;
                }
                _ => {
                    if depth == 1 {
                        prev_sig = 'x';
                    }
                    any = true;
                }
            }
            if depth > 1 {
                any = true;
            }
        } else if i == popen {
            prev_sig = '(';
        }
        i += 1;
    }
    (if any { commas + 1 } else { 0 }, toks.len().saturating_sub(1))
}

/// How the statement around the call consumes its value.
fn classify_consume(
    toks: &[Tok],
    body_open: usize,
    body_close: usize,
    call_idx: usize,
    close_paren: usize,
) -> Consume {
    // Forward: follow the method chain from the closing paren.
    let mut i = close_paren + 1;
    loop {
        match toks.get(i).map(|t| &t.kind) {
            Some(TokKind::Punct('?')) => return Consume::Handled,
            Some(TokKind::Punct('.')) => {
                let Some(m) = toks.get(i + 1).and_then(ident_of) else { break };
                if matches!(
                    m,
                    "ok" | "unwrap_or"
                        | "unwrap_or_default"
                        | "unwrap_or_else"
                        | "map_or"
                        | "map_or_else"
                ) {
                    return Consume::Launder(m.to_string());
                }
                if matches!(m, "is_err" | "is_ok" | "err" | "expect" | "unwrap") {
                    // Bool checks observe the outcome; unwrap/expect are
                    // L1/L6 territory, not laundering.
                    return Consume::Handled;
                }
                // Other adapter (`map_err`, `and_then`…): skip its
                // argument list and keep walking the chain.
                if toks.get(i + 2).is_some_and(|t| punct_is(t, '(')) {
                    let (_, after) = count_args(toks, i + 2);
                    i = after + 1;
                    continue;
                }
                i += 2;
                continue;
            }
            _ => break,
        }
    }

    // Backward: find the statement head.
    let mut j = call_idx;
    let mut sdepth = 0i32;
    while j > body_open {
        j -= 1;
        match &toks[j].kind {
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => sdepth += 1,
            TokKind::Punct('(') | TokKind::Punct('[') => {
                if sdepth == 0 {
                    break; // call is inside an argument list / condition
                }
                sdepth -= 1;
            }
            TokKind::Punct('{') => {
                if sdepth == 0 {
                    break;
                }
                sdepth -= 1;
            }
            TokKind::Punct(';') | TokKind::Punct(',') if sdepth == 0 => break,
            TokKind::Punct('=') if sdepth == 0 => {
                // `let x = call(..)` / `x = call(..)`: look further left
                // for the binder.
                let mut k = j;
                while k > body_open {
                    k -= 1;
                    match &toks[k].kind {
                        TokKind::Ident(s) if s == "let" => {
                            // `if let PAT =` / `while let PAT =`
                            let pat = toks.get(k + 1).and_then(ident_of);
                            if pat == Some("Ok") {
                                return Consume::IfLetOk;
                            }
                            let binds_underscore = pat == Some("_");
                            if binds_underscore {
                                return Consume::Discard;
                            }
                            return Consume::Handled;
                        }
                        TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => {
                            return Consume::Handled; // plain assignment
                        }
                        _ => {}
                    }
                }
                return Consume::Handled;
            }
            TokKind::Ident(s)
                if sdepth == 0
                    && matches!(s.as_str(), "return" | "match" | "break") =>
            {
                return Consume::Handled;
            }
            _ => {}
        }
    }
    if j <= body_open || punct_is(&toks[j], '{') || punct_is(&toks[j], ';') {
        // Statement position: either a bare discard (`call(..);`) or
        // the fn's tail expression (no `;` before the body close).
        let mut m = close_paren + 1;
        let mut fdepth = 0i32;
        while m <= body_close {
            match &toks[m].kind {
                TokKind::Punct('.') => {
                    // chain continues; forward pass already classified
                    return Consume::Handled;
                }
                TokKind::Punct(';') if fdepth == 0 => return Consume::Discard,
                TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => fdepth += 1,
                TokKind::Punct(']') | TokKind::Punct(')') => fdepth -= 1,
                TokKind::Punct('}') => {
                    if fdepth == 0 {
                        return Consume::Handled; // tail expression
                    }
                    fdepth -= 1;
                }
                _ => {}
            }
            m += 1;
        }
        return Consume::Handled;
    }
    // Inside a larger expression (argument, condition, binop…): the
    // value flows somewhere observable. Conservatively handled.
    Consume::Handled
}
