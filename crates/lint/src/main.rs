#![forbid(unsafe_code)]
//! `aalint` CLI.
//!
//! ```text
//! cargo run -p aalint -- check            # human-readable, exit 1 on findings
//! cargo run -p aalint -- check --json     # machine-readable report on stdout
//! cargo run -p aalint -- check --root DIR # scan an explicit workspace root
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut cmd: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory argument"),
            },
            "check" if cmd.is_none() => cmd = Some(arg),
            _ => return usage(&format!("unrecognized argument `{arg}`")),
        }
    }
    if cmd.as_deref() != Some("check") {
        return usage("expected the `check` subcommand");
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("aalint: cannot read current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match aalint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("aalint: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    match aalint::scan_workspace(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("aalint: scan failed under {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("aalint: {err}\nusage: aalint check [--json] [--root <workspace-dir>]");
    ExitCode::from(2)
}
