#![forbid(unsafe_code)]
//! Second fixture crate: the cross-crate call-graph linking target.
//! Not a dedup-decision crate, so its own public API is never reported;
//! the panic below matters only through callers in `core`.

/// The weight at `i`; panics when out of range.
pub fn nth_weight(table: &[u32], i: usize) -> u32 {
    table[i]
}
