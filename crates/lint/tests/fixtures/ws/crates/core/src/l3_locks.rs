//! L3 fixtures: blocking calls while a `MutexGuard` is live.

use std::sync::mpsc::{Receiver, SendError, Sender};
use std::sync::Mutex;

pub fn sends_under_lock(state: &Mutex<u32>, tx: &Sender<u32>) {
    let guard = state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if tx.send(*guard).is_err() {
        return;
    }
}

pub fn recv_on_temporary(jobs: &Mutex<Receiver<u32>>) -> Option<u32> {
    let job = jobs.lock().unwrap_or_else(std::sync::PoisonError::into_inner).recv().ok();
    job
}

pub fn drops_before_send(state: &Mutex<u32>, tx: &Sender<u32>) -> Result<(), SendError<u32>> {
    let guard = state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let value = *guard;
    drop(guard);
    tx.send(value)
}

pub fn suppressed_send(state: &Mutex<u32>, tx: &Sender<u32>) {
    let guard = state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    // aalint: allow(blocking-under-lock) -- fixture: bounded channel drained by a dedicated thread, cannot deadlock
    if tx.send(*guard).is_err() {
        return;
    }
}
