//! L2 fixtures: wall-clock reads and hash-order traversals in a
//! dedup-decision crate.

use std::collections::HashMap;
use std::time::Instant;

pub fn stamps_decisions() -> Instant {
    Instant::now()
}

pub fn leaks_hash_order(m: &HashMap<u64, u32>) -> Vec<u64> {
    let mut out = Vec::new();
    for k in m.keys() {
        out.push(*k);
    }
    out
}

pub fn sorted_is_clean(m: &HashMap<u64, u32>) -> Vec<u64> {
    let mut v: Vec<u64> = m.keys().copied().collect();
    v.sort_unstable();
    v
}

pub fn suppressed_fold(m: &HashMap<u64, u32>) -> u64 {
    // aalint: allow(unordered-iteration) -- fixture: xor-fold is order-insensitive
    m.keys().fold(0, |acc, k| acc ^ *k)
}
