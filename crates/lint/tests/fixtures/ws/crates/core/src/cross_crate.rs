//! Cross-crate fixture: core's public API reaching a panic defined in
//! the `storage` fixture crate, proving the call graph links across
//! crate boundaries through the Cargo dependency closure.

pub fn weigh(table: &[u32], i: usize) -> u32 {
    fixture_storage::nth_weight(table, i)
}
