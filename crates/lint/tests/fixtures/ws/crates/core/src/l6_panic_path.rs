//! L6 fixtures: a public API reaching an indexing panic through a
//! private helper, a leaf proved safe at its site, and an unused allow.

pub fn first_weight(table: &[u32], i: usize) -> u32 {
    pick(table, i)
}

fn pick(table: &[u32], i: usize) -> u32 {
    table[i]
}

pub fn clamped_weight(table: &[u32], i: usize) -> u32 {
    clamped_pick(table, i)
}

fn clamped_pick(table: &[u32], i: usize) -> u32 {
    let i = i.min(table.len().saturating_sub(1));
    if table.is_empty() {
        return 0;
    }
    // aalint: allow(panic-path) -- fixture: index clamped to len - 1 and the empty case returned above
    table[i]
}

pub fn no_panic_here(x: u32) -> u32 {
    // aalint: allow(panic-path) -- fixture: unused, nothing on the next line can panic
    x.wrapping_add(1)
}
