//! L1 fixtures: swallowed results and library panics.

pub fn swallows_send(tx: &std::sync::mpsc::Sender<u32>) {
    let _ = tx.send(1);
}

pub fn swallows_remove() {
    std::fs::remove_file("stale.tmp").ok();
}

pub fn panics_in_lib(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn suppressed_send(tx: &std::sync::mpsc::Sender<u32>) {
    // aalint: allow(swallowed-result) -- fixture: receiver hangup means shutdown, nothing to report
    let _ = tx.send(2);
}

pub fn suppressed_unwrap(v: Option<u32>) -> u32 {
    v.unwrap() // aalint: allow(unwrap-in-lib) -- fixture: invariant established by the caller
}
