//! Fixture crate root deliberately missing `#![forbid(unsafe_code)]`.

pub mod allow_hygiene;
pub mod l1_errors;
pub mod l2_determinism;
pub mod l3_locks;
pub mod l4_unsafe;
pub mod cross_crate;
pub mod l5_lock_order;
pub mod l6_panic_path;
pub mod l7_fallibility;
