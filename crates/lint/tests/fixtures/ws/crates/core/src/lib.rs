//! Fixture crate root deliberately missing `#![forbid(unsafe_code)]`.

pub mod allow_hygiene;
pub mod l1_errors;
pub mod l2_determinism;
pub mod l3_locks;
pub mod l4_unsafe;
