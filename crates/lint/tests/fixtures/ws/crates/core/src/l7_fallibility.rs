//! L7 fixtures: storage fallibility laundered directly, laundered
//! through a transitive wrapper, propagated properly, justified away,
//! and one unused allow.

pub struct BackendError;

pub trait ObjectBackend {
    fn put(&self, key: &str, bytes: Vec<u8>) -> Result<(), BackendError>;
}

pub struct NullBackend;

impl ObjectBackend for NullBackend {
    fn put(&self, _key: &str, _bytes: Vec<u8>) -> Result<(), BackendError> {
        Ok(())
    }
}

pub struct Uploader {
    backend: NullBackend,
}

impl Uploader {
    pub fn fire_and_forget(&self, key: &str, bytes: Vec<u8>) {
        self.backend.put(key, bytes).unwrap_or(());
    }

    pub fn forward(&self, key: &str, bytes: Vec<u8>) -> Result<(), BackendError> {
        self.backend.put(key, bytes)
    }

    fn relay(&self, key: &str, bytes: Vec<u8>) -> Result<(), BackendError> {
        self.backend.put(key, bytes)
    }

    pub fn transitive_discard(&self, key: &str) {
        self.relay(key, Vec::new()).unwrap_or(());
    }

    pub fn justified(&self, key: &str, bytes: Vec<u8>) {
        // aalint: allow(discarded-fallibility) -- fixture: telemetry write, losing it is acceptable
        self.backend.put(key, bytes).unwrap_or(());
    }

    pub fn infallible_work(&self) -> usize {
        // aalint: allow(discarded-fallibility) -- fixture: unused, nothing fallible on the next line
        self.backend_name().len()
    }

    fn backend_name(&self) -> &'static str {
        "null"
    }
}
