//! L4 fixture: `unsafe` outside vendor/ (never suppressible).

pub fn peeks(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}
