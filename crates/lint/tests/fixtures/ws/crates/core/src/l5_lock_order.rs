//! L5 fixtures: opposite-order acquisition of two named locks, once
//! reported and once justified away.

use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
    gamma: Mutex<u32>,
    delta: Mutex<u32>,
}

impl Pair {
    pub(crate) fn forward(&self) -> u32 {
        let a = self.alpha.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let b = self.beta.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *a + *b
    }

    pub(crate) fn backward(&self) -> u32 {
        let b = self.beta.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let a = self.alpha.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *a - *b
    }

    pub(crate) fn gamma_then_delta(&self) -> u32 {
        let g = self.gamma.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let d = self.delta.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *g + *d
    }

    pub(crate) fn delta_then_gamma(&self) -> u32 {
        let d = self.delta.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // aalint: allow(lock-order-cycle) -- fixture: delta holders never also block on gamma holders in this harness
        let g = self.gamma.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *g - *d
    }

    pub(crate) fn single_lock(&self) -> u32 {
        // aalint: allow(lock-order-cycle) -- fixture: unused, one lock cannot cycle
        let a = self.alpha.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *a
    }
}
