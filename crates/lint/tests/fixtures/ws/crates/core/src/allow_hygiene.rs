//! Allow-machinery fixtures: unused and malformed directives are
//! themselves diagnostics, so suppressions cannot rot silently.

// aalint: allow(swallowed-result) -- fixture: nothing on the next line to suppress
pub fn nothing_to_suppress() {}

// aalint: allow(made-up-rule) -- fixture: not a suppressible rule
pub fn bad_rule() {}

pub fn no_justification(v: Option<u32>) -> u32 {
    v.unwrap() // aalint: allow(unwrap-in-lib)
}
