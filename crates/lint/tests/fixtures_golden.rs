//! Fixture-corpus tests: scans the deliberately-violating mini-workspace
//! under `tests/fixtures/ws/` and pins the exact diagnostics against a
//! golden JSON report, then drives the `aalint` binary for the three
//! exit codes the CLI contract promises (0 clean / 1 findings / 2 error).
//!
//! The fixture tree sits under a directory named `fixtures`, which both
//! the workspace walker and `classify` skip — so the corpus never leaks
//! into a scan of the real workspace, and these tests must point the
//! scanner at the fixture root explicitly.
#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_ws() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn golden() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fixtures.json");
    std::fs::read_to_string(path).expect("golden report exists")
}

#[test]
fn fixture_scan_matches_golden_json() {
    let report = aalint::scan_workspace(&fixture_ws()).expect("scan fixtures");
    assert!(!report.clean(), "the corpus exists to violate the rules");
    assert_eq!(report.render_json(), golden(), "diagnostics drifted from the golden report");
}

#[test]
fn fixture_scan_covers_every_rule() {
    let report = aalint::scan_workspace(&fixture_ws()).expect("scan fixtures");
    let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
    for rule in [
        "swallowed-result",
        "unwrap-in-lib",
        "nondeterministic-time",
        "unordered-iteration",
        "blocking-under-lock",
        "unsafe-code",
        "missing-forbid-unsafe",
        "unused-allow",
        "malformed-allow",
        "lock-order-cycle",
        "panic-path",
        "discarded-fallibility",
    ] {
        assert!(rules.contains(&rule), "no fixture exercises `{rule}`: {rules:?}");
    }
    // Each suppressible rule family also has a suppressed-by-allow
    // negative, inventoried rather than diagnosed.
    let allowed: Vec<&str> = report.allows.iter().map(|a| a.rule.as_str()).collect();
    for rule in [
        "swallowed-result",
        "unwrap-in-lib",
        "unordered-iteration",
        "blocking-under-lock",
        "lock-order-cycle",
        "panic-path",
        "discarded-fallibility",
    ] {
        assert!(allowed.contains(&rule), "no fixture allow for `{rule}`: {allowed:?}");
    }
}

#[test]
fn fixture_clean_examples_stay_clean() {
    let report = aalint::scan_workspace(&fixture_ws()).expect("scan fixtures");
    // The sorted traversal and the drop-before-send idiom are the
    // sanctioned fixes; neither may diagnose.
    let l2: Vec<u32> = report
        .diagnostics
        .iter()
        .filter(|d| d.file.ends_with("l2_determinism.rs"))
        .map(|d| d.line)
        .collect();
    assert_eq!(l2, vec![8, 13], "sorted_is_clean / suppressed_fold must not diagnose");
    let l3: Vec<u32> = report
        .diagnostics
        .iter()
        .filter(|d| d.file.ends_with("l3_locks.rs"))
        .map(|d| d.line)
        .collect();
    assert_eq!(l3, vec![8, 14], "drops_before_send / suppressed_send must not diagnose");
}

#[test]
fn cli_exits_one_with_golden_json_on_fixtures() {
    let out = Command::new(env!("CARGO_BIN_EXE_aalint"))
        .args(["check", "--json", "--root"])
        .arg(fixture_ws())
        .output()
        .expect("run aalint");
    assert_eq!(out.status.code(), Some(1), "findings must exit 1");
    assert_eq!(String::from_utf8_lossy(&out.stdout), golden());
}

#[test]
fn cli_exits_zero_on_clean_tree() {
    let dir = std::env::temp_dir().join(format!("aalint-clean-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("src")).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(
        dir.join("src/lib.rs"),
        "#![forbid(unsafe_code)]\npub fn nothing() {}\n",
    )
    .expect("write source");
    let out = Command::new(env!("CARGO_BIN_EXE_aalint"))
        .args(["check", "--root"])
        .arg(&dir)
        .output()
        .expect("run aalint");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn cli_exits_two_on_unscannable_root() {
    let out = Command::new(env!("CARGO_BIN_EXE_aalint"))
        .args(["check", "--root", "/nonexistent/aalint-no-such-dir"])
        .output()
        .expect("run aalint");
    assert_eq!(out.status.code(), Some(2));
}
