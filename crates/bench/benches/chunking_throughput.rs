//! Criterion microbenchmarks: chunking substrate throughput.
//!
//! WFC is free, SC is bookkeeping-only, CDC pays the rolling-hash scan —
//! the cost ladder behind Fig. 4's rows and the intelligent chunker's
//! dispatch decisions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use aadedupe_chunking::{CdcChunker, CdcParams, Chunker, ScChunker, WfcChunker};

fn data(len: usize) -> Vec<u8> {
    let mut x = 0x243F6A8885A308D3u64;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 32) as u8
        })
        .collect()
}

fn bench_chunkers(c: &mut Criterion) {
    let input = data(4 << 20);
    let mut group = c.benchmark_group("chunking");
    group.throughput(Throughput::Bytes(input.len() as u64));

    let wfc = WfcChunker::new();
    group.bench_function("wfc", |b| b.iter(|| black_box(wfc.chunk(black_box(&input)))));

    let sc = ScChunker::new(8 * 1024);
    group.bench_function("sc_8k", |b| b.iter(|| black_box(sc.chunk(black_box(&input)))));

    let cdc = CdcChunker::default();
    group.bench_function("cdc_8k_avg", |b| {
        b.iter(|| black_box(cdc.chunk(black_box(&input))));
    });
    group.finish();
}

fn bench_cdc_params(c: &mut Criterion) {
    let input = data(4 << 20);
    let mut group = c.benchmark_group("cdc_avg_size");
    group.throughput(Throughput::Bytes(input.len() as u64));
    for avg in [4096usize, 8192, 16384] {
        let params = CdcParams {
            min_size: avg / 4,
            avg_size: avg,
            max_size: avg * 2,
            window: 48,
        };
        let cdc = CdcChunker::new(params);
        group.bench_with_input(BenchmarkId::from_parameter(avg), &input, |b, d| {
            b.iter(|| black_box(cdc.chunk(black_box(d))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chunkers, bench_cdc_params);
criterion_main!(benches);
