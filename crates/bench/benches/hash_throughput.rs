//! Criterion microbenchmarks: hash substrate throughput.
//!
//! Underpins Fig. 3's ordering — Rabin96 (weak, table-driven) should beat
//! MD5, which should beat SHA-1 — and tracks the rolling-hash cost that
//! dominates CDC.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use aadedupe_hashing::rabin::{RabinFingerprinter, RollingHash};
use aadedupe_hashing::{md5, rabin96, sha1};

fn data(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15).to_le_bytes()[0]).collect()
}

fn bench_digests(c: &mut Criterion) {
    let mut group = c.benchmark_group("digest");
    for size in [8 * 1024usize, 1 << 20] {
        let input = data(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("rabin96", size), &input, |b, d| {
            b.iter(|| black_box(rabin96(black_box(d))));
        });
        group.bench_with_input(BenchmarkId::new("md5", size), &input, |b, d| {
            b.iter(|| black_box(md5(black_box(d))));
        });
        group.bench_with_input(BenchmarkId::new("sha1", size), &input, |b, d| {
            b.iter(|| black_box(sha1(black_box(d))));
        });
        group.bench_with_input(BenchmarkId::new("rabin53_stream", size), &input, |b, d| {
            b.iter(|| {
                let mut f = RabinFingerprinter::new();
                f.update(black_box(d));
                black_box(f.finish())
            });
        });
    }
    group.finish();
}

fn bench_rolling(c: &mut Criterion) {
    let mut group = c.benchmark_group("rolling");
    let input = data(1 << 20);
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("roll_48B_window", |b| {
        b.iter(|| {
            let mut rh = RollingHash::new(48);
            for &x in &input[..48] {
                rh.push(x);
            }
            let mut acc = 0u64;
            for i in 48..input.len() {
                rh.roll(input[i - 48], input[i]);
                acc ^= rh.value();
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_digests, bench_rolling);
criterion_main!(benches);
