//! Criterion microbenchmarks: index lookup paths.
//!
//! Compares the monolithic full index against the application-aware
//! partitioned index, including the parallel batch lookup only the
//! partitioned structure supports (the index-parallelism direction of the
//! paper's §VI).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aadedupe_filetype::AppType;
use aadedupe_hashing::{Fingerprint, HashAlgorithm};
use aadedupe_index::{AppAwareIndex, ChunkEntry, ChunkIndex, MonolithicIndex};

fn fingerprints(n: usize) -> Vec<(AppType, Fingerprint)> {
    (0..n)
        .map(|i| {
            let app = AppType::ALL[i % AppType::ALL.len()];
            (app, Fingerprint::compute(HashAlgorithm::Sha1, &(i as u64).to_le_bytes()))
        })
        .collect()
}

fn bench_lookup(c: &mut Criterion) {
    let entries = fingerprints(50_000);
    let mono = MonolithicIndex::new(1 << 20);
    let aware = AppAwareIndex::new(1 << 16);
    for (app, fp) in &entries {
        mono.insert(*fp, ChunkEntry::new(8192, 0, 0));
        aware.insert(*app, *fp, ChunkEntry::new(8192, 0, 0));
    }

    let mut group = c.benchmark_group("index_lookup_50k");
    group.bench_function("monolithic_serial", |b| {
        b.iter(|| {
            for (_, fp) in &entries {
                black_box(ChunkIndex::lookup(&mono, fp));
            }
        });
    });
    group.bench_function("app_aware_serial", |b| {
        b.iter(|| {
            for (app, fp) in &entries {
                black_box(aware.lookup(*app, fp));
            }
        });
    });
    group.bench_function("app_aware_parallel_batch", |b| {
        b.iter(|| black_box(aware.lookup_batch_parallel(black_box(&entries))));
    });
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let entries = fingerprints(10_000);
    let mut group = c.benchmark_group("index_insert_10k");
    group.bench_function("monolithic", |b| {
        b.iter(|| {
            let mono = MonolithicIndex::new(1 << 20);
            for (_, fp) in &entries {
                mono.insert(*fp, ChunkEntry::new(8192, 0, 0));
            }
            black_box(ChunkIndex::len(&mono))
        });
    });
    group.bench_function("app_aware", |b| {
        b.iter(|| {
            let aware = AppAwareIndex::new(1 << 16);
            for (app, fp) in &entries {
                aware.insert(*app, *fp, ChunkEntry::new(8192, 0, 0));
            }
            black_box(aware.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_insert);
criterion_main!(benches);
