//! Ablation: application-aware index vs monolithic full index.
//!
//! Isolates the paper's index-partitioning contribution (§III.E) from the
//! chunking/hash policy: the same fingerprint stream (from a real synthetic
//! snapshot, chunked with the AA policy) is driven through (a) one
//! monolithic index and (b) per-application partitions, under an equal
//! total modelled-RAM budget. Reported: modelled disk probes, the time the
//! seek model adds, wall-clock lookup time, and the parallel batch-lookup
//! speedup the partitioned structure enables.
//!
//! Run: `cargo run --release -p aadedupe-bench --bin ablation_index`

use std::time::Instant;

use aadedupe_bench::{fmt_bytes, print_table, EvalConfig};
use aadedupe_chunking::{CdcChunker, Chunker, ChunkingMethod, ScChunker, WfcChunker};
use aadedupe_core::timing::DISK_SEEK;
use aadedupe_filetype::{AppType, DedupPolicy};
use aadedupe_hashing::Fingerprint;
use aadedupe_index::{AppAwareIndex, ChunkEntry, ChunkIndex, MonolithicIndex};
use aadedupe_workload::{DatasetSpec, Generator};

fn main() {
    let cfg = EvalConfig::from_env();
    // Default to half the evaluation budget: small enough that the
    // monolithic index spills at bench scale, as it would at paper scale.
    let ram_total: usize = std::env::var("AA_RAM_ENTRIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| aadedupe_bench::ram_budget_entries(cfg.dataset_bytes) / 2);
    println!(
        "Ablation — index structure over a {} snapshot, total RAM budget {} entries",
        fmt_bytes(cfg.dataset_bytes),
        ram_total
    );

    // Build the (app, fingerprint, len) stream with the AA-Dedupe policy.
    let mut generator = Generator::new(DatasetSpec::eval_mix(cfg.dataset_bytes), cfg.seed);
    let snapshot = generator.snapshot(0);
    let policy = DedupPolicy::aa_dedupe();
    let wfc = WfcChunker::new();
    let sc = ScChunker::new(8 * 1024);
    let cdc = CdcChunker::default();
    let mut stream: Vec<(AppType, Fingerprint, u32)> = Vec::new();
    for f in &snapshot.files {
        if f.len() < 10 * 1024 {
            continue;
        }
        let data = f.materialize();
        let (method, hash) = policy.for_app(f.app);
        let chunker: &dyn Chunker = match method {
            ChunkingMethod::Wfc => &wfc,
            ChunkingMethod::Sc => &sc,
            ChunkingMethod::Cdc => &cdc,
        };
        for span in chunker.chunk(&data) {
            let bytes = span.slice(&data);
            stream.push((f.app, Fingerprint::compute(hash, bytes), bytes.len() as u32));
        }
    }
    println!("fingerprint stream: {} chunks", stream.len());

    // (a) Monolithic index with the full budget.
    let mono = MonolithicIndex::new(ram_total);
    let t0 = Instant::now();
    for (pass, _) in [(0, ()), (1, ())] {
        for (_, fp, len) in &stream {
            if mono.lookup(fp).is_none() && pass == 0 {
                mono.insert(*fp, ChunkEntry::new(*len as u64, 0, 0));
            }
        }
    }
    let mono_wall = t0.elapsed();
    let mono_stats = mono.stats();

    // (b) Application-aware partitions under the same total budget.
    let aware = AppAwareIndex::new(ram_total / AppType::ALL.len());
    let t0 = Instant::now();
    for (pass, _) in [(0, ()), (1, ())] {
        for (app, fp, len) in &stream {
            if aware.lookup(*app, fp).is_none() && pass == 0 {
                aware.insert(*app, *fp, ChunkEntry::new(*len as u64, 0, 0));
            }
        }
    }
    let aware_wall = t0.elapsed();
    let aware_stats = aware.stats();

    // (c) Application-aware with one-hot residency: the client processes
    // one application stream at a time, so at any moment a single
    // partition occupies the whole RAM budget -- AA-Dedupe's actual
    // deployment model (paper SIII.E "small independent indices").
    let onehot = AppAwareIndex::new(ram_total);
    let t0 = Instant::now();
    for (pass, _) in [(0, ()), (1, ())] {
        for (app, fp, len) in &stream {
            if onehot.lookup(*app, fp).is_none() && pass == 0 {
                onehot.insert(*app, *fp, ChunkEntry::new(*len as u64, 0, 0));
            }
        }
    }
    let onehot_wall = t0.elapsed();
    let onehot_stats = onehot.stats();

    let row = |name: &str, st: aadedupe_index::IndexStats, wall: std::time::Duration| {
        vec![
            name.to_string(),
            st.lookups.to_string(),
            st.disk_reads.to_string(),
            format!("{:.3} s", (DISK_SEEK * st.disk_reads as u32).as_secs_f64()),
            format!("{:.3} s", wall.as_secs_f64()),
        ]
    };
    let rows = vec![
        row("monolithic", mono_stats, mono_wall),
        row("app-aware (equal split)", aware_stats, aware_wall),
        row("app-aware (one-hot)", onehot_stats, onehot_wall),
    ];
    print_table(
        "Index ablation (equal total RAM)",
        &["index", "lookups", "modelled disk probes", "modelled seek time", "wall time"],
        &rows,
    );

    // Parallel batch lookups: only possible for the partitioned structure.
    let queries: Vec<(AppType, Fingerprint)> =
        stream.iter().map(|(a, f, _)| (*a, *f)).collect();
    let t0 = Instant::now();
    for (app, fp) in &queries {
        std::hint::black_box(aware.lookup(*app, fp));
    }
    let serial = t0.elapsed();
    let t0 = Instant::now();
    std::hint::black_box(aware.lookup_batch_parallel(&queries));
    let parallel = t0.elapsed();
    println!(
        "\nparallel batch lookup over {} queries: serial {:.3} s, parallel {:.3} s ({:.2}x)",
        queries.len(),
        serial.as_secs_f64(),
        parallel.as_secs_f64(),
        serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9)
    );
    println!(
        "\nexpected shape: naively splitting the RAM budget 13 ways helps nobody; the win \
         comes from one-hot residency -- one application stream is processed at a time, so \
         its (small) partition gets the whole budget and stays RAM-resident, while the \
         monolithic index must cache the union and spills. Partitions also admit parallel \
         batch lookups (paper future work; pays off beyond about 1e5 queries)."
    );
}
