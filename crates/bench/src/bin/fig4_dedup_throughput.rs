//! Figure 4: deduplication throughput of different implementations.
//!
//! The paper crosses three chunking methods (WFC, SC, CDC) with three hash
//! functions (Rabin, MD5, SHA-1) and measures end-to-end dedup throughput
//! (chunk + fingerprint + index) on a 60 MB dataset. Expected shape:
//! simpler chunking ⇒ higher throughput (WFC > SC > CDC), weaker hash ⇒
//! higher throughput (Rabin > MD5 > SHA-1), and for CDC the hash choice
//! barely matters because boundary detection dominates.
//!
//! Run: `cargo run --release -p aadedupe-bench --bin fig4_dedup_throughput`

use std::time::Instant;

use aadedupe_bench::{fmt_rate, print_table};
use aadedupe_chunking::{CdcChunker, Chunker, ScChunker, WfcChunker};
use aadedupe_hashing::{Fingerprint, HashAlgorithm};
use aadedupe_index::{ChunkEntry, ChunkIndex, MonolithicIndex};
use aadedupe_workload::Prng;

fn corpus() -> Vec<Vec<u8>> {
    let mb: usize = std::env::var("AA_FIG4_MB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);
    let file_size = 4 << 20;
    (0..(mb << 20) / file_size)
        .map(|i| {
            let mut v = vec![0u8; file_size];
            Prng::derive(&[0xF164, i as u64]).fill(&mut v);
            v
        })
        .collect()
}

/// Full dedup pass: chunk, fingerprint, index lookup/insert.
fn dedup_pass(files: &[Vec<u8>], chunker: &dyn Chunker, algo: HashAlgorithm) -> f64 {
    let index = MonolithicIndex::new(1 << 20);
    let start = Instant::now();
    for f in files {
        for span in chunker.chunk(f) {
            let bytes = span.slice(f);
            let fp = Fingerprint::compute(algo, bytes);
            if index.lookup(&fp).is_none() {
                index.insert(fp, ChunkEntry::new(bytes.len() as u64, 0, 0));
            }
        }
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    let files = corpus();
    let total: usize = files.iter().map(Vec::len).sum();
    println!(
        "Figure 4 — dedup throughput (chunk + fingerprint + index) over {} MiB",
        total >> 20
    );

    let chunkers: [(&str, Box<dyn Chunker>); 3] = [
        ("WFC", Box::new(WfcChunker::new())),
        ("SC", Box::new(ScChunker::new(8 * 1024))),
        ("CDC", Box::new(CdcChunker::default())),
    ];
    let algos = [HashAlgorithm::Rabin96, HashAlgorithm::Md5, HashAlgorithm::Sha1];

    let mut rows = Vec::new();
    let mut tp = std::collections::HashMap::new();
    for (cname, chunker) in &chunkers {
        let mut row = vec![cname.to_string()];
        for algo in algos {
            let t = dedup_pass(&files, chunker.as_ref(), algo);
            let rate = total as f64 / t;
            tp.insert((*cname, algo), rate);
            row.push(fmt_rate(rate));
        }
        rows.push(row);
    }
    print_table(
        "Fig. 4: dedup throughput, chunking × hash",
        &["chunking", "Rabin hash", "MD5", "SHA-1"],
        &rows,
    );

    println!("\nshape checks (paper Fig. 4):");
    let get = |c: &str, a: HashAlgorithm| tp[&(c, a)];
    println!(
        "  WFC ≥ SC ≥ CDC (with Rabin): {}",
        if get("WFC", HashAlgorithm::Rabin96) >= get("SC", HashAlgorithm::Rabin96)
            && get("SC", HashAlgorithm::Rabin96) >= get("CDC", HashAlgorithm::Rabin96)
        {
            "ok"
        } else {
            "VIOLATED"
        }
    );
    println!(
        "  Rabin ≥ MD5 ≥ SHA-1 (with SC): {}",
        if get("SC", HashAlgorithm::Rabin96) >= get("SC", HashAlgorithm::Md5)
            && get("SC", HashAlgorithm::Md5) >= get("SC", HashAlgorithm::Sha1)
        {
            "ok"
        } else {
            "VIOLATED"
        }
    );
    let cdc_spread = (get("CDC", HashAlgorithm::Rabin96) - get("CDC", HashAlgorithm::Sha1)).abs()
        / get("CDC", HashAlgorithm::Sha1);
    println!(
        "  CDC insensitive to hash (<60% spread): {} ({:.0}%)",
        if cdc_spread < 0.6 { "ok" } else { "VIOLATED" },
        100.0 * cdc_spread
    );
}
