//! Table 1: chunk-level data redundancy in typical PC applications.
//!
//! For each of the twelve application types, generates a single-type
//! corpus, removes whole-file duplicates (as the paper does before its
//! chunk-level measurement), then reports the dedup ratio achieved by
//! 8 KiB static chunking (SC) and by 8 KiB-average content-defined
//! chunking (CDC), next to the paper's measured values.
//!
//! Run: `cargo run --release -p aadedupe-bench --bin table1_redundancy`

use std::collections::{HashMap, HashSet};

use aadedupe_bench::print_table;
use aadedupe_chunking::{CdcChunker, Chunker, ScChunker};
use aadedupe_filetype::AppType;
use aadedupe_hashing::sha1;
use aadedupe_workload::{AppSpec, DatasetSpec, Generator};

/// Dedup ratio of `files` under `chunker` (after file-level dedup).
fn chunk_dr(files: &[Vec<u8>], chunker: &dyn Chunker) -> f64 {
    let mut unique: HashMap<[u8; 20], u64> = HashMap::new();
    let mut total = 0u64;
    for f in files {
        for span in chunker.chunk(f) {
            let bytes = span.slice(f);
            total += bytes.len() as u64;
            unique.entry(sha1(bytes)).or_insert(bytes.len() as u64);
        }
    }
    let stored: u64 = unique.values().sum();
    if stored == 0 {
        1.0
    } else {
        total as f64 / stored as f64
    }
}

fn main() {
    let per_type_bytes: u64 = std::env::var("AA_TYPE_MB")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(24)
        << 20;
    println!(
        "Table 1 — per-application chunk-level redundancy over {} MiB/type corpora",
        per_type_bytes >> 20
    );

    let sc = ScChunker::new(8 * 1024);
    let cdc = CdcChunker::default();
    let mut rows = Vec::new();

    for app in AppType::TABLE1 {
        // Single-type dataset, calibrated like the full evaluation corpus.
        let scale = (app.profile().dataset_mb as f64 * 1024.0 * 1024.0
            / per_type_bytes as f64)
            .max(1.0)
            .powf(0.7);
        let spec = DatasetSpec {
            apps: vec![AppSpec::calibrated(app, per_type_bytes, scale)],
            tiny: aadedupe_workload::model::TinySpec {
                initial_files: 0,
                mean_file_size: 1024,
                weekly_new_files: 0,
                weekly_modify_fraction: 0.0,
                weekly_delete_fraction: 0.0,
            },
        };
        let mut generator = Generator::new(spec, 0x7AB1E ^ app.tag() as u64);
        let snapshot = generator.snapshot(0);

        // File-level dedup first.
        let mut seen_files: HashSet<[u8; 20]> = HashSet::new();
        let mut files: Vec<Vec<u8>> = Vec::new();
        let mut mean_size = 0u64;
        for f in &snapshot.files {
            let data = f.materialize();
            mean_size += data.len() as u64;
            if seen_files.insert(sha1(&data)) {
                files.push(data);
            }
        }
        mean_size /= snapshot.files.len().max(1) as u64;

        let sc_dr = chunk_dr(&files, &sc);
        let cdc_dr = chunk_dr(&files, &cdc);
        let p = app.profile();
        rows.push(vec![
            app.name().to_string(),
            format!("{}", files.iter().map(|f| f.len() as u64).sum::<u64>() >> 20),
            aadedupe_bench::fmt_bytes(mean_size),
            format!("{sc_dr:.3}"),
            format!("{cdc_dr:.3}"),
            format!("{:.3}", p.sc_dr),
            format!("{:.3}", p.cdc_dr),
        ]);
    }
    print_table(
        "Table 1: SC vs CDC dedup ratio per application (measured vs paper)",
        &["type", "MiB", "mean file", "SC DR", "CDC DR", "paper SC", "paper CDC"],
        &rows,
    );
    println!("\nExpected shape: compressed types ≈ 1.00x; SC ≥ CDC for PDF/EXE/VMDK;");
    println!("CDC ≥ SC for DOC/TXT/PPT; VMDK carries the most sub-file redundancy.");
}
