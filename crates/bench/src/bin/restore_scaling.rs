//! Restore scaling: restore throughput versus fetch-worker count.
//!
//! Backs up a synthetic mixed-category workload once, then restores the
//! session through the pipelined bounded-memory restore engine with
//! `workers ∈ {1, 2, 4, 8}` and reports wall-clock throughput and speedup
//! as a JSON document on stdout, one object per configuration — the
//! restore-side counterpart of `pipeline_scaling`.
//!
//! Run: `cargo run --release -p aadedupe-bench --bin restore_scaling`
//!
//! Environment knobs:
//! * `AA_RESTORE_MB` — approximate workload size in MiB (default 64).
//! * `AA_RESTORE_WORKERS` — comma-separated worker counts (default 1,2,4,8).
//! * `AA_RESTORE_REPS` — timed repetitions per configuration; the fastest
//!   rep is reported (default 3).
//! * `AA_RESTORE_CACHE` — container-cache capacity (default 16).

use std::time::Instant;

use aadedupe_bench::perf::{env_or, mixed_corpus, BIN_SCHEMA_VERSION};
use aadedupe_cloud::CloudSim;
use aadedupe_core::{
    restore_session_pipelined, AaDedupe, AaDedupeConfig, BackupScheme, PipelineConfig,
    RestoreOptions, RetryPolicy,
};
use aadedupe_filetype::SourceFile;
use aadedupe_obs::{Queue, Recorder, Snapshot, Stage};

fn restore_once(cloud: &CloudSim, opts: &RestoreOptions, rec: &Recorder) -> (f64, usize) {
    let start = Instant::now();
    let files =
        restore_session_pipelined(cloud, "aa-dedupe", 0, opts, &RetryPolicy::default(), rec)
            .expect("restore");
    let seconds = start.elapsed().as_secs_f64();
    (seconds, files.len())
}

/// The per-stage breakdown as a JSON fragment for one result object.
fn stage_json(snap: &Snapshot) -> String {
    let stages = [Stage::RestoreFetch, Stage::RestoreVerify, Stage::RestoreAssemble]
        .iter()
        .map(|&s| format!("\"{}\": {}", s.name(), snap.stage_total(s).as_nanos()))
        .collect::<Vec<_>>()
        .join(", ");
    let busy: u64 = snap.workers.iter().map(|w| w.busy_ns).sum();
    let idle: u64 = snap.workers.iter().map(|w| w.idle_ns).sum();
    let util = if busy + idle == 0 { 1.0 } else { busy as f64 / (busy + idle) as f64 };
    format!(
        "\"stage_ns\": {{{stages}}}, \"cache_hwm\": {}, \"worker_utilization\": {util:.4}",
        snap.queue(Queue::RestoreCache).hwm
    )
}

fn main() {
    let mb: usize = env_or("AA_RESTORE_MB", 64);
    let reps: usize = env_or("AA_RESTORE_REPS", 3);
    let cache: usize = env_or("AA_RESTORE_CACHE", 16);
    let workers: Vec<usize> = std::env::var("AA_RESTORE_WORKERS")
        .map_or_else(
            |_| vec![1, 2, 4, 8],
            |s| s.split(',').map(|w| w.trim().parse().expect("worker count")).collect(),
        );

    let files = mixed_corpus(mb, 0xE5702E, "restore");
    let logical: usize = files.iter().map(|f| f.data.len()).sum();
    eprintln!(
        "restore_scaling: {} files, {} MiB, workers {:?}, cache {}, best of {}",
        files.len(),
        logical >> 20,
        workers,
        cache,
        reps
    );

    // One backup; every configuration restores the same session.
    let cloud = CloudSim::with_paper_defaults();
    let mut engine = AaDedupe::with_config(
        cloud.clone(),
        AaDedupeConfig { pipeline: PipelineConfig::with_workers(4), ..AaDedupeConfig::default() },
    );
    let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
    engine.backup_session(&sources).expect("backup");

    let mut results: Vec<(usize, f64, Snapshot)> = Vec::new();
    for &w in &workers {
        let opts = RestoreOptions { workers: w, cache_capacity: cache };
        let disabled = Recorder::disabled();
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let (t, n) = restore_once(&cloud, &opts, &disabled);
            assert_eq!(n, files.len(), "restore returned every file");
            best = best.min(t);
        }
        // One extra profiled run, kept out of the timed reps so recording
        // overhead never pollutes the throughput numbers.
        let recorder = Recorder::new();
        restore_once(&cloud, &opts, &recorder);
        results.push((w, best, recorder.snapshot()));
    }

    let baseline = results
        .iter()
        .find(|(w, _, _)| *w == 1)
        .map_or(results[0].1, |(_, t, _)| *t);
    println!("{{");
    println!("  \"schema_version\": {BIN_SCHEMA_VERSION},");
    println!("  \"workload_mib\": {},", logical >> 20);
    println!("  \"files\": {},", files.len());
    println!("  \"reps\": {reps},");
    println!("  \"cache_capacity\": {cache},");
    println!("  \"results\": [");
    for (i, (w, t, profile)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        println!(
            "    {{\"workers\": {w}, \"seconds\": {t:.4}, \"mib_per_s\": {:.2}, \"speedup\": {:.3}, {}}}{comma}",
            logical as f64 / (1 << 20) as f64 / t,
            baseline / t,
            stage_json(profile)
        );
    }
    println!("  ]");
    println!("}}");
}
