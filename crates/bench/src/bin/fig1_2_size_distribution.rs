//! Figures 1 & 2: file count and storage capacity by file-size bucket.
//!
//! Paper's headline numbers: ~61 % of files are < 10 KiB but hold only
//! ~1.2 % of bytes; ~1.4 % of files are > 1 MiB and hold ~75 % of bytes.
//!
//! Run: `cargo run --release -p aadedupe-bench --bin fig1_2_size_distribution`

use aadedupe_bench::{fmt_bytes, print_table, EvalConfig};
use aadedupe_workload::{DatasetSpec, Generator, SizeBucket, SizeHistogram};

fn main() {
    let cfg = EvalConfig::from_env();
    println!(
        "Figures 1 & 2 — size distribution of a {} synthetic PC dataset (seed {})",
        fmt_bytes(cfg.dataset_bytes),
        cfg.seed
    );
    let mut generator = Generator::new(DatasetSpec::paper_scaled(cfg.dataset_bytes), cfg.seed);
    let snapshot = generator.snapshot(0);
    let h = SizeHistogram::of_snapshot(&snapshot);

    let rows: Vec<Vec<String>> = SizeBucket::ALL
        .iter()
        .map(|&b| {
            vec![
                b.label().to_string(),
                h.count(b).to_string(),
                format!("{:.1}%", 100.0 * h.count_fraction(b)),
                fmt_bytes(h.bytes(b)),
                format!("{:.1}%", 100.0 * h.bytes_fraction(b)),
            ]
        })
        .collect();
    print_table(
        "Fig. 1 + Fig. 2: files and bytes per size bucket",
        &["size bucket", "files", "% files (Fig.1)", "bytes", "% bytes (Fig.2)"],
        &rows,
    );

    println!();
    println!(
        "tiny (<10KB): {:.1}% of files, {:.2}% of bytes   (paper: ~61%, ~1.2%)",
        100.0 * h.count_fraction(SizeBucket::Under10K),
        100.0 * h.bytes_fraction(SizeBucket::Under10K),
    );
    println!(
        "large (>1MB): {:.1}% of files, {:.1}% of bytes   (paper: ~1.4%, ~75%)",
        100.0 * h.large_file_count_fraction(),
        100.0 * h.large_file_bytes_fraction(),
    );
    println!(
        "total: {} files, {}",
        h.total_count(),
        fmt_bytes(h.total_bytes())
    );
}
