//! Reclaimed bytes vs. churn: the longitudinal vacuum figure.
//!
//! Grows a 20-session corpus at several churn levels (the fraction of
//! each session's bytes that are session-unique rather than shared with
//! every other session), applies keep-last-5 retention, runs one vacuum
//! pass, and reports how much of the stored space came back — split into
//! what retention's own whole-container deletes reclaimed and what the
//! vacuum rewrite added on top. The paper never needed this figure (its
//! evaluation is append-only), but any deployed backup service does:
//! space does not return on its own.
//!
//! Run: `cargo run --release -p aadedupe-bench --bin vacuum_churn`
//! (`AA_EVAL_MB` scales the corpus; `AA_SESSIONS` the session count.)

use std::sync::Arc;

use aadedupe_bench::{fmt_bytes, print_table, EvalConfig};
use aadedupe_cloud::{CloudSim, ObjectBackend, ObjectStore, PriceModel, WanModel};
use aadedupe_core::{
    AaDedupe, AaDedupeConfig, BackupScheme, PipelineConfig, RetentionPolicy, VacuumOptions,
};
use aadedupe_filetype::{MemoryFile, SourceFile};

const KEEP: usize = 5;

/// One session at a given churn level. Every session appends to a
/// cumulative journal (those tail chunks stay live forever) and writes a
/// same-stream scratch file that only this session references. Both are
/// new bytes in the same app stream, so the packer interleaves them into
/// the same containers — when retention later kills the scratch chunks,
/// the dead bytes are stranded next to live journal bytes and only a
/// vacuum rewrite can reclaim them. `churn` is the scratch share.
fn session_files(
    session: usize,
    per_session_bytes: u64,
    churn: f64,
    seed: u64,
) -> Vec<MemoryFile> {
    let scratch = (per_session_bytes as f64 * churn) as usize;
    let append = per_session_bytes as usize - scratch;
    let fill = |n: usize, salt: u64| -> Vec<u8> {
        (0..n).map(|i| ((i as u64).wrapping_mul(salt | 1).wrapping_add(salt >> 5) % 251) as u8).collect()
    };
    let mut journal = Vec::with_capacity(append * (session + 1));
    for s in 0..=session {
        journal.extend(fill(append, seed ^ (s as u64).wrapping_mul(0x517C_C1B7)));
    }
    vec![
        MemoryFile::new("user/txt/journal.txt", journal),
        MemoryFile::new(
            format!("user/txt/scratch-{session:03}.txt"),
            fill(scratch, !seed ^ (session as u64 + 1).wrapping_mul(0x9E37_79B9)),
        ),
    ]
}

fn main() {
    let cfg = EvalConfig::from_env();
    let sessions = cfg.sessions.max(KEEP + 1);
    let per_session = (cfg.dataset_bytes / sessions as u64).max(1 << 20);
    println!(
        "Vacuum reclaim vs. churn — {sessions} sessions of {} each, keep-last {KEEP}, \
         vacuum ratio {}",
        fmt_bytes(per_session),
        VacuumOptions::default().ratio
    );

    let mut rows = Vec::new();
    for churn in [0.10, 0.25, 0.50, 0.75] {
        let inner = Arc::new(ObjectStore::new());
        let cloud = CloudSim::with_backend(
            Arc::clone(&inner) as Arc<dyn ObjectBackend>,
            WanModel::paper_defaults(),
            PriceModel::s3_april_2011(),
        );
        let mut engine = AaDedupe::with_config(
            cloud,
            AaDedupeConfig {
                pipeline: PipelineConfig::with_workers(2),
                ..AaDedupeConfig::default()
            },
        );
        for s in 0..sessions {
            let files = session_files(s, per_session, churn, cfg.seed);
            let sources: Vec<&dyn SourceFile> =
                files.iter().map(|f| f as &dyn SourceFile).collect();
            engine.backup_session(&sources).expect("backup");
        }
        let before = inner.stored_bytes();
        engine.apply_retention(&RetentionPolicy::KeepLast(KEEP)).expect("retention");
        let after_retention = inner.stored_bytes();
        let report = engine.vacuum(&VacuumOptions::default()).expect("vacuum");
        let after_vacuum = inner.stored_bytes();
        rows.push(vec![
            format!("{:.0}%", churn * 100.0),
            fmt_bytes(before),
            fmt_bytes(before - after_retention),
            fmt_bytes(after_retention - after_vacuum),
            format!("{:.1}%", 100.0 * (before - after_vacuum) as f64 / before as f64),
            report.containers_rewritten.to_string(),
            report.relocations.to_string(),
        ]);
    }
    print_table(
        "Reclaimed space after keep-last-5 retention + one vacuum pass",
        &[
            "churn",
            "stored before",
            "retention reclaim",
            "vacuum reclaim",
            "total reclaimed",
            "rewritten",
            "relocations",
        ],
        &rows,
    );
    println!(
        "\nshape: retention's own deletes only reclaim containers that died whole, so \
         its share grows with churn; the vacuum share is the dead bytes stranded next \
         to live journal bytes and peaks at mid churn — below that containers stay \
         above the 0.5 liveness bar, above it scratch fills whole containers that die \
         on their own. Every retained session stays bit-exact (tests/vacuum.rs)."
    );
}
