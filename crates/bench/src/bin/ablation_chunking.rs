//! Ablation: application-aware chunking vs one-size-fits-all.
//!
//! Swaps AA-Dedupe's per-category chunking dispatch for uniform policies —
//! all-CDC (what Avamar does), all-SC, all-WFC — while keeping everything
//! else (index, containers, hash-per-policy) identical. Isolates
//! Observations 1 and 3: compressed data doesn't deserve sub-file
//! chunking, static data prefers SC, dynamic data needs CDC.
//!
//! Run: `cargo run --release -p aadedupe-bench --bin ablation_chunking`

use aadedupe_bench::{fmt_bytes, fmt_rate, print_table, run_evaluation_with, EvalConfig};
use aadedupe_chunking::ChunkingMethod;
use aadedupe_cloud::CloudSim;
use aadedupe_core::{AaDedupe, AaDedupeConfig, BackupScheme};
use aadedupe_filetype::DedupPolicy;
use aadedupe_hashing::HashAlgorithm;
use aadedupe_metrics::SessionReport;

fn scheme(cloud: &CloudSim, policy: DedupPolicy, key: &str) -> Box<dyn BackupScheme> {
    let config = AaDedupeConfig { policy, scheme_key: key.into(), ..AaDedupeConfig::default() };
    Box::new(AaDedupe::with_config(cloud.clone(), config))
}

fn main() {
    let cfg = EvalConfig::from_env();
    println!(
        "Ablation — chunking policy ({} × {} sessions)",
        fmt_bytes(cfg.dataset_bytes),
        cfg.sessions
    );
    let runs = run_evaluation_with(cfg, |cloud| {
        vec![
            scheme(cloud, DedupPolicy::aa_dedupe(), "aa-adaptive"),
            scheme(
                cloud,
                DedupPolicy::uniform(ChunkingMethod::Cdc, HashAlgorithm::Sha1),
                "all-cdc",
            ),
            scheme(
                cloud,
                DedupPolicy::uniform(ChunkingMethod::Sc, HashAlgorithm::Md5),
                "all-sc",
            ),
            scheme(
                cloud,
                DedupPolicy::uniform(ChunkingMethod::Wfc, HashAlgorithm::Rabin96),
                "all-wfc",
            ),
        ]
    });

    let labels = ["adaptive (AA)", "all-CDC+SHA1", "all-SC+MD5", "all-WFC+Rabin"];
    let mut rows = Vec::new();
    for (label, run) in labels.iter().zip(&runs) {
        let cpu: f64 = run.reports.iter().map(|r| r.dedup_cpu.as_secs_f64()).sum();
        let logical: u64 = run.reports.iter().map(|r| r.logical_bytes).sum();
        let stored: u64 = run.reports.iter().map(|r| r.stored_bytes).sum();
        let chunks: u64 = run.reports.iter().map(|r| r.chunks_total).sum();
        let de: f64 =
            run.reports.iter().skip(1).map(SessionReport::de).sum::<f64>() / (cfg.sessions - 1).max(1) as f64;
        rows.push(vec![
            label.to_string(),
            chunks.to_string(),
            format!("{:.3} s", cpu),
            format!("{:.2}", logical as f64 / stored.max(1) as f64),
            fmt_rate(de),
        ]);
    }
    print_table(
        "Chunking-policy ablation (identical data)",
        &["policy", "chunks", "dedup CPU", "cumulative DR", "avg DE (s2..)"],
        &rows,
    );
    println!(
        "\nexpected shape: all-WFC is fastest but loses DR (no sub-file dedup); all-CDC \
         maximises DR but burns CPU on compressed data for nothing; the adaptive policy \
         approaches all-CDC's DR at a fraction of the CPU — the highest DE."
    );
}
