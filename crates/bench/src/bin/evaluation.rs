//! Figures 7–11: the full five-scheme evaluation.
//!
//! Runs Jungle Disk, BackupPC, Avamar, SAM and AA-Dedupe over the same ten
//! weekly full backups and regenerates:
//!
//! * **Fig. 7** — cumulative cloud storage per session,
//! * **Fig. 8** — dedup efficiency (bytes saved per second) per session,
//! * **Fig. 9** — backup window per session (NT = 500 KB/s),
//! * **Fig. 10** — monthly cloud cost (S3 April 2011 prices),
//! * **Fig. 11** — energy per session (source-dedup schemes).
//!
//! Run: `cargo run --release -p aadedupe-bench --bin evaluation`
//! (`AA_EVAL_MB=256 AA_SESSIONS=10` for a bigger run; `AA_CSV=1` for raw rows.)

use aadedupe_bench::{fmt_bytes, maybe_csv, print_table, run_evaluation, EvalConfig, SchemeRun};
use aadedupe_metrics::{report::cumulative_transferred, EnergyModel, SessionReport};

/// The paper's upload bandwidth (NT), bytes/second.
const NT: f64 = 500.0 * 1024.0;

fn per_session_table<F: Fn(&SchemeRun, usize) -> String>(
    runs: &[SchemeRun],
    sessions: usize,
    cell: F,
) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let mut headers: Vec<&'static str> = vec!["session"];
    headers.extend(runs.iter().map(|r| r.name));
    let rows = (0..sessions)
        .map(|s| {
            let mut row = vec![format!("{}", s + 1)];
            row.extend(runs.iter().map(|r| cell(r, s)));
            row
        })
        .collect();
    (headers, rows)
}

fn main() {
    let cfg = EvalConfig::from_env();
    println!(
        "Evaluation — {} schemes × {} weekly sessions × {} logical/session (seed {})",
        5,
        cfg.sessions,
        fmt_bytes(cfg.dataset_bytes),
        cfg.seed
    );
    eprintln!("running (this processes ~{} of data)...", fmt_bytes(cfg.dataset_bytes * cfg.sessions as u64 * 5));
    let runs = run_evaluation(cfg);

    // ---- Fig. 7: cumulative cloud storage -------------------------------
    let cumulative: Vec<Vec<u64>> = runs.iter().map(|r| cumulative_transferred(&r.reports)).collect();
    let (headers, rows) = per_session_table(&runs, cfg.sessions, |r, s| {
        let i = runs.iter().position(|x| std::ptr::eq(x, r)).unwrap();
        fmt_bytes(cumulative[i][s])
    });
    print_table("Fig. 7: cumulative cloud storage", &headers, &rows);

    // ---- Fig. 8: dedup efficiency ---------------------------------------
    let (headers, rows) =
        per_session_table(&runs, cfg.sessions, |r, s| aadedupe_bench::fmt_rate(r.reports[s].de()));
    print_table("Fig. 8: dedup efficiency (bytes saved per second)", &headers, &rows);

    // Average DE ratios vs AA-Dedupe (paper: AA ≈ 2× BackupPC, 5× SAM,
    // 7× Avamar). Session 0 is the seeding session with little redundancy
    // for anyone; the paper's ratios concern steady-state sessions.
    let avg_de: Vec<f64> = runs
        .iter()
        .map(|r| {
            let des: Vec<f64> = r.reports.iter().skip(1).map(SessionReport::de).collect();
            des.iter().sum::<f64>() / des.len().max(1) as f64
        })
        .collect();
    let aa = avg_de.last().copied().unwrap_or(1.0);
    println!("\naverage DE (sessions 2..): ");
    for (run, de) in runs.iter().zip(&avg_de) {
        println!(
            "  {:<12} {:>14}   AA-Dedupe/this = {:.1}x",
            run.name,
            aadedupe_bench::fmt_rate(*de),
            aa / de.max(1e-9)
        );
    }

    // ---- Fig. 9: backup window ------------------------------------------
    let (headers, rows) = per_session_table(&runs, cfg.sessions, |r, s| {
        format!("{:.1} s", r.reports[s].bws(NT))
    });
    print_table("Fig. 9: backup window (NT = 500 KB/s)", &headers, &rows);
    let avg_bws: Vec<f64> = runs
        .iter()
        .map(|r| r.reports.iter().skip(1).map(|x| x.bws(NT)).sum::<f64>() / (cfg.sessions - 1).max(1) as f64)
        .collect();
    let aa_bws = *avg_bws.last().unwrap();
    println!("\naverage backup window (sessions 2..):");
    for (run, w) in runs.iter().zip(&avg_bws) {
        println!(
            "  {:<12} {:>9.1} s   AA-Dedupe shorter by {:.0}%",
            run.name,
            w,
            100.0 * (1.0 - aa_bws / w.max(1e-9))
        );
    }

    // ---- Fig. 10: monthly cloud cost -------------------------------------
    let mut rows = Vec::new();
    for run in &runs {
        let c = run.cloud.monthly_cost();
        rows.push(vec![
            run.name.to_string(),
            fmt_bytes(run.cloud.store().stored_bytes()),
            format!("${:.4}", c.storage),
            format!("${:.4}", c.transfer),
            format!("${:.4}", c.request),
            format!("${:.4}", c.total()),
        ]);
    }
    print_table(
        "Fig. 10: monthly cloud cost (S3 April 2011 prices)",
        &["scheme", "stored", "storage $", "transfer $", "requests $", "total $"],
        &rows,
    );

    // ---- Fig. 11: energy (source-dedup schemes) ---------------------------
    let model = EnergyModel::laptop_2010();
    let dedup_runs: Vec<&SchemeRun> = runs.iter().filter(|r| r.name != "Jungle Disk").collect();
    let mut headers: Vec<&'static str> = vec!["session"];
    headers.extend(dedup_runs.iter().map(|r| r.name));
    let rows: Vec<Vec<String>> = (0..cfg.sessions)
        .map(|s| {
            let mut row = vec![format!("{}", s + 1)];
            row.extend(
                dedup_runs
                    .iter()
                    .map(|r| format!("{:.0} J", r.reports[s].energy(&model, NT))),
            );
            row
        })
        .collect();
    print_table("Fig. 11: energy per session (source-dedup schemes)", &headers, &rows);
    let total_energy: Vec<f64> = dedup_runs
        .iter()
        .map(|r| r.reports.iter().map(|x| x.energy(&model, NT)).sum::<f64>())
        .collect();
    let aa_e = *total_energy.last().unwrap();
    println!("\ntotal energy over all sessions:");
    for (run, e) in dedup_runs.iter().zip(&total_energy) {
        println!(
            "  {:<12} {:>10.0} J   this/AA-Dedupe = {:.1}x",
            run.name,
            e,
            e / aa_e.max(1e-9)
        );
    }

    maybe_csv(&cfg, &runs);
}
