//! Ablation: adaptive hash selection vs uniform strong hashing.
//!
//! Keeps AA-Dedupe's chunking dispatch (WFC/SC/CDC by category) but swaps
//! the paper's adaptive Rabin/MD5/SHA-1 selection for SHA-1 everywhere —
//! isolating Observation 4's contribution ("the use of weaker hash
//! functions for more coarse-grained chunks is the only way to reduce the
//! computational overhead").
//!
//! Run: `cargo run --release -p aadedupe-bench --bin ablation_hash`

use aadedupe_bench::{fmt_bytes, fmt_rate, print_table, run_evaluation_with, EvalConfig};
use aadedupe_cloud::CloudSim;
use aadedupe_core::{AaDedupe, AaDedupeConfig, BackupScheme};
use aadedupe_filetype::DedupPolicy;
use aadedupe_metrics::SessionReport;

fn scheme_with_policy(cloud: &CloudSim, policy: DedupPolicy, key: &str) -> Box<dyn BackupScheme> {
    let config = AaDedupeConfig { policy, scheme_key: key.into(), ..AaDedupeConfig::default() };
    Box::new(AaDedupe::with_config(cloud.clone(), config))
}

fn main() {
    let cfg = EvalConfig::from_env();
    println!(
        "Ablation — hash policy ({} × {} sessions)",
        fmt_bytes(cfg.dataset_bytes),
        cfg.sessions
    );
    let runs = run_evaluation_with(cfg, |cloud| {
        vec![
            scheme_with_policy(cloud, DedupPolicy::aa_dedupe(), "aa-adaptive"),
            scheme_with_policy(cloud, DedupPolicy::aa_chunking_strong_hash(), "aa-sha1"),
        ]
    });

    let mut rows = Vec::new();
    for (label, run) in ["adaptive Rabin/MD5/SHA-1", "uniform SHA-1"].iter().zip(&runs) {
        let cpu: f64 = run.reports.iter().map(|r| r.dedup_cpu.as_secs_f64()).sum();
        let logical: u64 = run.reports.iter().map(|r| r.logical_bytes).sum();
        let stored: u64 = run.reports.iter().map(|r| r.stored_bytes).sum();
        let de: f64 =
            run.reports.iter().map(SessionReport::de).sum::<f64>() / run.reports.len() as f64;
        rows.push(vec![
            label.to_string(),
            format!("{:.3} s", cpu),
            fmt_rate(logical as f64 / cpu),
            format!("{:.2}", logical as f64 / stored.max(1) as f64),
            fmt_rate(de),
        ]);
    }
    print_table(
        "Hash-policy ablation (identical chunking, identical data)",
        &["policy", "dedup CPU", "throughput", "DR", "avg DE"],
        &rows,
    );
    println!(
        "\nexpected shape: identical DR (hash choice does not change which chunks match), \
         lower CPU and higher DE for the adaptive policy."
    );
}
