//! Ablation: container size and tiny-file threshold sweeps.
//!
//! The container store trades request count (bigger containers ⇒ fewer
//! PUTs ⇒ lower request cost, paper §III.F) against padding waste and
//! restore granularity; the tiny-file filter trades metadata/index load
//! against a small loss of dedup coverage. Both knobs are swept here with
//! the full engine on the standard workload.
//!
//! Run: `cargo run --release -p aadedupe-bench --bin ablation_container`

use aadedupe_bench::{fmt_bytes, print_table, run_evaluation_with, EvalConfig};
use aadedupe_cloud::CloudSim;
use aadedupe_core::{AaDedupe, AaDedupeConfig, BackupScheme};

fn scheme(cloud: &CloudSim, container_size: usize, tiny: u64, key: String) -> Box<dyn BackupScheme> {
    let config = AaDedupeConfig {
        container_size,
        tiny_threshold: tiny,
        scheme_key: key,
        ..AaDedupeConfig::default()
    };
    Box::new(AaDedupe::with_config(cloud.clone(), config))
}

fn main() {
    let cfg = EvalConfig::from_env();
    println!(
        "Ablation — container size and tiny-file threshold ({} × {} sessions)",
        fmt_bytes(cfg.dataset_bytes),
        cfg.sessions
    );

    // ---- container size sweep (fixed 10 KiB tiny threshold) -------------
    let sizes = [64usize << 10, 256 << 10, 1 << 20, 4 << 20];
    let runs = run_evaluation_with(cfg, |cloud| {
        sizes
            .iter()
            .map(|&s| scheme(cloud, s, 10 * 1024, format!("aa-c{s}")))
            .collect()
    });
    let mut rows = Vec::new();
    for (&size, run) in sizes.iter().zip(&runs) {
        let puts: u64 = run.reports.iter().map(|r| r.put_requests).sum();
        let transferred: u64 = run.reports.iter().map(|r| r.transferred_bytes).sum();
        let stored: u64 = run.reports.iter().map(|r| r.stored_bytes).sum();
        let cost = run.cloud.monthly_cost();
        rows.push(vec![
            fmt_bytes(size as u64),
            puts.to_string(),
            fmt_bytes(transferred),
            format!("{:.1}%", 100.0 * (transferred.saturating_sub(stored)) as f64 / transferred.max(1) as f64),
            format!("${:.4}", cost.request),
            format!("${:.4}", cost.total()),
        ]);
    }
    print_table(
        "Container-size sweep (10 KiB tiny threshold)",
        &["container", "PUTs", "uploaded", "overhead+padding", "request $", "total $"],
        &rows,
    );

    // ---- tiny-threshold sweep (fixed 1 MiB containers) -------------------
    let thresholds: [u64; 4] = [0, 10 * 1024, 100 * 1024, 1 << 20];
    let runs = run_evaluation_with(cfg, |cloud| {
        thresholds
            .iter()
            .map(|&t| scheme(cloud, 1 << 20, t, format!("aa-t{t}")))
            .collect()
    });
    let mut rows = Vec::new();
    for (&t, run) in thresholds.iter().zip(&runs) {
        let stored: u64 = run.reports.iter().map(|r| r.stored_bytes).sum();
        let logical: u64 = run.reports.iter().map(|r| r.logical_bytes).sum();
        let chunks: u64 = run.reports.iter().map(|r| r.chunks_total).sum();
        let cpu: f64 = run.reports.iter().map(|r| r.dedup_cpu.as_secs_f64()).sum();
        rows.push(vec![
            fmt_bytes(t),
            chunks.to_string(),
            format!("{:.3} s", cpu),
            format!("{:.2}", logical as f64 / stored.max(1) as f64),
            fmt_bytes(stored),
        ]);
    }
    print_table(
        "Tiny-file threshold sweep (1 MiB containers)",
        &["threshold", "chunks", "dedup CPU", "cumulative DR", "stored"],
        &rows,
    );
    println!(
        "\nexpected shape: request cost falls with container size (padding waste grows \
         slightly); raising the tiny threshold cuts chunk count and CPU but forfeits the \
         dedup of mid-sized files, so DR drops past ~10 KiB — the paper's chosen knee."
    );
}
