//! Pipeline scaling: backup throughput versus worker-thread count.
//!
//! Runs the same synthetic workload through the engine with
//! `workers ∈ {1, 2, 4, 8}` (serial path for the workers = 1 baseline,
//! forced parallel pipeline above) and reports wall-clock throughput and
//! speedup as a JSON document on stdout, one object per configuration —
//! machine-readable so CI and plotting scripts can track scaling without
//! parsing tables.
//!
//! Run: `cargo run --release -p aadedupe-bench --bin pipeline_scaling`
//!
//! Environment knobs:
//! * `AA_SCALE_MB` — approximate workload size in MiB (default 64).
//! * `AA_SCALE_WORKERS` — comma-separated worker counts (default 1,2,4,8).
//! * `AA_SCALE_REPS` — timed repetitions per configuration; the fastest
//!   rep is reported (default 3).

use std::sync::Arc;
use std::time::Instant;

use aadedupe_bench::perf::{env_or, mixed_corpus, BIN_SCHEMA_VERSION};
use aadedupe_cloud::CloudSim;
use aadedupe_core::{AaDedupe, AaDedupeConfig, BackupScheme, PipelineConfig, PipelineMode};
use aadedupe_filetype::{MemoryFile, SourceFile};
use aadedupe_obs::{Queue, Recorder, Snapshot, Stage};

fn time_backup(files: &[MemoryFile], pipeline: PipelineConfig) -> f64 {
    let config = AaDedupeConfig { pipeline, ..AaDedupeConfig::default() };
    let mut engine = AaDedupe::with_config(CloudSim::with_paper_defaults(), config);
    let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
    let start = Instant::now();
    engine.backup_session(&sources).expect("backup");
    start.elapsed().as_secs_f64()
}

/// One extra run per configuration with the observability recorder on,
/// kept apart from the timed reps so recording overhead never pollutes
/// the throughput numbers. Returns the per-stage/queue/worker snapshot.
fn profile_backup(files: &[MemoryFile], pipeline: PipelineConfig) -> Snapshot {
    let recorder = Recorder::shared();
    let config =
        AaDedupeConfig { pipeline, recorder: Arc::clone(&recorder), ..AaDedupeConfig::default() };
    let mut engine = AaDedupe::with_config(CloudSim::with_paper_defaults(), config);
    let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
    engine.backup_session(&sources).expect("backup");
    recorder.snapshot()
}

/// The per-stage breakdown as a JSON fragment for one result object.
fn stage_json(snap: &Snapshot) -> String {
    let stages = Stage::ALL
        .iter()
        .map(|&s| format!("\"{}\": {}", s.name(), snap.stage_total(s).as_nanos()))
        .collect::<Vec<_>>()
        .join(", ");
    let queues = Queue::ALL
        .iter()
        .map(|&q| format!("\"{}\": {}", q.name(), snap.queue(q).hwm))
        .collect::<Vec<_>>()
        .join(", ");
    let busy: u64 = snap.workers.iter().map(|w| w.busy_ns).sum();
    let idle: u64 = snap.workers.iter().map(|w| w.idle_ns).sum();
    let util = if busy + idle == 0 { 1.0 } else { busy as f64 / (busy + idle) as f64 };
    format!(
        "\"stage_ns\": {{{stages}}}, \"queue_hwm\": {{{queues}}}, \"worker_utilization\": {util:.4}"
    )
}

fn main() {
    let mb: usize = env_or("AA_SCALE_MB", 64);
    let reps: usize = env_or("AA_SCALE_REPS", 3);
    let workers: Vec<usize> = std::env::var("AA_SCALE_WORKERS")
        .map_or_else(
            |_| vec![1, 2, 4, 8],
            |s| s.split(',').map(|w| w.trim().parse().expect("worker count")).collect(),
        );

    let files = mixed_corpus(mb, 0x5CA1E, "scale");
    let logical: usize = files.iter().map(|f| f.data.len()).sum();
    eprintln!(
        "pipeline_scaling: {} files, {} MiB, workers {:?}, best of {}",
        files.len(),
        logical >> 20,
        workers,
        reps
    );

    let mut results: Vec<(usize, f64, Snapshot)> = Vec::new();
    for &w in &workers {
        let pipeline = if w == 1 {
            PipelineConfig { workers: 1, queue_depth: 4, mode: PipelineMode::Serial }
        } else {
            PipelineConfig { workers: w, queue_depth: 4, mode: PipelineMode::Parallel }
        };
        let best = (0..reps.max(1))
            .map(|_| time_backup(&files, pipeline))
            .fold(f64::INFINITY, f64::min);
        let profile = profile_backup(&files, pipeline);
        results.push((w, best, profile));
    }

    let baseline = results
        .iter()
        .find(|(w, _, _)| *w == 1)
        .map_or(results[0].1, |(_, t, _)| *t);
    println!("{{");
    println!("  \"schema_version\": {BIN_SCHEMA_VERSION},");
    println!("  \"workload_mib\": {},", logical >> 20);
    println!("  \"files\": {},", files.len());
    println!("  \"reps\": {reps},");
    println!("  \"results\": [");
    for (i, (w, t, profile)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        println!(
            "    {{\"workers\": {w}, \"seconds\": {t:.4}, \"mib_per_s\": {:.2}, \"speedup\": {:.3}, {}}}{comma}",
            logical as f64 / (1 << 20) as f64 / t,
            baseline / t,
            stage_json(profile)
        );
    }
    println!("  ]");
    println!("}}");
}
