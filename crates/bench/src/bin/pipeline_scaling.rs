//! Pipeline scaling: backup throughput versus worker-thread count.
//!
//! Runs the same synthetic workload through the engine with
//! `workers ∈ {1, 2, 4, 8}` (serial path for the workers = 1 baseline,
//! forced parallel pipeline above) and reports wall-clock throughput and
//! speedup as a JSON document on stdout, one object per configuration —
//! machine-readable so CI and plotting scripts can track scaling without
//! parsing tables.
//!
//! Run: `cargo run --release -p aadedupe-bench --bin pipeline_scaling`
//!
//! Environment knobs:
//! * `AA_SCALE_MB` — approximate workload size in MiB (default 64).
//! * `AA_SCALE_WORKERS` — comma-separated worker counts (default 1,2,4,8).
//! * `AA_SCALE_REPS` — timed repetitions per configuration; the fastest
//!   rep is reported (default 3).

use std::sync::Arc;
use std::time::Instant;

use aadedupe_cloud::CloudSim;
use aadedupe_core::{AaDedupe, AaDedupeConfig, BackupScheme, PipelineConfig, PipelineMode};
use aadedupe_filetype::{MemoryFile, SourceFile};
use aadedupe_obs::{Queue, Recorder, Snapshot, Stage};
use aadedupe_workload::Prng;

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// A mixed-category corpus of ~`mb` MiB: large CDC-chunked media/archives,
/// mid-size SC-chunked documents, and a sprinkle of tiny files so every
/// pipeline stage (size filter, all three chunkers, tiny packer) is hot.
fn corpus(mb: usize) -> Vec<MemoryFile> {
    let mut files = Vec::new();
    let target = mb << 20;
    let mut produced = 0usize;
    let exts = ["pdf", "doc", "mp3", "zip", "txt", "html", "vmdk", "avi"];
    let mut i = 0usize;
    while produced < target {
        let ext = exts[i % exts.len()];
        let len = match i % 8 {
            // A few tiny files per cycle keep the bypass path exercised.
            0 => 2 * 1024,
            1 | 2 => 64 * 1024,
            3..=5 => 256 * 1024,
            _ => 1 << 20,
        };
        let mut data = vec![0u8; len];
        Prng::derive(&[0x5CA1E, i as u64]).fill(&mut data);
        // Make ~a third of the big files repeat earlier content so the
        // dedup and duplicate-chunk paths see real traffic too.
        if i % 3 == 2 && len >= 64 * 1024 {
            let half = len / 2;
            let (a, b) = data.split_at_mut(half);
            b[..half].copy_from_slice(&a[..half]);
        }
        files.push(MemoryFile::new(format!("scale/f{i:05}.{ext}"), data));
        produced += len;
        i += 1;
    }
    files
}

fn time_backup(files: &[MemoryFile], pipeline: PipelineConfig) -> f64 {
    let config = AaDedupeConfig { pipeline, ..AaDedupeConfig::default() };
    let mut engine = AaDedupe::with_config(CloudSim::with_paper_defaults(), config);
    let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
    let start = Instant::now();
    engine.backup_session(&sources).expect("backup");
    start.elapsed().as_secs_f64()
}

/// One extra run per configuration with the observability recorder on,
/// kept apart from the timed reps so recording overhead never pollutes
/// the throughput numbers. Returns the per-stage/queue/worker snapshot.
fn profile_backup(files: &[MemoryFile], pipeline: PipelineConfig) -> Snapshot {
    let recorder = Recorder::shared();
    let config =
        AaDedupeConfig { pipeline, recorder: Arc::clone(&recorder), ..AaDedupeConfig::default() };
    let mut engine = AaDedupe::with_config(CloudSim::with_paper_defaults(), config);
    let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
    engine.backup_session(&sources).expect("backup");
    recorder.snapshot()
}

/// The per-stage breakdown as a JSON fragment for one result object.
fn stage_json(snap: &Snapshot) -> String {
    let stages = Stage::ALL
        .iter()
        .map(|&s| format!("\"{}\": {}", s.name(), snap.stage_total(s).as_nanos()))
        .collect::<Vec<_>>()
        .join(", ");
    let queues = Queue::ALL
        .iter()
        .map(|&q| format!("\"{}\": {}", q.name(), snap.queue(q).hwm))
        .collect::<Vec<_>>()
        .join(", ");
    let busy: u64 = snap.workers.iter().map(|w| w.busy_ns).sum();
    let idle: u64 = snap.workers.iter().map(|w| w.idle_ns).sum();
    let util = if busy + idle == 0 { 1.0 } else { busy as f64 / (busy + idle) as f64 };
    format!(
        "\"stage_ns\": {{{stages}}}, \"queue_hwm\": {{{queues}}}, \"worker_utilization\": {util:.4}"
    )
}

fn main() {
    let mb: usize = env_or("AA_SCALE_MB", 64);
    let reps: usize = env_or("AA_SCALE_REPS", 3);
    let workers: Vec<usize> = std::env::var("AA_SCALE_WORKERS")
        .map_or_else(
            |_| vec![1, 2, 4, 8],
            |s| s.split(',').map(|w| w.trim().parse().expect("worker count")).collect(),
        );

    let files = corpus(mb);
    let logical: usize = files.iter().map(|f| f.data.len()).sum();
    eprintln!(
        "pipeline_scaling: {} files, {} MiB, workers {:?}, best of {}",
        files.len(),
        logical >> 20,
        workers,
        reps
    );

    let mut results: Vec<(usize, f64, Snapshot)> = Vec::new();
    for &w in &workers {
        let pipeline = if w == 1 {
            PipelineConfig { workers: 1, queue_depth: 4, mode: PipelineMode::Serial }
        } else {
            PipelineConfig { workers: w, queue_depth: 4, mode: PipelineMode::Parallel }
        };
        let best = (0..reps.max(1))
            .map(|_| time_backup(&files, pipeline))
            .fold(f64::INFINITY, f64::min);
        let profile = profile_backup(&files, pipeline);
        results.push((w, best, profile));
    }

    let baseline = results
        .iter()
        .find(|(w, _, _)| *w == 1)
        .map_or(results[0].1, |(_, t, _)| *t);
    println!("{{");
    println!("  \"workload_mib\": {},", logical >> 20);
    println!("  \"files\": {},", files.len());
    println!("  \"reps\": {reps},");
    println!("  \"results\": [");
    for (i, (w, t, profile)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        println!(
            "    {{\"workers\": {w}, \"seconds\": {t:.4}, \"mib_per_s\": {:.2}, \"speedup\": {:.3}, {}}}{comma}",
            logical as f64 / (1 << 20) as f64 / t,
            baseline / t,
            stage_json(profile)
        );
    }
    println!("  ]");
    println!("}}");
}
