//! Sub-RAM index scaling: disk-backed partitions on a corpus whose chunk
//! index is many times the configured RAM budget.
//!
//! The ROADMAP's "Sub-RAM index" item claims the application-aware index
//! keeps working — flat memory, near-flat throughput, identical dedup
//! decisions — when the per-partition RAM budget holds only a fraction of
//! the live fingerprints and the remainder spills to on-disk segments
//! behind a cuckoo existence filter. This bin proves it end to end:
//!
//! 1. backs the same corpus up twice (second session is all-duplicate,
//!    so lookups hammer the cache→filter→segment path) under
//!    {RAM-resident, disk-backed} × workers {1, 4};
//! 2. asserts dedup ratio, stored/transferred bytes and restored bytes
//!    are bit-identical across all four configurations;
//! 3. asserts the live index is ≥ 10× the RAM cache budget, the cache
//!    never exceeds its budget, and (disk mode) negative lookups are
//!    answered by the filter with ~zero disk probes;
//! 4. reports peak RSS (`VmHWM`) and per-configuration timings as a JSON
//!    document on stdout for CI artifacts; `AA_IDX_RSS_CAP_MB` (when > 0)
//!    turns the RSS figure into a hard assertion.
//!
//! Run: `cargo run --release -p aadedupe-bench --bin index_scaling`
//!
//! Environment knobs:
//! * `AA_IDX_MB` — approximate corpus size in MiB (default 48).
//! * `AA_IDX_RAM` — RAM-cache entries per partition (default 8, which
//!   keeps the index ≥ 10× the total cache budget at the default size).
//! * `AA_IDX_WORKERS` — comma-separated worker counts (default 1,4).
//! * `AA_IDX_RSS_CAP_MB` — peak-RSS hard cap in MiB, 0 disables (default 0).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use aadedupe_bench::perf::{env_or, machine_json, mixed_corpus, BIN_SCHEMA_VERSION};
use aadedupe_cloud::CloudSim;
use aadedupe_core::{AaDedupe, AaDedupeConfig, BackupScheme, PipelineConfig, PipelineMode};
use aadedupe_filetype::{MemoryFile, SourceFile};
use aadedupe_index::IndexStats;
use aadedupe_obs::{Counter, Recorder};

/// Peak resident set size of this process in bytes (`VmHWM` from
/// /proc/self/status), or 0 where unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kib * 1024;
        }
    }
    0
}

struct RunResult {
    label: String,
    workers: usize,
    disk_backed: bool,
    seconds_session1: f64,
    seconds_session2: f64,
    stored_bytes: u64,
    transferred_bytes: u64,
    dedup_ratio: f64,
    restored_bytes: u64,
    index_len: usize,
    stats: IndexStats,
    cache_entries: usize,
    cache_capacity: usize,
    footprint_bytes: usize,
    filter_hits: u64,
    filter_false_positives: u64,
    disk_probes: u64,
}

fn run(
    files: &[MemoryFile],
    workers: usize,
    ram_entries: usize,
    index_dir: Option<PathBuf>,
) -> RunResult {
    let disk_backed = index_dir.is_some();
    let label = format!(
        "{}-w{workers}",
        if disk_backed { "disk" } else { "resident" }
    );
    let recorder = Recorder::shared();
    let config = AaDedupeConfig {
        pipeline: if workers == 1 {
            PipelineConfig { workers: 1, queue_depth: 4, mode: PipelineMode::Serial }
        } else {
            PipelineConfig { workers, queue_depth: 4, mode: PipelineMode::Parallel }
        },
        ram_entries_per_partition: ram_entries,
        index_dir,
        recorder: Arc::clone(&recorder),
        ..AaDedupeConfig::default()
    };
    let mut engine = AaDedupe::with_config(CloudSim::with_paper_defaults(), config);
    let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();

    let start = Instant::now();
    let r1 = engine.backup_session(&sources).expect("session 1");
    let seconds_session1 = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let r2 = engine.backup_session(&sources).expect("session 2");
    let seconds_session2 = start.elapsed().as_secs_f64();
    assert!(engine.index().io_error().is_none(), "{label}: index storage error");

    let restored_bytes: u64 = engine
        .restore_session(1)
        .expect("restore")
        .iter()
        .map(|f| f.data.len() as u64)
        .sum();

    let stats = engine.index().stats();
    let foot = engine.index().ram_footprint();
    let snap = recorder.snapshot();
    RunResult {
        label,
        workers,
        disk_backed,
        seconds_session1,
        seconds_session2,
        stored_bytes: r1.stored_bytes + r2.stored_bytes,
        transferred_bytes: r1.transferred_bytes + r2.transferred_bytes,
        // Cumulative over both sessions so the ratio stays finite even
        // though the all-duplicate second session stores ~nothing.
        dedup_ratio: (r1.logical_bytes + r2.logical_bytes) as f64
            / (r1.stored_bytes + r2.stored_bytes).max(1) as f64,
        restored_bytes,
        index_len: engine.index().len(),
        stats,
        cache_entries: foot.cache_entries,
        cache_capacity: foot.cache_capacity,
        footprint_bytes: foot.approx_bytes,
        filter_hits: snap.counter(Counter::FilterHits),
        filter_false_positives: snap.counter(Counter::FilterFalsePositives),
        disk_probes: snap.counter(Counter::IndexDiskProbes),
    }
}

fn main() {
    let mb: usize = env_or("AA_IDX_MB", 48);
    let ram_entries: usize = env_or("AA_IDX_RAM", 8);
    let rss_cap_mb: u64 = env_or("AA_IDX_RSS_CAP_MB", 0);
    let workers: Vec<usize> = std::env::var("AA_IDX_WORKERS").map_or_else(
        |_| vec![1, 4],
        |s| s.split(',').map(|w| w.trim().parse().expect("worker count")).collect(),
    );

    let files = mixed_corpus(mb, 0x1DE7, "idx");
    let logical: usize = files.iter().map(|f| f.data.len()).sum();
    eprintln!(
        "index_scaling: {} files, {} MiB, ram budget {} entries/partition, workers {:?}",
        files.len(),
        logical >> 20,
        ram_entries,
        workers
    );

    let mut results: Vec<RunResult> = Vec::new();
    for &w in &workers {
        // Disk-backed first: RSS high-water is cumulative per process, so
        // the figure reflects the disk-backed configuration, not a
        // resident run that legitimately holds the whole index in RAM.
        let dir = std::env::temp_dir().join(format!(
            "aadedupe-idxscale-w{w}-{}",
            std::process::id()
        ));
        results.push(run(&files, w, ram_entries, Some(dir.clone())));
        if let Err(e) = std::fs::remove_dir_all(&dir) {
            eprintln!("index_scaling: leaking segment dir {}: {e}", dir.display());
        }
    }
    let disk_rss = peak_rss_bytes();
    for &w in &workers {
        results.push(run(&files, w, ram_entries, None));
    }

    // --- Assertions: the bench is also the proof. ---
    let baseline = &results[0];
    for r in &results[1..] {
        assert_eq!(
            r.stored_bytes, baseline.stored_bytes,
            "{}: stored_bytes diverges from {}",
            r.label, baseline.label
        );
        assert_eq!(
            r.transferred_bytes, baseline.transferred_bytes,
            "{}: transferred_bytes diverges",
            r.label
        );
        assert_eq!(r.restored_bytes, baseline.restored_bytes, "{}: restored_bytes", r.label);
        assert_eq!(r.index_len, baseline.index_len, "{}: index entry count", r.label);
        // Bit comparison: dr() is derived from byte counters, so exact
        // equality is the contract, and it stays meaningful when an
        // all-duplicate session makes the ratio infinite.
        assert!(
            r.dedup_ratio.to_bits() == baseline.dedup_ratio.to_bits(),
            "{}: dedup ratio diverges ({} vs {})",
            r.label,
            r.dedup_ratio,
            baseline.dedup_ratio
        );
    }
    for r in results.iter().filter(|r| r.disk_backed) {
        assert!(
            r.index_len >= 10 * r.cache_capacity,
            "{}: corpus too small — index {} entries < 10x cache budget {}",
            r.label,
            r.index_len,
            r.cache_capacity
        );
        assert!(
            r.cache_entries <= r.cache_capacity,
            "{}: cache overran its budget ({} > {})",
            r.label,
            r.cache_entries,
            r.cache_capacity
        );
        // Negative lookups (session 1 is all-new once the filter warms)
        // must be answered by the filter, not disk: false positives are
        // the only misses allowed to probe segments.
        let negatives = r.stats.filter_hits + r.stats.filter_false_positives;
        assert!(r.stats.filter_hits > 0, "{}: filter never short-circuited", r.label);
        assert!(
            (r.stats.filter_false_positives as f64) < (negatives as f64) * 0.01 + 8.0,
            "{}: filter false-positive rate too high ({} of {})",
            r.label,
            r.stats.filter_false_positives,
            negatives
        );
    }
    if rss_cap_mb > 0 {
        assert!(
            disk_rss <= rss_cap_mb * (1 << 20),
            "disk-backed peak RSS {} MiB exceeds cap {} MiB",
            disk_rss >> 20,
            rss_cap_mb
        );
    }

    println!("{{");
    println!("  \"schema_version\": {BIN_SCHEMA_VERSION},");
    println!("  \"machine\": {},", machine_json());
    println!("  \"workload_mib\": {},", logical >> 20);
    println!("  \"files\": {},", files.len());
    println!("  \"ram_entries_per_partition\": {ram_entries},");
    println!("  \"disk_peak_rss_mib\": {},", disk_rss >> 20);
    println!("  \"results\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        println!(
            "    {{\"label\": \"{}\", \"workers\": {}, \"disk_backed\": {}, \
             \"s_session1\": {:.4}, \"s_session2\": {:.4}, \"mib_per_s\": {:.2}, \
             \"stored_bytes\": {}, \"dedup_ratio\": {:.4}, \"restored_bytes\": {}, \
             \"index_entries\": {}, \"cache_entries\": {}, \"cache_capacity\": {}, \
             \"footprint_bytes\": {}, \"ram_hits\": {}, \"disk_reads\": {}, \
             \"filter_hits\": {}, \"filter_false_positives\": {}, \"disk_probes\": {}}}{comma}",
            r.label,
            r.workers,
            r.disk_backed,
            r.seconds_session1,
            r.seconds_session2,
            2.0 * logical as f64 / (1 << 20) as f64 / (r.seconds_session1 + r.seconds_session2),
            r.stored_bytes,
            r.dedup_ratio,
            r.restored_bytes,
            r.index_len,
            r.cache_entries,
            r.cache_capacity,
            r.footprint_bytes,
            r.stats.ram_hits,
            r.stats.disk_reads,
            r.filter_hits,
            r.filter_false_positives,
            r.disk_probes
        );
    }
    println!("  ]");
    println!("}}");
    eprintln!("index_scaling: all assertions passed");
}
