//! `aabench` — the unified perf-trajectory harness.
//!
//! One runner that orchestrates the scaling benches (backup pipeline,
//! pipelined restore, CDC chunking) plus an end-to-end two-session
//! backup+restore bench over the workload generator, and emits one
//! schema-versioned `BENCH_<label>.json` artifact. A `compare` subcommand
//! gates regressions:
//!
//! ```text
//! aabench run [--quick] [--label <l>] [--out <file>]
//! aabench compare <old.json> <new.json> [--tolerance <pct>]
//! ```
//!
//! `run` defaults: label `local`, output `BENCH_<label>.json` in the
//! current directory. `--quick` shrinks the workload and worker sweep for
//! CI. `compare` exits non-zero when any metric in the new artifact falls
//! more than `--tolerance` percent (default 10) below the old one; every
//! number under a bench's `"metrics"` object is higher-is-better by
//! construction, while `"detail"` objects (stage breakdowns) are
//! informational and never gated.
//!
//! Environment knobs (override `--quick`/full defaults):
//! * `AA_BENCH_MB` — workload MiB per bench.
//! * `AA_BENCH_REPS` — timed repetitions; fastest rep is reported.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use aadedupe_bench::perf::{env_or, machine_json, mixed_corpus, BENCH_SCHEMA_VERSION};
use aadedupe_chunking::{CdcAlgorithm, Chunker, ContentChunker, DEFAULT_CDC};
use aadedupe_cloud::CloudSim;
use aadedupe_core::{
    restore_session_pipelined, AaDedupe, AaDedupeConfig, BackupScheme, PipelineConfig,
    PipelineMode, RestoreOptions, RetentionPolicy, RetryPolicy, VacuumOptions,
};
use aadedupe_filetype::{MemoryFile, SourceFile};
use aadedupe_obs::json::{self, Value};
use aadedupe_obs::{Queue, Recorder, Stage};
use aadedupe_workload::{DatasetSpec, Generator};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  aabench run [--quick] [--label <l>] [--out <file>]\n  aabench compare <old.json> <new.json> [--tolerance <pct>]"
    );
    ExitCode::from(2)
}

/// Sweep parameters for one `run` invocation.
struct RunConfig {
    quick: bool,
    mb: usize,
    reps: usize,
    workers: Vec<usize>,
}

impl RunConfig {
    fn new(quick: bool) -> RunConfig {
        let (mb, reps, workers) = if quick { (16, 1, vec![1, 4]) } else { (64, 3, vec![1, 2, 4, 8]) };
        RunConfig { quick, mb: env_or("AA_BENCH_MB", mb), reps: env_or("AA_BENCH_REPS", reps), workers }
    }
}

fn best_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps.max(1)).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn mib_per_s(bytes: usize, seconds: f64) -> f64 {
    bytes as f64 / (1 << 20) as f64 / seconds
}

/// Backup pipeline bench: throughput at 1 worker, speedup at the sweep
/// maximum, session dedup ratio, plus a profiled stage breakdown.
fn bench_backup(cfg: &RunConfig) -> String {
    let files = mixed_corpus(cfg.mb, 0x5CA1E, "scale");
    let logical: usize = files.iter().map(|f| f.data.len()).sum();
    let time_one = |workers: usize| {
        let pipeline = if workers == 1 {
            PipelineConfig { workers: 1, queue_depth: 4, mode: PipelineMode::Serial }
        } else {
            PipelineConfig { workers, queue_depth: 4, mode: PipelineMode::Parallel }
        };
        let config = AaDedupeConfig { pipeline, ..AaDedupeConfig::default() };
        let mut engine = AaDedupe::with_config(CloudSim::with_paper_defaults(), config);
        let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
        let start = Instant::now();
        let report = engine.backup_session(&sources).expect("backup");
        (start.elapsed().as_secs_f64(), report.dr())
    };
    let serial = best_of(cfg.reps, || time_one(1).0);
    let max_w = *cfg.workers.iter().max().expect("non-empty sweep");
    let parallel = best_of(cfg.reps, || time_one(max_w).0);
    let (_, dr) = time_one(1);

    // One profiled run (recorder on) for the stage breakdown, kept out of
    // the timed reps.
    let recorder = Recorder::shared();
    let config = AaDedupeConfig {
        pipeline: PipelineConfig::with_workers(max_w),
        recorder: Arc::clone(&recorder),
        ..AaDedupeConfig::default()
    };
    let mut engine = AaDedupe::with_config(CloudSim::with_paper_defaults(), config);
    let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
    engine.backup_session(&sources).expect("backup");
    let snap = recorder.snapshot();
    let stages = Stage::ALL
        .iter()
        .map(|&s| format!("\"{}\": {}", s.name(), snap.stage_total(s).as_nanos()))
        .collect::<Vec<_>>()
        .join(", ");

    eprintln!("  backup: {:.2} MiB/s serial, speedup {:.2} at {max_w}w", mib_per_s(logical, serial), serial / parallel);
    format!(
        "{{\"metrics\": {{\"serial_mib_s\": {:.2}, \"parallel_mib_s\": {:.2}, \"speedup\": {:.3}, \"dedup_ratio\": {:.4}}}, \"detail\": {{\"workers\": {max_w}, \"workload_mib\": {}, \"stage_ns\": {{{stages}}}}}}}",
        mib_per_s(logical, serial),
        mib_per_s(logical, parallel),
        serial / parallel,
        dr,
        logical >> 20
    )
}

/// Pipelined restore bench: throughput at 1 worker, speedup at the sweep
/// maximum, restore-cache high-water from a profiled run.
fn bench_restore(cfg: &RunConfig) -> String {
    let files = mixed_corpus(cfg.mb, 0xE5702E, "restore");
    let logical: usize = files.iter().map(|f| f.data.len()).sum();
    let cloud = CloudSim::with_paper_defaults();
    let mut engine = AaDedupe::with_config(
        cloud.clone(),
        AaDedupeConfig { pipeline: PipelineConfig::with_workers(4), ..AaDedupeConfig::default() },
    );
    let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
    engine.backup_session(&sources).expect("backup");

    let restore_one = |workers: usize, rec: &Recorder| {
        let opts = RestoreOptions { workers, cache_capacity: 16 };
        let start = Instant::now();
        let out =
            restore_session_pipelined(&cloud, "aa-dedupe", 0, &opts, &RetryPolicy::default(), rec)
                .expect("restore");
        assert_eq!(out.len(), files.len(), "restore returned every file");
        start.elapsed().as_secs_f64()
    };
    let disabled = Recorder::disabled();
    let serial = best_of(cfg.reps, || restore_one(1, &disabled));
    let max_w = *cfg.workers.iter().max().expect("non-empty sweep");
    let parallel = best_of(cfg.reps, || restore_one(max_w, &disabled));
    let recorder = Recorder::new();
    restore_one(max_w, &recorder);
    let cache_hwm = recorder.snapshot().queue(Queue::RestoreCache).hwm;

    eprintln!("  restore: {:.2} MiB/s serial, speedup {:.2} at {max_w}w", mib_per_s(logical, serial), serial / parallel);
    format!(
        "{{\"metrics\": {{\"serial_mib_s\": {:.2}, \"parallel_mib_s\": {:.2}, \"speedup\": {:.3}}}, \"detail\": {{\"workers\": {max_w}, \"workload_mib\": {}, \"cache_hwm\": {cache_hwm}}}}}",
        mib_per_s(logical, serial),
        mib_per_s(logical, parallel),
        serial / parallel,
        logical >> 20
    )
}

/// CDC boundary-scan bench: Rabin vs FastCDC throughput and the speedup
/// the trajectory protects (PR 6's headline win).
fn bench_chunking(cfg: &RunConfig) -> String {
    let mut gen = Generator::new(DatasetSpec::eval_mix((cfg.mb as u64) << 20), 42);
    let snap = gen.snapshot(0);
    let files: Vec<Vec<u8>> = snap.as_sources().iter().map(|s| s.read()).collect();
    let logical: usize = files.iter().map(Vec::len).sum();
    let scan = |chunker: &dyn Chunker| {
        best_of(cfg.reps, || {
            let start = Instant::now();
            let mut total = 0usize;
            for f in &files {
                total += chunker.chunk(std::hint::black_box(f)).len();
            }
            std::hint::black_box(total);
            start.elapsed().as_secs_f64()
        })
    };
    let rabin = scan(&ContentChunker::new(DEFAULT_CDC));
    let fastcdc = scan(&ContentChunker::new(DEFAULT_CDC.with_algorithm(CdcAlgorithm::FastCdc)));

    eprintln!("  chunking: rabin {:.2} MiB/s, fastcdc {:.2} MiB/s", mib_per_s(logical, rabin), mib_per_s(logical, fastcdc));
    format!(
        "{{\"metrics\": {{\"rabin_mib_s\": {:.2}, \"fastcdc_mib_s\": {:.2}, \"fastcdc_speedup\": {:.3}}}, \"detail\": {{\"workload_mib\": {}}}}}",
        mib_per_s(logical, rabin),
        mib_per_s(logical, fastcdc),
        rabin / fastcdc,
        logical >> 20
    )
}

/// End-to-end session bench: two weekly generator snapshots through the
/// full engine (backup both, restore the second), reporting wall-clock
/// throughput on both sides and the second session's incremental dedup
/// ratio — the trajectory metric "An Information-Theoretic Analysis of
/// Deduplication" motivates tracking next to speed.
fn bench_e2e(cfg: &RunConfig) -> String {
    let mut gen = Generator::new(DatasetSpec::eval_mix((cfg.mb as u64) << 20), 2011);
    let week0 = gen.snapshot(0);
    let week1 = gen.snapshot(1);
    let cloud = CloudSim::with_paper_defaults();
    let mut engine = AaDedupe::with_config(
        cloud.clone(),
        AaDedupeConfig { pipeline: PipelineConfig::with_workers(4), ..AaDedupeConfig::default() },
    );
    let start = Instant::now();
    let r0 = engine.backup_session(&week0.as_sources()).expect("backup week 0");
    let r1 = engine.backup_session(&week1.as_sources()).expect("backup week 1");
    let backup_secs = start.elapsed().as_secs_f64();
    let logical = (r0.logical_bytes + r1.logical_bytes) as usize;

    let opts = RestoreOptions { workers: 4, cache_capacity: 16 };
    let disabled = Recorder::disabled();
    let start = Instant::now();
    let out = restore_session_pipelined(&cloud, "aa-dedupe", 1, &opts, &RetryPolicy::default(), &disabled)
        .expect("restore week 1");
    let restore_secs = start.elapsed().as_secs_f64();
    let restored: usize = out.iter().map(|f| f.data.len()).sum();

    eprintln!("  e2e: backup {:.2} MiB/s, restore {:.2} MiB/s, week-1 DR {:.2}", mib_per_s(logical, backup_secs), mib_per_s(restored, restore_secs), r1.dr());
    format!(
        "{{\"metrics\": {{\"backup_mib_s\": {:.2}, \"restore_mib_s\": {:.2}, \"dedup_ratio\": {:.4}}}, \"detail\": {{\"sessions\": 2, \"workload_mib\": {}, \"restored_mib\": {}}}}}",
        mib_per_s(logical, backup_secs),
        mib_per_s(restored, restore_secs),
        r1.dr(),
        logical >> 20,
        restored >> 20
    )
}

/// Vacuum bench: a churned multi-session repository under keep-last
/// retention, timing the full analyze/rewrite/commit pass. Reports
/// reclaimed MiB/s (the pass's productive throughput) and the reclaimed
/// fraction of stored bytes — both higher-is-better trajectory metrics.
fn bench_vacuum(cfg: &RunConfig) -> String {
    const SESSIONS: usize = 8;
    const KEEP: usize = 3;
    // Per-session churn corpus: a stable core every session shares, a
    // cumulative journal whose new tail stays live forever, and a same-
    // stream scratch file only this session references. Journal tail and
    // scratch are both new bytes in one app stream, so the packer
    // interleaves them — pruned sessions leave dead scratch chunks
    // *inside* containers the retained sessions still reference: the
    // rewrite case vacuum exists for, not just whole-container deletes.
    let per_session = ((cfg.mb << 20) / SESSIONS).max(1 << 20);
    let session_files = |s: usize| -> Vec<MemoryFile> {
        let stable = per_session / 4;
        let append = per_session / 8;
        let scratch = per_session - stable - append;
        let mut journal = Vec::with_capacity(append * (s + 1));
        for gen in 0..=s {
            journal.extend((0..append).map(|i| (i.wrapping_mul(gen + 7) % 239) as u8));
        }
        vec![
            MemoryFile::new(
                "user/vmdk/base.vmdk",
                (0..stable).map(|i| (i % 241) as u8).collect::<Vec<u8>>(),
            ),
            MemoryFile::new("user/txt/journal.txt", journal),
            MemoryFile::new(
                format!("user/txt/scratch-{s:03}.txt"),
                (0..scratch).map(|i| (i.wrapping_mul(s + 11) % 251) as u8).collect::<Vec<u8>>(),
            ),
        ]
    };
    let run_once = || {
        let cloud = CloudSim::with_paper_defaults();
        let mut engine = AaDedupe::with_config(
            cloud,
            AaDedupeConfig { pipeline: PipelineConfig::with_workers(4), ..AaDedupeConfig::default() },
        );
        for s in 0..SESSIONS {
            let files = session_files(s);
            let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
            engine.backup_session(&sources).expect("backup");
        }
        engine.apply_retention(&RetentionPolicy::KeepLast(KEEP)).expect("retention");
        let start = Instant::now();
        let report = engine.vacuum(&VacuumOptions::default()).expect("vacuum");
        (start.elapsed().as_secs_f64(), report)
    };
    let (_, report) = run_once();
    let secs = best_of(cfg.reps, || run_once().0);
    let fraction = report.bytes_reclaimed as f64 / report.stored_bytes_before.max(1) as f64;

    eprintln!(
        "  vacuum: {:.2} MiB/s reclaimed, {:.1}% of stored bytes, {} containers rewritten",
        mib_per_s(report.bytes_reclaimed as usize, secs),
        fraction * 100.0,
        report.containers_rewritten
    );
    format!(
        "{{\"metrics\": {{\"reclaimed_mib_s\": {:.2}, \"reclaimed_fraction\": {:.4}}}, \"detail\": {{\"sessions\": {SESSIONS}, \"keep\": {KEEP}, \"containers_rewritten\": {}, \"containers_deleted\": {}, \"relocations\": {}}}}}",
        mib_per_s(report.bytes_reclaimed as usize, secs),
        fraction,
        report.containers_rewritten,
        report.containers_deleted,
        report.relocations
    )
}

fn cmd_run(quick: bool, label: &str, out: Option<String>) -> ExitCode {
    let cfg = RunConfig::new(quick);
    eprintln!(
        "aabench run: label {label}, {} MiB workloads, best of {}, workers {:?}",
        cfg.mb, cfg.reps, cfg.workers
    );
    let benches = [
        ("backup", bench_backup(&cfg)),
        ("restore", bench_restore(&cfg)),
        ("chunking", bench_chunking(&cfg)),
        ("e2e", bench_e2e(&cfg)),
        ("vacuum", bench_vacuum(&cfg)),
    ];
    let mut doc = format!(
        "{{\n  \"schema_version\": {BENCH_SCHEMA_VERSION},\n  \"label\": \"{label}\",\n  \"quick\": {},\n  \"machine\": {},\n  \"config\": {{\"workload_mib\": {}, \"reps\": {}, \"max_workers\": {}}},\n  \"benches\": {{\n",
        cfg.quick,
        machine_json(),
        cfg.mb,
        cfg.reps,
        cfg.workers.iter().max().expect("non-empty sweep")
    );
    for (i, (name, body)) in benches.iter().enumerate() {
        doc.push_str(&format!("    \"{name}\": {body}"));
        doc.push_str(if i + 1 < benches.len() { ",\n" } else { "\n" });
    }
    doc.push_str("  }\n}\n");

    // The artifact must parse with the repo's own reader before it is
    // allowed to exist.
    if let Err(e) = json::parse(&doc) {
        eprintln!("aabench bug: emitted invalid JSON: {e}");
        return ExitCode::FAILURE;
    }
    let path = out.unwrap_or_else(|| format!("BENCH_{label}.json"));
    if let Err(e) = std::fs::write(&path, &doc) {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");
    ExitCode::SUCCESS
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

/// Compares every numeric leaf under `benches.<bench>.metrics` of the two
/// artifacts; all such metrics are higher-is-better. Returns the list of
/// regressions beyond `tolerance_pct`.
fn regressions(old: &Value, new: &Value, tolerance_pct: f64) -> Vec<String> {
    let mut bad = Vec::new();
    let Some(old_benches) = old.get("benches").as_obj() else {
        bad.push("old artifact has no benches object".into());
        return bad;
    };
    for (bench, old_body) in old_benches {
        let Some(old_metrics) = old_body.get("metrics").as_obj() else { continue };
        let new_metrics = new.get("benches").get(bench).get("metrics");
        if new_metrics.as_obj().is_none() {
            bad.push(format!("{bench}: missing from new artifact"));
            continue;
        }
        for (key, old_v) in old_metrics {
            let Some(old_n) = old_v.as_f64() else { continue };
            let Some(new_n) = new_metrics.get(key).as_f64() else {
                bad.push(format!("{bench}.{key}: missing from new artifact"));
                continue;
            };
            let floor = old_n * (1.0 - tolerance_pct / 100.0);
            if new_n < floor {
                bad.push(format!(
                    "{bench}.{key}: {new_n:.3} < {old_n:.3} - {tolerance_pct}% (floor {floor:.3})"
                ));
            }
        }
    }
    bad
}

fn cmd_compare(old_path: &str, new_path: &str, tolerance_pct: f64) -> ExitCode {
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    for (name, doc) in [(old_path, &old), (new_path, &new)] {
        match doc.get("schema_version").as_u64() {
            Some(v) if v == u64::from(BENCH_SCHEMA_VERSION) => {}
            Some(v) => eprintln!("note: {name} has schema_version {v}, expected {BENCH_SCHEMA_VERSION}; comparing shared keys"),
            None => {
                eprintln!("error: {name} has no schema_version — not an aabench artifact");
                return ExitCode::from(2);
            }
        }
    }
    let bad = regressions(&old, &new, tolerance_pct);
    if bad.is_empty() {
        println!(
            "no regressions beyond {tolerance_pct}% ({} vs {})",
            old.get("label").as_str().unwrap_or("?"),
            new.get("label").as_str().unwrap_or("?")
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("perf regressions beyond {tolerance_pct}%:");
        for b in &bad {
            eprintln!("  {b}");
        }
        ExitCode::FAILURE
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    args.iter().position(|a| a == flag).map(|i| args.remove(i)).is_some()
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, ()> {
    let Some(i) = args.iter().position(|a| a == flag) else { return Ok(None) };
    if i + 1 >= args.len() {
        return Err(());
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Ok(Some(v))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else { return usage() };
    args.remove(0);
    match command.as_str() {
        "run" => {
            let quick = take_flag(&mut args, "--quick");
            let Ok(label) = take_value(&mut args, "--label") else { return usage() };
            let Ok(out) = take_value(&mut args, "--out") else { return usage() };
            if !args.is_empty() {
                return usage();
            }
            cmd_run(quick, &label.unwrap_or_else(|| "local".into()), out)
        }
        "compare" => {
            let Ok(tol) = take_value(&mut args, "--tolerance") else { return usage() };
            let tolerance = match tol.map(|t| t.parse::<f64>()) {
                None => 10.0,
                Some(Ok(t)) if t >= 0.0 => t,
                Some(_) => return usage(),
            };
            match args.as_slice() {
                [old, new] => cmd_compare(old, new, tolerance),
                _ => usage(),
            }
        }
        _ => usage(),
    }
}
