//! Observation 2: cross-application data sharing is negligible.
//!
//! The paper compares chunk fingerprints across applications after
//! intra-application dedup and finds exactly one shared 16 KB chunk in
//! ~41 GB. This binary repeats the measurement on the synthetic corpus:
//! chunk every file with 8 KiB CDC + SHA-1, build one fingerprint set per
//! application, and intersect the sets pairwise.
//!
//! Run: `cargo run --release -p aadedupe-bench --bin obs2_cross_app_sharing`

use std::collections::{HashMap, HashSet};

use aadedupe_bench::{fmt_bytes, print_table, EvalConfig};
use aadedupe_chunking::{CdcChunker, Chunker};
use aadedupe_filetype::AppType;
use aadedupe_hashing::sha1;
use aadedupe_workload::{DatasetSpec, Generator};

fn main() {
    let cfg = EvalConfig::from_env();
    println!(
        "Observation 2 — cross-application chunk sharing over a {} dataset",
        fmt_bytes(cfg.dataset_bytes)
    );
    let mut generator = Generator::new(DatasetSpec::paper_scaled(cfg.dataset_bytes), cfg.seed);
    let snapshot = generator.snapshot(0);
    let cdc = CdcChunker::default();

    // Per-application fingerprint sets (intra-app dedup is the set itself).
    let mut sets: HashMap<AppType, HashSet<[u8; 20]>> = HashMap::new();
    let mut chunk_bytes: HashMap<AppType, u64> = HashMap::new();
    for f in &snapshot.files {
        let data = f.materialize();
        let set = sets.entry(f.app).or_default();
        for span in cdc.chunk(&data) {
            let bytes = span.slice(&data);
            set.insert(sha1(bytes));
            *chunk_bytes.entry(f.app).or_default() += bytes.len() as u64;
        }
    }

    let mut rows = Vec::new();
    let mut total_shared = 0usize;
    let apps: Vec<AppType> = AppType::ALL
        .into_iter()
        .filter(|a| sets.contains_key(a))
        .collect();
    for (i, a) in apps.iter().enumerate() {
        for b in apps.iter().skip(i + 1) {
            let shared = sets[a].intersection(&sets[b]).count();
            total_shared += shared;
            if shared > 0 {
                rows.push(vec![a.name().into(), b.name().into(), shared.to_string()]);
            }
        }
    }
    if rows.is_empty() {
        rows.push(vec!["(none)".into(), "(none)".into(), "0".into()]);
    }
    print_table(
        "Cross-application duplicate chunks (pairwise)",
        &["app A", "app B", "shared chunks"],
        &rows,
    );

    let total_chunks: usize = sets.values().map(std::collections::HashSet::len).sum();
    println!(
        "\ntotal unique chunks: {total_chunks}; shared across applications: {total_shared} \
         ({:.4}%)   (paper: one 16 KB chunk in ~41 GB)",
        100.0 * total_shared as f64 / total_chunks.max(1) as f64
    );
    println!(
        "implication: partitioning the index by application loses ~nothing, enabling \
         small independent indexes (Fig. 6)."
    );
}
