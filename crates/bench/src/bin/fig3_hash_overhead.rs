//! Figure 3: computational overhead of typical hash functions.
//!
//! The paper measures Rabin, MD5 and SHA-1 execution times for whole-file
//! chunking (WFC) and 8 KiB static chunking (SC) over a 60 MB dataset, and
//! observes (a) Rabin < MD5 < SHA-1, and (b) WFC time ≈ SC time for the
//! same hash — the cost is in the hash itself, not in chunk bookkeeping
//! (Observation 4).
//!
//! Run: `cargo run --release -p aadedupe-bench --bin fig3_hash_overhead`

use std::time::Instant;

use aadedupe_bench::{fmt_rate, print_table};
use aadedupe_chunking::{Chunker, ScChunker, WfcChunker};
use aadedupe_hashing::{Fingerprint, HashAlgorithm};
use aadedupe_workload::Prng;

/// Builds the 60 MB test corpus as a set of ~4 MiB "files".
fn corpus() -> Vec<Vec<u8>> {
    let mb: usize = std::env::var("AA_FIG3_MB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);
    let file_size = 4 << 20;
    let files = (mb << 20) / file_size;
    (0..files)
        .map(|i| {
            let mut v = vec![0u8; file_size];
            Prng::derive(&[0xF163, i as u64]).fill(&mut v);
            v
        })
        .collect()
}

/// Total time to chunk `files` with `chunker` and fingerprint every chunk
/// with `algo`.
fn run(files: &[Vec<u8>], chunker: &dyn Chunker, algo: HashAlgorithm) -> (f64, usize) {
    let start = Instant::now();
    let mut chunks = 0usize;
    for f in files {
        for span in chunker.chunk(f) {
            let fp = Fingerprint::compute(algo, span.slice(f));
            std::hint::black_box(fp);
            chunks += 1;
        }
    }
    (start.elapsed().as_secs_f64(), chunks)
}

fn main() {
    let files = corpus();
    let total: usize = files.iter().map(Vec::len).sum();
    println!(
        "Figure 3 — hash computation overhead over a {} MiB dataset",
        total >> 20
    );

    let wfc = WfcChunker::new();
    let sc = ScChunker::new(8 * 1024);
    let algos = [HashAlgorithm::Rabin96, HashAlgorithm::Md5, HashAlgorithm::Sha1];

    let mut rows = Vec::new();
    let mut times = std::collections::HashMap::new();
    for algo in algos {
        let (t_wfc, c_wfc) = run(&files, &wfc, algo);
        let (t_sc, c_sc) = run(&files, &sc, algo);
        times.insert(algo, (t_wfc, t_sc));
        rows.push(vec![
            algo.name().to_string(),
            format!("{:.3} s", t_wfc),
            format!("{c_wfc}"),
            format!("{:.3} s", t_sc),
            format!("{c_sc}"),
            fmt_rate(total as f64 / t_sc),
        ]);
    }
    print_table(
        "Fig. 3: execution time per hash × chunking",
        &["hash", "WFC time", "WFC chunks", "SC time", "SC chunks", "SC throughput"],
        &rows,
    );

    let (r_wfc, r_sc) = times[&HashAlgorithm::Rabin96];
    let (m_wfc, m_sc) = times[&HashAlgorithm::Md5];
    let (s_wfc, s_sc) = times[&HashAlgorithm::Sha1];
    println!("\nshape checks (paper Fig. 3):");
    println!(
        "  Rabin < MD5 < SHA-1:       {} ({:.2}s < {:.2}s < {:.2}s)",
        if r_sc < m_sc && m_sc < s_sc { "ok" } else { "VIOLATED" },
        r_sc, m_sc, s_sc
    );
    println!(
        "  WFC ≈ SC per hash (±25%):  {}",
        if (r_wfc - r_sc).abs() / r_sc < 0.25
            && (m_wfc - m_sc).abs() / m_sc < 0.25
            && (s_wfc - s_sc).abs() / s_sc < 0.25
        {
            "ok"
        } else {
            "VIOLATED"
        }
    );
}
