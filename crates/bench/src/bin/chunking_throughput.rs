//! Chunking throughput: the CDC boundary-algorithm cost ladder, as JSON.
//!
//! Runs every CDC boundary algorithm (Rabin scan, gear-hash FastCDC) plus
//! the WFC/SC reference points over the same workload-generated corpus —
//! two weekly snapshots, so the dedup-ratio column reflects real
//! cross-version redundancy, not just intra-file repeats — and reports
//! MB/s, mean chunk size and dedup ratio per algorithm as a JSON document
//! on stdout. CI consumes the JSON to enforce the FastCDC speedup floor;
//! EXPERIMENTS.md quotes the table.
//!
//! Throughput times the boundary scan alone (no SHA-1, no index), best of
//! `AA_CHUNK_REPS`: the number is the chunker's cost, comparable across
//! algorithms because both consume identical bytes.
//!
//! Run: `cargo run --release -p aadedupe-bench --bin chunking_throughput`
//!
//! Environment knobs:
//! * `AA_CHUNK_MB` — approximate corpus size in MiB (default 64).
//! * `AA_CHUNK_REPS` — timed repetitions; fastest reported (default 3).
//! * `AA_CHUNK_SEED` — workload generator seed (default 42).

use std::collections::HashSet;
use std::time::Instant;

use aadedupe_bench::perf::{env_or, BIN_SCHEMA_VERSION};
use aadedupe_chunking::{
    CdcAlgorithm, Chunker, ContentChunker, ScChunker, WfcChunker, DEFAULT_CDC, DEFAULT_SC_SIZE,
};
use aadedupe_workload::{DatasetSpec, Generator};

/// Two consecutive weekly snapshots of the evaluation mix, materialized.
fn corpus(mb: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut gen = Generator::new(DatasetSpec::eval_mix((mb as u64) << 20), seed);
    let mut files = Vec::new();
    for week in 0..2 {
        let snap = gen.snapshot(week);
        for src in snap.as_sources() {
            files.push(src.read());
        }
    }
    files
}

struct Row {
    name: &'static str,
    mib_per_s: f64,
    chunks: usize,
    mean_chunk: usize,
    dedup_ratio: f64,
}

/// Times the boundary scan (best of `reps`), then hashes once to compute
/// the dedup ratio and chunk-count stats.
fn measure(name: &'static str, chunker: &dyn Chunker, files: &[Vec<u8>], reps: usize) -> Row {
    let logical: usize = files.iter().map(Vec::len).sum();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let mut total = 0usize;
        for f in files {
            total += chunker.chunk(std::hint::black_box(f)).len();
        }
        std::hint::black_box(total);
        best = best.min(start.elapsed().as_secs_f64());
    }

    let mut unique: HashSet<[u8; 20]> = HashSet::new();
    let mut stored = 0u64;
    let mut chunks = 0usize;
    for f in files {
        for span in chunker.chunk(f) {
            chunks += 1;
            if unique.insert(aadedupe_hashing::sha1(span.slice(f))) {
                stored += span.len as u64;
            }
        }
    }
    Row {
        name,
        mib_per_s: logical as f64 / (1 << 20) as f64 / best,
        chunks,
        mean_chunk: logical / chunks.max(1),
        dedup_ratio: aadedupe_metrics::dedup_ratio(logical as u64, stored),
    }
}

fn main() {
    let mb: usize = env_or("AA_CHUNK_MB", 64);
    let reps: usize = env_or("AA_CHUNK_REPS", 3);
    let seed: u64 = env_or("AA_CHUNK_SEED", 42);

    let files = corpus(mb, seed);
    let logical: usize = files.iter().map(Vec::len).sum();
    eprintln!(
        "chunking_throughput: {} files, {} MiB (two snapshots), best of {reps}",
        files.len(),
        logical >> 20
    );

    let rabin = ContentChunker::new(DEFAULT_CDC);
    let fastcdc = ContentChunker::new(DEFAULT_CDC.with_algorithm(CdcAlgorithm::FastCdc));
    let rows = [
        measure("wfc", &WfcChunker::new(), &files, reps),
        measure("sc", &ScChunker::new(DEFAULT_SC_SIZE), &files, reps),
        measure("rabin", &rabin, &files, reps),
        measure("fastcdc", &fastcdc, &files, reps),
    ];

    let speed = |name: &str| {
        rows.iter().find(|r| r.name == name).map_or(f64::NAN, |r| r.mib_per_s)
    };
    println!("{{");
    println!("  \"schema_version\": {BIN_SCHEMA_VERSION},");
    println!("  \"workload_mib\": {},", logical >> 20);
    println!("  \"files\": {},", files.len());
    println!("  \"reps\": {reps},");
    println!("  \"seed\": {seed},");
    println!("  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!(
            "    {{\"algorithm\": \"{}\", \"mib_per_s\": {:.2}, \"chunks\": {}, \"mean_chunk_bytes\": {}, \"dedup_ratio\": {:.4}}}{comma}",
            r.name, r.mib_per_s, r.chunks, r.mean_chunk, r.dedup_ratio
        );
    }
    println!("  ],");
    println!(
        "  \"fastcdc_speedup_over_rabin\": {:.3}",
        speed("fastcdc") / speed("rabin")
    );
    println!("}}");
}
