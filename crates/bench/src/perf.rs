//! Shared infrastructure for the perf-trajectory harness.
//!
//! Holds what `aabench` and the standalone scaling bins share: the
//! mixed-category corpus generator (previously duplicated per-bin), the
//! environment-knob reader, the bench JSON schema version, and machine
//! identification for `BENCH_<label>.json` artifacts.

use aadedupe_filetype::MemoryFile;
use aadedupe_workload::Prng;

/// Version of the `BENCH_<label>.json` document layout. Additive changes
/// (new benches, new metric keys) do not bump this; removals or
/// retypings do. Consumers must tolerate unknown keys.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Version stamped into the standalone scaling bins' JSON documents
/// (`pipeline_scaling`, `restore_scaling`, `chunking_throughput`).
pub const BIN_SCHEMA_VERSION: u32 = 1;

/// Reads `key` from the environment, falling back to `default` when the
/// variable is absent or unparsable.
pub fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// A mixed-category corpus of ~`mb` MiB: large CDC-chunked media/archives,
/// mid-size SC-chunked documents, and a sprinkle of tiny files so every
/// pipeline stage (size filter, all three chunkers, tiny packer) is hot.
/// ~A third of the big files repeat earlier content so the dedup and
/// duplicate-chunk paths see real traffic. Deterministic in (`mb`, `seed`,
/// `prefix`).
pub fn mixed_corpus(mb: usize, seed: u64, prefix: &str) -> Vec<MemoryFile> {
    let mut files = Vec::new();
    let target = mb << 20;
    let mut produced = 0usize;
    let exts = ["pdf", "doc", "mp3", "zip", "txt", "html", "vmdk", "avi"];
    let mut i = 0usize;
    while produced < target {
        let ext = exts[i % exts.len()];
        let len = match i % 8 {
            // A few tiny files per cycle keep the bypass path exercised.
            0 => 2 * 1024,
            1 | 2 => 64 * 1024,
            3..=5 => 256 * 1024,
            _ => 1 << 20,
        };
        let mut data = vec![0u8; len];
        Prng::derive(&[seed, i as u64]).fill(&mut data);
        if i % 3 == 2 && len >= 64 * 1024 {
            let half = len / 2;
            let (a, b) = data.split_at_mut(half);
            b[..half].copy_from_slice(&a[..half]);
        }
        files.push(MemoryFile::new(format!("{prefix}/f{i:05}.{ext}"), data));
        produced += len;
        i += 1;
    }
    files
}

/// The host description stamped into bench artifacts, as a JSON fragment:
/// numbers from two machines are only comparable when this matches.
pub fn machine_json() -> String {
    let cpus = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    format!(
        "{{\"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {cpus}}}",
        std::env::consts::OS,
        std::env::consts::ARCH
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadedupe_filetype::SourceFile;

    #[test]
    fn corpus_is_deterministic_and_sized() {
        let a = mixed_corpus(2, 0x5CA1E, "scale");
        let b = mixed_corpus(2, 0x5CA1E, "scale");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.path(), y.path());
            assert_eq!(x.data, y.data);
        }
        let total: usize = a.iter().map(|f| f.data.len()).sum();
        assert!(total >= 2 << 20, "corpus reaches the requested size");
        // Different seed ⇒ different bytes.
        let c = mixed_corpus(2, 0xE5702E, "scale");
        assert_ne!(a[1].data, c[1].data);
    }

    #[test]
    fn machine_json_parses() {
        let doc = aadedupe_obs::json::parse(&machine_json()).expect("machine JSON parses");
        assert!(doc.get("cpus").as_u64().is_some());
        assert!(doc.get("os").as_str().is_some());
    }
}
