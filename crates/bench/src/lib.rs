#![forbid(unsafe_code)]
//! Benchmark harness for the AA-Dedupe reproduction.
//!
//! One runnable binary per table/figure of the paper (see DESIGN.md §3 for
//! the experiment index); this library holds what they share: the
//! evaluation configuration, the five-scheme sweep runner, and plain-text
//! table formatting.
//!
//! Environment knobs (all optional):
//!
//! * `AA_EVAL_MB` — logical dataset size per weekly snapshot in MiB
//!   (default 64; the paper used ~35 GB/week — scale up if you have the
//!   time budget).
//! * `AA_SESSIONS` — number of weekly sessions (default 10, as the paper).
//! * `AA_SEED` — dataset seed (default 2011).
//! * `AA_CSV` — when `1`, also emit raw per-session CSV rows.

pub mod perf;

use aadedupe_cloud::CloudSim;
use aadedupe_core::BackupScheme;
use aadedupe_metrics::SessionReport;
use aadedupe_workload::{DatasetSpec, Generator};

/// Modelled client RAM budget (index entries) for a given dataset size.
///
/// The paper's clients index 35 GB weekly snapshots on 2010 laptops where
/// the chunk index cannot be fully RAM-resident (the DDFS bottleneck). At
/// laptop-bench scale everything would trivially fit, hiding the effect,
/// so the budget scales with the dataset: enough to hold roughly the
/// chunk index of the *non-media minority* (what AA-Dedupe needs), well
/// short of the full-dataset chunk index (what Avamar needs).
pub fn ram_budget_entries(dataset_bytes: u64) -> usize {
    ((dataset_bytes / 8192) as usize).max(1024)
}

/// Evaluation parameters shared by the figure binaries.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Logical bytes per weekly snapshot.
    pub dataset_bytes: u64,
    /// Number of weekly full-backup sessions.
    pub sessions: usize,
    /// Workload seed.
    pub seed: u64,
    /// Emit raw CSV rows too.
    pub csv: bool,
}

impl EvalConfig {
    /// Reads the configuration from the environment (see crate docs).
    pub fn from_env() -> Self {
        let mb = std::env::var("AA_EVAL_MB")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(64);
        let sessions = std::env::var("AA_SESSIONS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(10);
        let seed = std::env::var("AA_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(2011);
        let csv = std::env::var("AA_CSV").is_ok_and(|v| v == "1");
        EvalConfig { dataset_bytes: mb << 20, sessions, seed, csv }
    }
}

/// Result of sweeping one scheme over all sessions.
pub struct SchemeRun {
    /// Scheme name.
    pub name: &'static str,
    /// One report per session.
    pub reports: Vec<SessionReport>,
    /// The scheme's private cloud (for cost/storage queries).
    pub cloud: CloudSim,
}

/// Runs the full five-scheme × N-session evaluation. Every scheme sees the
/// *identical* weekly snapshots (same spec + seed ⇒ byte-identical data),
/// and every scheme gets the same modelled RAM budget for its indexes.
pub fn run_evaluation(cfg: EvalConfig) -> Vec<SchemeRun> {
    let ram = ram_budget_entries(cfg.dataset_bytes);
    run_evaluation_with(cfg, move |cloud| aadedupe_baselines::all_schemes_with_ram(cloud, ram))
}

/// Like [`run_evaluation`] but with a caller-supplied scheme factory (used
/// by the ablation binaries).
pub fn run_evaluation_with(
    cfg: EvalConfig,
    factory: impl Fn(&CloudSim) -> Vec<Box<dyn BackupScheme>>,
) -> Vec<SchemeRun> {
    // Each scheme gets its own cloud so storage/cost accounting is
    // per-scheme; the probe instance is only used for naming.
    let probe = factory(&CloudSim::with_paper_defaults());
    let mut runs: Vec<SchemeRun> = Vec::new();
    for (si, probe_scheme) in probe.iter().enumerate() {
        let cloud = CloudSim::with_paper_defaults();
        let mut scheme = factory(&cloud).remove(si);
        let mut generator = Generator::new(DatasetSpec::eval_mix(cfg.dataset_bytes), cfg.seed);
        let mut reports = Vec::with_capacity(cfg.sessions);
        for week in 0..cfg.sessions {
            let snapshot = generator.snapshot(week);
            let report = scheme
                .backup_session(&snapshot.as_sources())
                // aalint: allow(unwrap-in-lib) -- evaluation harness: a failed session invalidates the whole run, aborting with the error is the intended behavior
                .expect("backup session failed");
            reports.push(report);
        }
        eprintln!("  [done] {}", probe_scheme.name());
        runs.push(SchemeRun { name: leak_name(scheme.name()), reports, cloud });
    }
    runs
}

fn leak_name(name: &str) -> &'static str {
    // Scheme names are a tiny fixed set; leaking keeps SchemeRun simple.
    Box::leak(name.to_owned().into_boxed_str())
}

/// Formats a byte count with binary units.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

/// Formats bytes/second.
pub fn fmt_rate(bytes_per_sec: f64) -> String {
    if !bytes_per_sec.is_finite() {
        return "∞".into();
    }
    format!("{}/s", fmt_bytes(bytes_per_sec as u64))
}

/// Prints an aligned plain-text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            let pad = widths[i].saturating_sub(c.chars().count());
            if i == 0 {
                s.push_str(c);
                s.push_str(&" ".repeat(pad));
            } else {
                s.push_str("  ");
                s.push_str(&" ".repeat(pad));
                s.push_str(c);
            }
        }
        s
    };
    let header_cells: Vec<String> = headers.iter().map(ToString::to_string).collect();
    println!("{}", line(&header_cells));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    for row in rows {
        println!("{}", line(row));
    }
}

/// Emits raw CSV for a set of scheme runs when the config asks for it.
pub fn maybe_csv(cfg: &EvalConfig, runs: &[SchemeRun]) {
    if !cfg.csv {
        return;
    }
    println!("\n{}", SessionReport::CSV_HEADER);
    for run in runs {
        for r in &run.reports {
            println!("{}", r.csv_row());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00 MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.00 GiB");
    }

    #[test]
    fn fmt_rate_handles_infinity() {
        assert_eq!(fmt_rate(f64::INFINITY), "∞");
        assert_eq!(fmt_rate(1024.0), "1.00 KiB/s");
    }

    #[test]
    fn env_defaults() {
        // Without env vars set, defaults apply.
        let cfg = EvalConfig::from_env();
        assert_eq!(cfg.sessions, 10);
        assert_eq!(cfg.dataset_bytes, 64 << 20);
        assert_eq!(cfg.seed, 2011);
    }

    #[test]
    fn tiny_evaluation_smoke() {
        // A micro evaluation across all five schemes: every session must
        // succeed and produce coherent reports.
        let cfg = EvalConfig { dataset_bytes: 2 << 20, sessions: 2, seed: 7, csv: false };
        let runs = run_evaluation(cfg);
        assert_eq!(runs.len(), 5);
        for run in &runs {
            assert_eq!(run.reports.len(), 2);
            for r in &run.reports {
                assert!(r.stored_bytes <= r.logical_bytes, "{}", run.name);
                assert!(r.logical_bytes > 0);
            }
        }
        // All schemes saw the same logical data.
        let logical: Vec<u64> = runs.iter().map(|r| r.reports[0].logical_bytes).collect();
        assert!(logical.windows(2).all(|w| w[0] == w[1]), "{logical:?}");
    }
}
