//! Container byte layout.
//!
//! A container is self-describing (paper §III.F): "a metadata section
//! includes the chunk descriptors for the stored chunks". Layout (little-
//! endian):
//!
//! ```text
//! magic        "AACON\x01"        6 bytes
//! container_id u64
//! chunk_count  u32
//! data_len     u64                length of the data section
//! descriptors  chunk_count ×:
//!   fingerprint                   1 + digest_len bytes
//!   offset u32                    within the data section
//!   len    u32
//! data         data_len bytes
//! padding      zeros to the fixed container size (absent for oversized
//!              single-chunk containers)
//! ```

use aadedupe_hashing::Fingerprint;
use std::collections::HashMap;
use std::fmt;

/// Magic prefix of every container object.
pub const CONTAINER_MAGIC: &[u8; 6] = b"AACON\x01";

/// Fixed header size before the descriptor table.
pub const HEADER_LEN: usize = 6 + 8 + 4 + 8;

/// One chunk's metadata inside a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkDescriptor {
    /// The chunk's fingerprint.
    pub fingerprint: Fingerprint,
    /// Offset within the container's data section.
    pub offset: u32,
    /// Chunk length in bytes.
    pub len: u32,
}

impl ChunkDescriptor {
    /// Encoded size of this descriptor.
    pub fn encoded_len(&self) -> usize {
        1 + self.fingerprint.algorithm().digest_len() + 4 + 4
    }
}

/// Container parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// Missing or wrong magic.
    BadMagic,
    /// Byte stream shorter than the declared structure.
    Truncated,
    /// A descriptor failed to decode.
    BadDescriptor,
    /// A descriptor points outside the data section.
    DescriptorOutOfRange,
    /// A chunk's bytes do not match its fingerprint (corruption).
    ChunkCorrupt(Fingerprint),
    /// Requested fingerprint is not stored in this container.
    ChunkNotFound,
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::BadMagic => write!(f, "bad container magic"),
            ContainerError::Truncated => write!(f, "truncated container"),
            ContainerError::BadDescriptor => write!(f, "undecodable chunk descriptor"),
            ContainerError::DescriptorOutOfRange => {
                write!(f, "chunk descriptor exceeds data section")
            }
            ContainerError::ChunkCorrupt(fp) => write!(f, "chunk {fp} fails verification"),
            ContainerError::ChunkNotFound => write!(f, "chunk not present in container"),
        }
    }
}

impl std::error::Error for ContainerError {}

/// Serialises a container. `pad_to` pads the result with zeros up to the
/// fixed container size; pass `None` for oversized single-chunk containers.
pub fn encode_container(
    container_id: u64,
    descriptors: &[ChunkDescriptor],
    data: &[u8],
    pad_to: Option<usize>,
) -> Vec<u8> {
    let desc_len: usize = descriptors.iter().map(ChunkDescriptor::encoded_len).sum();
    let body_len = HEADER_LEN + desc_len + data.len();
    let total = pad_to.map_or(body_len, |p| p.max(body_len));
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(CONTAINER_MAGIC);
    out.extend_from_slice(&container_id.to_le_bytes());
    out.extend_from_slice(&(descriptors.len() as u32).to_le_bytes());
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    for d in descriptors {
        d.fingerprint.encode(&mut out);
        out.extend_from_slice(&d.offset.to_le_bytes());
        out.extend_from_slice(&d.len.to_le_bytes());
    }
    out.extend_from_slice(data);
    out.resize(total, 0);
    out
}

/// A parsed (and structurally validated) container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedContainer {
    /// The container's identifier.
    pub container_id: u64,
    /// Descriptor table.
    pub descriptors: Vec<ChunkDescriptor>,
    /// Data section (padding stripped).
    pub data: Vec<u8>,
}

impl ParsedContainer {
    /// Parses container bytes, validating structure (not chunk contents).
    pub fn parse(buf: &[u8]) -> Result<Self, ContainerError> {
        if buf.len() < HEADER_LEN {
            // aalint: allow(panic-path) -- slice length is clamped to buf.len() by the min(6)
            return Err(if buf.starts_with(&CONTAINER_MAGIC[..buf.len().min(6)]) {
                ContainerError::Truncated
            } else {
                ContainerError::BadMagic
            });
        }
        if &buf[..6] != CONTAINER_MAGIC {
            return Err(ContainerError::BadMagic);
        }
        let container_id = u64::from_le_bytes(buf[6..14].try_into().map_err(|_| ContainerError::Truncated)?);
        let chunk_count = u32::from_le_bytes(buf[14..18].try_into().map_err(|_| ContainerError::Truncated)?) as usize;
        let data_len = u64::from_le_bytes(buf[18..26].try_into().map_err(|_| ContainerError::Truncated)?) as usize;
        // Each descriptor is at least 13+8 bytes.
        if chunk_count.saturating_mul(13) > buf.len() {
            return Err(ContainerError::Truncated);
        }
        let mut pos = HEADER_LEN;
        let mut descriptors = Vec::with_capacity(chunk_count);
        for _ in 0..chunk_count {
            let (fingerprint, used) =
                // aalint: allow(panic-path) -- pos <= buf.len(): every advance below is bounds-checked before pos moves
                Fingerprint::decode(&buf[pos..]).ok_or(ContainerError::BadDescriptor)?;
            pos += used;
            if buf.len() < pos + 8 {
                return Err(ContainerError::Truncated);
            }
            // aalint: allow(panic-path) -- guarded by the buf.len() < pos + 8 check above
            let offset = u32::from_le_bytes(buf[pos..pos + 4].try_into().map_err(|_| ContainerError::Truncated)?);
            // aalint: allow(panic-path) -- guarded by the buf.len() < pos + 8 check above
            let len = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().map_err(|_| ContainerError::Truncated)?);
            pos += 8;
            if (offset as usize).saturating_add(len as usize) > data_len {
                return Err(ContainerError::DescriptorOutOfRange);
            }
            descriptors.push(ChunkDescriptor { fingerprint, offset, len });
        }
        if buf.len() < pos + data_len {
            return Err(ContainerError::Truncated);
        }
        // aalint: allow(panic-path) -- guarded by the buf.len() < pos + data_len check above
        let data = buf[pos..pos + data_len].to_vec();
        Ok(ParsedContainer { container_id, descriptors, data })
    }

    /// The bytes of the chunk at a descriptor.
    pub fn chunk_bytes(&self, d: &ChunkDescriptor) -> &[u8] {
        // aalint: allow(panic-path) -- parse() validated offset + len <= data_len for every descriptor it returned
        &self.data[d.offset as usize..(d.offset + d.len) as usize]
    }

    /// Finds a chunk by fingerprint and returns its bytes.
    pub fn find(&self, fp: &Fingerprint) -> Result<&[u8], ContainerError> {
        self.descriptors
            .iter()
            .find(|d| d.fingerprint == *fp)
            .map(|d| self.chunk_bytes(d))
            .ok_or(ContainerError::ChunkNotFound)
    }

    /// Builds an `(offset, fingerprint) → descriptor` lookup table so
    /// restore can resolve chunk references in O(1) instead of scanning
    /// the descriptor table per chunk. Keyed on the pair because a
    /// duplicate chunk may legitimately appear at several offsets.
    pub fn descriptor_map(&self) -> HashMap<(u32, Fingerprint), ChunkDescriptor> {
        self.descriptors.iter().map(|d| ((d.offset, d.fingerprint), *d)).collect()
    }

    /// Recomputes every chunk's fingerprint, returning the first corrupt
    /// chunk found. Used for failure-injection tests and restore-time
    /// integrity checking.
    pub fn verify(&self) -> Result<(), ContainerError> {
        for d in &self.descriptors {
            let recomputed =
                Fingerprint::compute(d.fingerprint.algorithm(), self.chunk_bytes(d));
            if recomputed != d.fingerprint {
                return Err(ContainerError::ChunkCorrupt(d.fingerprint));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadedupe_hashing::HashAlgorithm;

    fn build_sample(pad: Option<usize>) -> (Vec<u8>, Vec<ChunkDescriptor>, Vec<u8>) {
        let chunks: Vec<Vec<u8>> = vec![b"first chunk".to_vec(), vec![7u8; 300], b"z".to_vec()];
        let mut data = Vec::new();
        let mut descriptors = Vec::new();
        for (i, c) in chunks.iter().enumerate() {
            let algo = match i % 3 {
                0 => HashAlgorithm::Sha1,
                1 => HashAlgorithm::Md5,
                _ => HashAlgorithm::Rabin96,
            };
            descriptors.push(ChunkDescriptor {
                fingerprint: Fingerprint::compute(algo, c),
                offset: data.len() as u32,
                len: c.len() as u32,
            });
            data.extend_from_slice(c);
        }
        let encoded = encode_container(42, &descriptors, &data, pad);
        (encoded, descriptors, data)
    }

    #[test]
    fn round_trip_unpadded() {
        let (encoded, descriptors, data) = build_sample(None);
        let parsed = ParsedContainer::parse(&encoded).unwrap();
        assert_eq!(parsed.container_id, 42);
        assert_eq!(parsed.descriptors, descriptors);
        assert_eq!(parsed.data, data);
        parsed.verify().unwrap();
    }

    #[test]
    fn round_trip_padded() {
        let (encoded, descriptors, _) = build_sample(Some(4096));
        assert_eq!(encoded.len(), 4096, "padded to fixed size");
        let parsed = ParsedContainer::parse(&encoded).unwrap();
        assert_eq!(parsed.descriptors.len(), descriptors.len());
        parsed.verify().unwrap();
    }

    #[test]
    fn find_by_fingerprint() {
        let (encoded, descriptors, _) = build_sample(None);
        let parsed = ParsedContainer::parse(&encoded).unwrap();
        assert_eq!(parsed.find(&descriptors[0].fingerprint).unwrap(), b"first chunk");
        let absent = Fingerprint::compute(HashAlgorithm::Sha1, b"not here");
        assert_eq!(parsed.find(&absent), Err(ContainerError::ChunkNotFound));
    }

    #[test]
    fn descriptor_map_covers_every_descriptor() {
        let (encoded, descriptors, _) = build_sample(None);
        let parsed = ParsedContainer::parse(&encoded).unwrap();
        let map = parsed.descriptor_map();
        assert_eq!(map.len(), descriptors.len());
        for d in &descriptors {
            assert_eq!(map[&(d.offset, d.fingerprint)], *d);
        }
        assert!(!map.contains_key(&(999, descriptors[0].fingerprint)));
    }

    #[test]
    fn corruption_detected() {
        let (mut encoded, _, _) = build_sample(None);
        // Flip a byte inside the data section (after header+descriptors).
        let n = encoded.len();
        encoded[n - 5] ^= 0x01;
        let parsed = ParsedContainer::parse(&encoded).unwrap();
        assert!(matches!(parsed.verify(), Err(ContainerError::ChunkCorrupt(_))));
    }

    #[test]
    fn truncation_rejected_at_every_prefix() {
        let (encoded, _, _) = build_sample(None);
        for n in 0..encoded.len() {
            assert!(ParsedContainer::parse(&encoded[..n]).is_err(), "prefix {n}");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let (mut encoded, _, _) = build_sample(None);
        encoded[0] = b'X';
        assert_eq!(ParsedContainer::parse(&encoded), Err(ContainerError::BadMagic));
    }

    #[test]
    fn descriptor_out_of_range_rejected() {
        let d = ChunkDescriptor {
            fingerprint: Fingerprint::compute(HashAlgorithm::Md5, b"x"),
            offset: 100,
            len: 100,
        };
        // data section only 10 bytes but descriptor claims 100..200.
        let encoded = encode_container(1, &[d], &[0u8; 10], None);
        assert_eq!(
            ParsedContainer::parse(&encoded),
            Err(ContainerError::DescriptorOutOfRange)
        );
    }

    #[test]
    fn empty_container() {
        let encoded = encode_container(9, &[], &[], Some(128));
        assert_eq!(encoded.len(), 128);
        let parsed = ParsedContainer::parse(&encoded).unwrap();
        assert!(parsed.descriptors.is_empty());
        assert!(parsed.data.is_empty());
        parsed.verify().unwrap();
    }
}
