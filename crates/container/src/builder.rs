//! Incremental container construction.
//!
//! One open [`ContainerBuilder`] exists per backup stream; chunks are
//! appended until the projected serialized size would exceed the fixed
//! container size, at which point the caller seals the container (padding
//! it) and opens a new one. The builder tracks its projected size exactly,
//! so a sealed container never overflows the fixed size — except dedicated
//! oversized containers holding a single huge chunk.

use crate::format::{encode_container, ChunkDescriptor, HEADER_LEN};
use bytes::BufMut;

/// An open, partially-filled container.
pub struct ContainerBuilder {
    container_id: u64,
    target_size: usize,
    descriptors: Vec<ChunkDescriptor>,
    data: Vec<u8>,
    /// Projected serialized size (header + descriptors + data, no padding).
    projected: usize,
}

impl ContainerBuilder {
    /// Opens an empty container.
    pub fn new(container_id: u64, target_size: usize) -> Self {
        // aalint: allow(panic-path) -- construction-time parameter validation: a container smaller than its header is a config bug
        assert!(target_size > HEADER_LEN, "container size too small");
        ContainerBuilder {
            container_id,
            target_size,
            descriptors: Vec::new(),
            data: Vec::with_capacity(target_size.min(1 << 22)),
            projected: HEADER_LEN,
        }
    }

    /// The container's identifier.
    pub fn container_id(&self) -> u64 {
        self.container_id
    }

    /// Fixed size this container will be padded to when sealed.
    pub fn target_size(&self) -> usize {
        self.target_size
    }

    /// Number of chunks appended so far.
    pub fn chunk_count(&self) -> usize {
        self.descriptors.len()
    }

    /// Bytes of chunk data appended so far.
    pub fn data_len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// Whether appending a chunk of `len` bytes fingerprinted by an
    /// algorithm with `digest_len` would keep the container within its
    /// fixed size.
    pub fn fits(&self, len: usize, digest_len: usize) -> bool {
        let desc = 1 + digest_len + 8;
        self.projected + desc + len <= self.target_size
    }

    /// Appends a chunk, returning its offset within the data section.
    ///
    /// The caller is responsible for checking [`ContainerBuilder::fits`]
    /// first; appending an oversized chunk into an empty builder is allowed
    /// (dedicated oversized container), otherwise this panics.
    pub fn append(&mut self, fingerprint: aadedupe_hashing::Fingerprint, chunk: &[u8]) -> u32 {
        let digest_len = fingerprint.algorithm().digest_len();
        // aalint: allow(panic-path) -- documented precondition: callers check fits() first; violating it is a caller bug worth a loud panic
        assert!(
            self.fits(chunk.len(), digest_len) || self.is_empty(),
            "chunk does not fit and builder is not empty"
        );
        let offset = self.data.len() as u32;
        self.descriptors.push(ChunkDescriptor {
            fingerprint,
            offset,
            len: chunk.len() as u32,
        });
        self.data.put_slice(chunk);
        self.projected += 1 + digest_len + 8 + chunk.len();
        offset
    }

    /// Seals the container into its final byte form.
    ///
    /// The paper pads partially-filled containers "out to full size" when
    /// writing them to the local *disk* staging area (fixed-slot container
    /// logs a la DDFS); shipping zero padding over a 500 KB/s WAN would be
    /// pure waste, so the uploaded form is the self-delimiting body alone.
    /// Returns `(bytes, padding)` where `padding` is the notional
    /// fixed-slot fill (`target_size - body`, 0 for oversized containers)
    /// that a padded on-disk layout would add -- reported so the
    /// container-size ablation can quantify the tradeoff.
    pub fn seal(self) -> (Vec<u8>, usize) {
        let body = self.projected;
        let padding = self.target_size.saturating_sub(body);
        let out = encode_container(self.container_id, &self.descriptors, &self.data, None);
        debug_assert_eq!(out.len(), body);
        (out, padding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::ParsedContainer;
    use aadedupe_hashing::{Fingerprint, HashAlgorithm};

    fn fp(data: &[u8]) -> Fingerprint {
        Fingerprint::compute(HashAlgorithm::Sha1, data)
    }

    #[test]
    fn append_until_full_then_seal() {
        let mut b = ContainerBuilder::new(1, 4096);
        let chunk = vec![0xaau8; 500];
        let mut appended = 0;
        while b.fits(chunk.len(), 20) {
            b.append(fp(&chunk), &chunk);
            appended += 1;
        }
        assert!(appended >= 6, "should fit several 500B chunks in 4 KiB");
        let (bytes, padding) = b.seal();
        assert!(bytes.len() <= 4096, "body stays within the fixed size");
        assert_eq!(bytes.len() + padding, 4096, "padding is the notional slot fill");
        assert!(padding < 600, "padding should be less than one chunk");
        let parsed = ParsedContainer::parse(&bytes).unwrap();
        assert_eq!(parsed.descriptors.len(), appended);
        parsed.verify().unwrap();
    }

    #[test]
    fn projected_size_is_exact() {
        let mut b = ContainerBuilder::new(2, 8192);
        for i in 0..5u8 {
            let chunk = vec![i; 100 + i as usize];
            b.append(fp(&chunk), &chunk);
        }
        let projected = b.projected;
        let (bytes, _padding) = b.seal();
        assert_eq!(bytes.len(), projected);
    }

    #[test]
    fn oversized_single_chunk_unpadded() {
        let mut b = ContainerBuilder::new(3, 1024);
        let big = vec![1u8; 10_000];
        assert!(!b.fits(big.len(), 12));
        b.append(Fingerprint::compute(HashAlgorithm::Rabin96, &big), &big);
        let (bytes, padding) = b.seal();
        assert_eq!(padding, 0);
        assert!(bytes.len() > 10_000);
        let parsed = ParsedContainer::parse(&bytes).unwrap();
        assert_eq!(parsed.descriptors.len(), 1);
        parsed.verify().unwrap();
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_append_into_nonempty_panics() {
        let mut b = ContainerBuilder::new(4, 1024);
        b.append(fp(b"small"), b"small");
        let big = vec![0u8; 10_000];
        b.append(fp(&big), &big);
    }

    #[test]
    fn empty_builder_seals_to_bare_header() {
        let b = ContainerBuilder::new(5, 256);
        let (bytes, padding) = b.seal();
        assert_eq!(bytes.len(), HEADER_LEN);
        assert_eq!(padding, 256 - HEADER_LEN);
        let parsed = ParsedContainer::parse(&bytes).unwrap();
        assert!(parsed.descriptors.is_empty());
    }

    #[test]
    fn offsets_are_sequential() {
        let mut b = ContainerBuilder::new(6, 1 << 16);
        let o1 = b.append(fp(b"aaa"), b"aaa");
        let o2 = b.append(fp(b"bbbb"), b"bbbb");
        let o3 = b.append(fp(b"c"), b"c");
        assert_eq!((o1, o2, o3), (0, 3, 7));
    }
}
