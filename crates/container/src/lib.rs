#![forbid(unsafe_code)]
//! Self-describing chunk containers (paper §III.F).
//!
//! Deduplication turns large sequential writes into many small random ones,
//! and WAN protocols (and S3's per-request pricing) punish small transfers.
//! AA-Dedupe therefore aggregates new chunks and tiny files into fixed-size
//! (default 1 MiB) **containers** before upload:
//!
//! * A container is *self-describing*: a metadata section holds a
//!   descriptor (fingerprint, offset, length) for every stored chunk, so a
//!   container alone suffices to rebuild index entries.
//! * One **open container per backup stream**; each new chunk is appended
//!   to the open container of its stream. Chunk locality groups data likely
//!   to be restored together.
//! * A full container is sealed and shipped; a container flushed early is
//!   **padded** to its fixed size (padding is accounted — the
//!   `ablation_container` bench sweeps the size/padding tradeoff).
//! * Chunks too large to share a container (e.g. whole-file chunks of
//!   media files) get a dedicated, unpadded container of their own.
//! * Deletion support: a background sweep rewrites containers, dropping
//!   chunks that are no longer referenced ([`store::compact_container`]).
//!
//! Modules: [`format`] (the byte layout), [`builder`] (incremental
//! construction), [`store`] (open-container management, sealing, GC).

pub mod builder;
pub mod format;
pub mod store;

pub use builder::ContainerBuilder;
pub use format::{ChunkDescriptor, ContainerError, ParsedContainer, CONTAINER_MAGIC};
pub use store::{
    compact_container, compact_container_bytes, compose_id, decompose_id, CompactedContainer,
    ContainerStore, Placement, SealedContainer, StoreStats, STREAM_ID_SHIFT,
};

/// Default fixed container size: 1 MiB (paper §III.F).
pub const DEFAULT_CONTAINER_SIZE: usize = 1 << 20;
