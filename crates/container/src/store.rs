//! Open-container management, sealing, and garbage collection.
//!
//! "An open chunk container is maintained for each incoming backup data
//! stream, appending each new chunk or tiny file to the open container
//! corresponding to the stream it is part of. When a container fills up
//! with a predefined fixed size, a new one is opened up." (paper §III.F)
//!
//! The [`ContainerStore`] implements exactly that: callers name a stream
//! (AA-Dedupe uses one stream per application type, preserving chunk
//! locality for restores), and the store routes each chunk to that stream's
//! open container, sealing and queueing full containers for upload.
//!
//! Container ids are *per-stream*: id = `stream << STREAM_ID_SHIFT | seq`,
//! with an independent sequence counter per stream ([`compose_id`] /
//! [`decompose_id`]). A stream's container layout therefore depends only
//! on that stream's own append sequence — never on how appends to
//! different streams interleave. This is the property the parallel backup
//! pipeline relies on for determinism: as long as each stream's chunks
//! arrive in a fixed order, the produced containers are byte-identical no
//! matter how many threads feed the store.

use crate::builder::ContainerBuilder;
use crate::format::{ChunkDescriptor, ContainerError, ParsedContainer};
use aadedupe_hashing::Fingerprint;
use aadedupe_obs::{Counter, Recorder, Stage};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Bit position splitting a container id into (stream, sequence): the low
/// 40 bits count containers within a stream (over a trillion per stream),
/// the high bits carry the stream id.
pub const STREAM_ID_SHIFT: u32 = 40;

/// Builds a container id from a stream id and that stream's sequence
/// number.
pub fn compose_id(stream: u32, seq: u64) -> u64 {
    debug_assert!(seq < 1 << STREAM_ID_SHIFT, "stream sequence overflow");
    ((stream as u64) << STREAM_ID_SHIFT) | seq
}

/// Splits a container id into (stream, sequence). Ids minted before the
/// per-stream scheme decompose as stream 0, which is harmless: resuming
/// treats them as floor values and new ids never collide with them.
pub fn decompose_id(id: u64) -> (u32, u64) {
    ((id >> STREAM_ID_SHIFT) as u32, id & ((1 << STREAM_ID_SHIFT) - 1))
}

/// A sealed container ready for upload.
#[derive(Debug, Clone)]
pub struct SealedContainer {
    /// Container identifier (matches the id embedded in `bytes`).
    pub id: u64,
    /// Serialized container body (padding is never shipped).
    pub bytes: Vec<u8>,
    /// Notional fixed-slot padding a padded on-disk layout would add.
    pub padding: usize,
    /// Number of chunks inside.
    pub chunks: usize,
}

/// Where a chunk was placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The container that will hold (or holds) the chunk.
    pub container: u64,
    /// Offset within that container's data section.
    pub offset: u32,
}

/// Cumulative container statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Containers sealed (including oversized dedicated ones).
    pub sealed: u64,
    /// Of which, oversized dedicated single-chunk containers.
    pub oversized: u64,
    /// Total chunk payload bytes written.
    pub data_bytes: u64,
    /// Total padding bytes written.
    pub padding_bytes: u64,
    /// Total chunks placed.
    pub chunks: u64,
}

/// Manages one open container per stream plus the sealed-output queue.
pub struct ContainerStore {
    container_size: usize,
    /// Next sequence number per stream (ids are per-stream, see
    /// [`compose_id`]).
    next_seq: BTreeMap<u32, u64>,
    /// Floor applied to every stream's sequence, covering namespaces whose
    /// existing ids predate the per-stream scheme.
    seq_floor: u64,
    open: BTreeMap<u32, ContainerBuilder>,
    sealed: Vec<SealedContainer>,
    stats: StoreStats,
    recorder: Arc<Recorder>,
}

impl ContainerStore {
    /// Store producing containers of the given fixed size.
    pub fn new(container_size: usize) -> Self {
        ContainerStore {
            container_size,
            next_seq: BTreeMap::new(),
            seq_floor: 0,
            open: BTreeMap::new(),
            sealed: Vec::new(),
            stats: StoreStats::default(),
            recorder: Recorder::shared_disabled(),
        }
    }

    /// Routes this store's append/seal observations to `recorder`.
    pub fn set_recorder(&mut self, recorder: Arc<Recorder>) {
        self.recorder = recorder;
    }

    /// The fixed container size.
    pub fn container_size(&self) -> usize {
        self.container_size
    }

    /// Ensures every stream's future sequence numbers start at or after
    /// `next_seq` — used when resuming over a namespace holding containers
    /// whose ids don't carry a stream part (ids must never be reused, or
    /// uploads would clobber live objects).
    pub fn resume_ids_from(&mut self, next_seq: u64) {
        self.seq_floor = self.seq_floor.max(next_seq);
    }

    /// Ensures `stream`'s future sequence numbers start at or after
    /// `next_seq` — the per-stream resume used after decomposing existing
    /// container ids with [`decompose_id`].
    pub fn resume_stream_ids(&mut self, stream: u32, next_seq: u64) {
        let seq = self.next_seq.entry(stream).or_insert(0);
        *seq = (*seq).max(next_seq);
    }

    fn fresh_id(&mut self, stream: u32) -> u64 {
        Self::mint_id(&mut self.next_seq, self.seq_floor, stream)
    }

    /// Mints a fresh container id for `stream` without opening a builder —
    /// the naming hook for compaction: vacuum needs ids for rewritten
    /// containers that stay monotonic and can never collide with ids a
    /// later backup session mints from the same store.
    pub fn mint_container_id(&mut self, stream: u32) -> u64 {
        self.fresh_id(stream)
    }

    /// Field-level id minting so [`add_chunk`](Self::add_chunk) can mint
    /// inside an `open.entry()` closure (disjoint field borrows).
    fn mint_id(next_seq: &mut BTreeMap<u32, u64>, seq_floor: u64, stream: u32) -> u64 {
        let seq = next_seq.entry(stream).or_insert(0);
        let current = (*seq).max(seq_floor);
        *seq = current + 1;
        compose_id(stream, current)
    }

    /// Adds a chunk to `stream`'s open container, sealing/rolling as
    /// needed. Oversized chunks get a dedicated container sealed
    /// immediately.
    pub fn add_chunk(&mut self, stream: u32, fp: Fingerprint, chunk: &[u8]) -> Placement {
        let started = self.recorder.start();
        self.recorder.count(Counter::ContainerAppends, 1);
        self.recorder.count(Counter::StoredBytes, chunk.len() as u64);
        self.stats.chunks += 1;
        self.stats.data_bytes += chunk.len() as u64;
        let digest_len = fp.algorithm().digest_len();

        // Oversized chunk: dedicated container, sealed at once, unpadded.
        let fits_any = ContainerBuilder::new(u64::MAX, self.container_size)
            .fits(chunk.len(), digest_len);
        if !fits_any {
            let id = self.fresh_id(stream);
            let mut b = ContainerBuilder::new(id, self.container_size);
            let offset = b.append(fp, chunk);
            let (bytes, padding) = b.seal();
            self.stats.sealed += 1;
            self.stats.oversized += 1;
            self.stats.padding_bytes += padding as u64;
            self.recorder.count(Counter::ContainersSealed, 1);
            self.recorder.count(Counter::SealedBytes, bytes.len() as u64);
            self.sealed.push(SealedContainer { id, bytes, padding, chunks: 1 });
            self.recorder.record(Stage::ContainerAppend, started);
            return Placement { container: id, offset };
        }

        // Roll the stream's open container if the chunk doesn't fit.
        let needs_roll =
            self.open.get(&stream).is_some_and(|b| !b.fits(chunk.len(), digest_len));
        if needs_roll {
            self.seal_stream(stream);
        }
        let size = self.container_size;
        let (next_seq, seq_floor) = (&mut self.next_seq, self.seq_floor);
        let builder = self
            .open
            .entry(stream)
            .or_insert_with(|| ContainerBuilder::new(Self::mint_id(next_seq, seq_floor, stream), size));
        let id = builder.container_id();
        let offset = builder.append(fp, chunk);
        self.recorder.record(Stage::ContainerAppend, started);
        Placement { container: id, offset }
    }

    /// Seals `stream`'s open container (if any); the notional slot fill
    /// is accounted in [`StoreStats::padding_bytes`].
    pub fn seal_stream(&mut self, stream: u32) {
        if let Some(b) = self.open.remove(&stream) {
            if b.is_empty() {
                return;
            }
            let started = self.recorder.start();
            let id = b.container_id();
            let chunks = b.chunk_count();
            let (bytes, padding) = b.seal();
            self.stats.sealed += 1;
            self.stats.padding_bytes += padding as u64;
            self.recorder.count(Counter::ContainersSealed, 1);
            self.recorder.count(Counter::SealedBytes, bytes.len() as u64);
            self.sealed.push(SealedContainer { id, bytes, padding, chunks });
            self.recorder.record(Stage::ContainerSeal, started);
        }
    }

    /// Seals every open container (end of a backup session).
    pub fn seal_all(&mut self) {
        let streams: Vec<u32> = self.open.keys().copied().collect();
        for s in streams {
            self.seal_stream(s);
        }
    }

    /// Takes the queue of sealed containers (ready for upload).
    pub fn drain_sealed(&mut self) -> Vec<SealedContainer> {
        std::mem::take(&mut self.sealed)
    }

    /// Sealed containers waiting to be drained.
    pub fn pending(&self) -> usize {
        self.sealed.len()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }
}

/// A compacted container: its rewritten bytes plus the surviving chunks'
/// new placements.
pub type CompactedContainer = (Vec<u8>, Vec<(Fingerprint, Placement)>);

/// Rewrites a container, keeping only chunks for which `live` returns true
/// — the background deletion process of paper §III.F.
///
/// Returns `None` when nothing survives (the container can simply be
/// deleted), otherwise the rewritten container bytes (under `new_id`)
/// plus the surviving chunks' new placements.
pub fn compact_container(
    parsed: &ParsedContainer,
    live: &dyn Fn(&Fingerprint) -> bool,
    new_id: u64,
    container_size: usize,
) -> Option<CompactedContainer> {
    let survivors: Vec<&ChunkDescriptor> = parsed
        .descriptors
        .iter()
        .filter(|d| live(&d.fingerprint))
        .collect();
    if survivors.is_empty() {
        return None;
    }
    // Survivors are a subset of a container that fit `container_size`
    // before, so they always fit the rewritten container (an oversized
    // original has exactly one chunk, which an empty builder accepts).
    let mut b = ContainerBuilder::new(new_id, container_size);
    let mut moves = Vec::with_capacity(survivors.len());
    for d in survivors {
        let offset = b.append(d.fingerprint, parsed.chunk_bytes(d));
        moves.push((d.fingerprint, Placement { container: new_id, offset }));
    }
    let (bytes, _padding) = b.seal();
    Some((bytes, moves))
}

/// Convenience: parse-then-compact, surfacing parse errors.
pub fn compact_container_bytes(
    raw: &[u8],
    live: &dyn Fn(&Fingerprint) -> bool,
    new_id: u64,
    container_size: usize,
) -> Result<Option<CompactedContainer>, ContainerError> {
    let parsed = ParsedContainer::parse(raw)?;
    Ok(compact_container(&parsed, live, new_id, container_size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadedupe_hashing::HashAlgorithm;

    fn fp(data: &[u8]) -> Fingerprint {
        Fingerprint::compute(HashAlgorithm::Sha1, data)
    }

    #[test]
    fn fills_and_rolls_containers() {
        let mut store = ContainerStore::new(4096);
        let chunk = vec![3u8; 1000];
        let mut placements = Vec::new();
        for _ in 0..10 {
            placements.push(store.add_chunk(0, fp(&chunk), &chunk));
        }
        store.seal_all();
        let sealed = store.drain_sealed();
        assert!(sealed.len() >= 3, "10 KB of chunks in 4 KiB containers");
        // Every placement must resolve inside its sealed container.
        for p in &placements {
            let sc = sealed.iter().find(|s| s.id == p.container).expect("container sealed");
            let parsed = ParsedContainer::parse(&sc.bytes).unwrap();
            let d = parsed
                .descriptors
                .iter()
                .find(|d| d.offset == p.offset)
                .expect("offset present");
            assert_eq!(parsed.chunk_bytes(d), &chunk[..]);
        }
    }

    #[test]
    fn streams_are_isolated() {
        let mut store = ContainerStore::new(4096);
        let a = store.add_chunk(1, fp(b"stream-a"), b"stream-a");
        let b = store.add_chunk(2, fp(b"stream-b"), b"stream-b");
        assert_ne!(a.container, b.container, "distinct streams use distinct containers");
        store.seal_all();
        assert_eq!(store.drain_sealed().len(), 2);
    }

    #[test]
    fn oversized_chunk_gets_dedicated_container() {
        let mut store = ContainerStore::new(1024);
        store.add_chunk(0, fp(b"small"), b"small");
        let big = vec![9u8; 5000];
        let p = store.add_chunk(0, fp(&big), &big);
        // The dedicated container is sealed immediately.
        assert_eq!(store.pending(), 1);
        let sealed = store.drain_sealed();
        assert_eq!(sealed[0].id, p.container);
        assert_eq!(sealed[0].padding, 0, "oversized container unpadded");
        assert_eq!(store.stats().oversized, 1);
        // The small chunk's container is still open.
        store.seal_all();
        assert_eq!(store.drain_sealed().len(), 1);
    }

    #[test]
    fn padding_accounted() {
        let mut store = ContainerStore::new(4096);
        store.add_chunk(0, fp(b"x"), b"x");
        store.seal_all();
        let sealed = store.drain_sealed();
        assert!(sealed[0].bytes.len() < 100, "only header + descriptor + 1 byte shipped");
        assert!(sealed[0].padding > 4000, "the notional slot fill is accounted");
        assert_eq!(store.stats().padding_bytes, sealed[0].padding as u64);
    }

    #[test]
    fn sealing_empty_stream_is_noop() {
        let mut store = ContainerStore::new(4096);
        store.seal_stream(7);
        store.seal_all();
        assert_eq!(store.pending(), 0);
        assert_eq!(store.stats().sealed, 0);
    }

    #[test]
    fn resume_ids_skips_used_range() {
        let mut store = ContainerStore::new(4096);
        store.resume_ids_from(100);
        let p = store.add_chunk(0, fp(b"x"), b"x");
        assert!(p.container >= 100);
        // Resuming backwards never lowers the counter.
        store.resume_ids_from(5);
        let q = store.add_chunk(1, fp(b"y"), b"y");
        assert!(q.container > p.container);
    }

    #[test]
    fn container_ids_unique_and_monotonic() {
        let mut store = ContainerStore::new(1024);
        let big = vec![1u8; 4000];
        let p1 = store.add_chunk(0, fp(&big), &big);
        let p2 = store.add_chunk(0, fp(b"s"), b"s");
        let p3 = store.add_chunk(1, fp(b"t"), b"t");
        let mut ids = vec![p1.container, p2.container, p3.container];
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn compaction_drops_dead_chunks() {
        let mut store = ContainerStore::new(8192);
        let keep = b"keep me".to_vec();
        let drop_ = b"drop me".to_vec();
        store.add_chunk(0, fp(&keep), &keep);
        store.add_chunk(0, fp(&drop_), &drop_);
        store.seal_all();
        let sealed = store.drain_sealed();
        let keep_fp = fp(&keep);
        let (bytes, moves) =
            compact_container_bytes(&sealed[0].bytes, &|f| *f == keep_fp, 99, 8192)
                .unwrap()
                .expect("one survivor");
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].0, keep_fp);
        let parsed = ParsedContainer::parse(&bytes).unwrap();
        assert_eq!(parsed.container_id, 99);
        assert_eq!(parsed.descriptors.len(), 1);
        assert_eq!(parsed.find(&keep_fp).unwrap(), &keep[..]);
        parsed.verify().unwrap();
    }

    #[test]
    fn compaction_of_fully_dead_container_returns_none() {
        let mut store = ContainerStore::new(4096);
        store.add_chunk(0, fp(b"doomed"), b"doomed");
        store.seal_all();
        let sealed = store.drain_sealed();
        let r = compact_container_bytes(&sealed[0].bytes, &|_| false, 1, 4096).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn ids_compose_and_decompose() {
        for (stream, seq) in [(0u32, 0u64), (1, 0), (13, 7), (0, (1 << 40) - 1), (255, 12345)] {
            let id = compose_id(stream, seq);
            assert_eq!(decompose_id(id), (stream, seq));
        }
        // Legacy small ids decompose as stream 0.
        assert_eq!(decompose_id(42), (0, 42));
    }

    #[test]
    fn stream_layout_independent_of_interleaving() {
        // The determinism contract: a stream's sealed containers depend
        // only on that stream's own append sequence, not on how appends
        // to other streams interleave with it.
        let chunks_a: Vec<Vec<u8>> = (0..9u8).map(|i| vec![i; 900]).collect();
        let chunks_b: Vec<Vec<u8>> = (0..9u8).map(|i| vec![i ^ 0x55; 700]).collect();

        let run = |interleave: bool| -> Vec<(u64, Vec<u8>)> {
            let mut store = ContainerStore::new(2048);
            if interleave {
                for (a, b) in chunks_a.iter().zip(&chunks_b) {
                    store.add_chunk(1, fp(a), a);
                    store.add_chunk(2, fp(b), b);
                }
            } else {
                for b in &chunks_b {
                    store.add_chunk(2, fp(b), b);
                }
                for a in &chunks_a {
                    store.add_chunk(1, fp(a), a);
                }
            }
            store.seal_all();
            let mut sealed: Vec<(u64, Vec<u8>)> =
                store.drain_sealed().into_iter().map(|s| (s.id, s.bytes)).collect();
            sealed.sort_by_key(|(id, _)| *id);
            sealed
        };
        assert_eq!(run(true), run(false), "sealed containers are order-independent");
    }

    #[test]
    fn per_stream_resume_is_independent() {
        let mut store = ContainerStore::new(4096);
        store.resume_stream_ids(3, 17);
        let p3 = store.add_chunk(3, fp(b"c"), b"c");
        let p4 = store.add_chunk(4, fp(b"d"), b"d");
        assert_eq!(decompose_id(p3.container), (3, 17));
        assert_eq!(decompose_id(p4.container), (4, 0), "other streams unaffected");
    }

    #[test]
    fn minted_ids_interleave_with_appends_without_collision() {
        let mut store = ContainerStore::new(4096);
        let m1 = store.mint_container_id(2);
        let p = store.add_chunk(2, fp(b"x"), b"x");
        let m2 = store.mint_container_id(2);
        assert_eq!(decompose_id(m1), (2, 0));
        assert_eq!(decompose_id(p.container), (2, 1));
        assert_eq!(decompose_id(m2), (2, 2));
    }

    #[test]
    fn stats_track_everything() {
        let mut store = ContainerStore::new(2048);
        for i in 0..5u8 {
            let c = vec![i; 300];
            store.add_chunk(0, fp(&c), &c);
        }
        store.seal_all();
        let s = store.stats();
        assert_eq!(s.chunks, 5);
        assert_eq!(s.data_bytes, 1500);
        assert!(s.sealed >= 1);
    }
}
