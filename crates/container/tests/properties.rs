//! Property-based tests for the container substrate.

use proptest::prelude::*;

use aadedupe_container::{
    store::compact_container_bytes, ContainerStore, ParsedContainer, SealedContainer,
};
use aadedupe_hashing::{Fingerprint, HashAlgorithm};

fn arb_chunks() -> impl Strategy<Value = Vec<(u32, Vec<u8>)>> {
    // (stream, bytes) pairs; chunk sizes span tiny to oversized.
    proptest::collection::vec(
        (0u32..3, proptest::collection::vec(any::<u8>(), 1..5000)),
        1..40,
    )
}

fn seal_all(store: &mut ContainerStore) -> Vec<SealedContainer> {
    store.seal_all();
    store.drain_sealed()
}

proptest! {
    /// Every chunk added to a store is recoverable from some sealed
    /// container at its reported placement, bit-exactly.
    #[test]
    fn placements_resolve(chunks in arb_chunks()) {
        let mut store = ContainerStore::new(4096);
        let mut placements = Vec::new();
        for (stream, bytes) in &chunks {
            let fp = Fingerprint::compute(HashAlgorithm::Sha1, bytes);
            let p = store.add_chunk(*stream, fp, bytes);
            placements.push((p, fp, bytes.clone()));
        }
        let mut sealed = seal_all(&mut store);
        sealed.sort_by_key(|s| s.id);
        for (p, fp, bytes) in placements {
            let sc = sealed
                .binary_search_by_key(&p.container, |s| s.id)
                .map_or_else(|_| panic!("container {} not sealed", p.container), |i| &sealed[i]);
            let parsed = ParsedContainer::parse(&sc.bytes).expect("parses");
            let d = parsed.descriptors.iter()
                .find(|d| d.offset == p.offset && d.fingerprint == fp)
                .expect("descriptor present");
            prop_assert_eq!(parsed.chunk_bytes(d), &bytes[..]);
            parsed.verify().expect("verifies");
        }
    }

    /// Sealed in-size containers are exactly the fixed size; oversized
    /// ones hold exactly one chunk, unpadded.
    #[test]
    fn sizes_and_padding(chunks in arb_chunks()) {
        let size = 4096usize;
        let mut store = ContainerStore::new(size);
        for (stream, bytes) in &chunks {
            let fp = Fingerprint::compute(HashAlgorithm::Md5, bytes);
            store.add_chunk(*stream, fp, bytes);
        }
        for sc in seal_all(&mut store) {
            if sc.bytes.len() > size {
                prop_assert_eq!(sc.chunks, 1, "oversized containers are single-chunk");
                prop_assert_eq!(sc.padding, 0);
            } else {
                prop_assert!(sc.chunks >= 1);
                prop_assert_eq!(sc.bytes.len() + sc.padding, size, "body + slot fill = fixed size");
            }
            ParsedContainer::parse(&sc.bytes).expect("sealed containers parse");
        }
    }

    /// Parsing never panics on arbitrary bytes; any prefix of a valid
    /// container that cuts into its *body* (header + descriptors + data)
    /// fails cleanly. Prefixes that only shave padding still parse — the
    /// body is self-delimiting and padding is semantically void.
    #[test]
    fn parser_total(garbage in proptest::collection::vec(any::<u8>(), 0..2000)) {
        let _ = ParsedContainer::parse(&garbage); // must not panic
        let mut store = ContainerStore::new(1024);
        store.add_chunk(0, Fingerprint::compute(HashAlgorithm::Sha1, &garbage), &garbage);
        let sealed = seal_all(&mut store);
        let bytes = &sealed[0].bytes;
        for n in 0..bytes.len() {
            prop_assert!(ParsedContainer::parse(&bytes[..n]).is_err(), "prefix {}", n);
        }
        prop_assert!(ParsedContainer::parse(bytes).is_ok());
    }

    /// Compaction keeps exactly the live chunks, verifiable, and the moves
    /// list matches the survivors.
    #[test]
    fn compaction_partition(chunks in arb_chunks(), keep_mask in any::<u64>()) {
        let mut store = ContainerStore::new(1 << 16);
        let mut fps = Vec::new();
        for (_, bytes) in &chunks {
            let fp = Fingerprint::compute(HashAlgorithm::Sha1, bytes);
            store.add_chunk(0, fp, bytes);
            fps.push(fp);
        }
        let sealed = seal_all(&mut store);
        for sc in sealed {
            let parsed = ParsedContainer::parse(&sc.bytes).unwrap();
            let live = |fp: &Fingerprint| {
                fps.iter().position(|f| f == fp).is_some_and(|i| keep_mask >> (i % 64) & 1 == 1)
            };
            let survivors: Vec<_> = parsed.descriptors.iter()
                .filter(|d| live(&d.fingerprint)).collect();
            match compact_container_bytes(&sc.bytes, &live, 999, 1 << 16).unwrap() {
                None => prop_assert!(survivors.is_empty()),
                Some((bytes, moves)) => {
                    prop_assert_eq!(moves.len(), survivors.len());
                    let re = ParsedContainer::parse(&bytes).unwrap();
                    re.verify().unwrap();
                    prop_assert_eq!(re.descriptors.len(), survivors.len());
                    for d in survivors {
                        prop_assert_eq!(
                            re.find(&d.fingerprint).unwrap(),
                            parsed.chunk_bytes(d)
                        );
                    }
                }
            }
        }
    }
}
