//! Sampler integration tests: bounded ring-buffer memory and delta-rate
//! correctness against a synthetically driven `Recorder`.
//!
//! The sampler's tick engine is deterministic given the recorder's state,
//! so these tests drive `SamplerCore::tick` with synthetic time and assert
//! exact per-interval deltas — no sleeps, no timing tolerance.

use std::sync::Arc;
use std::time::Duration;

use aadedupe_obs::{
    json, Counter, Queue, Recorder, Sampler, SamplerConfig, SamplerCore, Scope,
};

#[test]
fn ring_memory_stays_bounded_over_many_ticks() {
    let rec = Recorder::shared();
    let cfg = SamplerConfig { interval: Duration::from_millis(250), capacity: 32 };
    let mut core = SamplerCore::new(Arc::clone(&rec), Scope::session("bounded"), cfg);
    for i in 0..10_000u64 {
        rec.count(Counter::SourceBytes, 100);
        core.tick((i + 1) * 250, 250);
    }
    let series = core.into_series();
    assert_eq!(series.len(), 32, "ring holds exactly its capacity");
    assert_eq!(series.dropped(), 10_000 - 32, "evictions are counted");
    // Survivors are the newest ticks, sequence numbers intact.
    let seqs: Vec<u64> = series.iter().map(|s| s.seq).collect();
    let expected: Vec<u64> = (10_000 - 32..10_000).collect();
    assert_eq!(seqs, expected);
    // The export is honest about the truncation.
    let docs = json::parse_ndjson(&series.to_ndjson()).expect("NDJSON parses");
    assert_eq!(docs[0].get("dropped").as_u64(), Some(10_000 - 32));
    assert_eq!(docs.len(), 33, "header + capacity samples");
}

#[test]
fn delta_rates_match_a_synthetically_driven_recorder() {
    let rec = Recorder::shared();
    let mut core = SamplerCore::new(
        Arc::clone(&rec),
        Scope::session("rates"),
        SamplerConfig::default(),
    );
    // A scripted drive: (interval ms, source bytes, stored bytes, upload
    // bytes, restore retries) per interval.
    let script: [(u64, u64, u64, u64, u64); 4] = [
        (250, 1_000_000, 400_000, 500_000, 0),
        (500, 2_000_000, 0, 0, 3),
        (250, 0, 0, 250_000, 1),
        (125, 4_000_000, 4_000_000, 0, 0),
    ];
    let mut t = 0;
    for &(dt, src, stored, up, retries) in &script {
        rec.count(Counter::SourceBytes, src);
        rec.count(Counter::StoredBytes, stored);
        rec.count(Counter::UploadBytes, up);
        rec.count(Counter::RestoreRetries, retries);
        t += dt;
        core.tick(t, dt);
    }
    let series = core.into_series();
    let samples: Vec<_> = series.iter().collect();
    assert_eq!(samples.len(), script.len());
    let mut cum_src = 0;
    for (i, (s, &(dt, src, stored, up, retries))) in samples.iter().zip(&script).enumerate() {
        cum_src += src;
        assert_eq!(s.dt_ms, dt, "interval {i}");
        assert_eq!(s.source_bytes, src, "interval {i}");
        assert_eq!(s.stored_bytes, stored, "interval {i}");
        assert_eq!(s.upload_bytes, up, "interval {i}");
        assert_eq!(s.retries, retries, "interval {i}");
        assert_eq!(s.cum_source_bytes, cum_src, "interval {i}");
        // Rate is bytes scaled by the *measured* interval, not the nominal.
        let expect_bps = src as f64 * 1000.0 / dt as f64;
        assert!(
            (s.source_bps() - expect_bps).abs() < 1e-6,
            "interval {i}: {} != {expect_bps}",
            s.source_bps()
        );
    }
    // 1 MB over 250 ms is 4 MB/s, exactly.
    assert_eq!(samples[0].source_bps(), 4_000_000.0);
    // The long interval halves the rate despite double the bytes.
    assert_eq!(samples[1].source_bps(), 4_000_000.0);
    // The short interval at the end runs hot.
    assert_eq!(samples[3].source_bps(), 32_000_000.0);
}

#[test]
fn queue_depths_and_app_hit_rates_flow_into_samples() {
    let rec = Recorder::shared();
    let mut core = SamplerCore::new(
        Arc::clone(&rec),
        Scope::session("dims"),
        SamplerConfig::default(),
    );
    rec.label_app(7, "pdf");
    rec.label_app(2, "mp3");
    rec.queue_push(Queue::Jobs);
    rec.queue_push(Queue::Jobs);
    rec.queue_push(Queue::RestoreCache);
    for _ in 0..3 {
        rec.index_outcome(7, true);
    }
    rec.index_outcome(7, false);
    rec.index_outcome(2, false);
    core.tick(250, 250);
    rec.queue_pop(Queue::Jobs);
    rec.index_outcome(2, true);
    core.tick(500, 250);

    let series = core.into_series();
    let samples: Vec<_> = series.iter().collect();
    let jobs0 = samples[0].queues.iter().find(|q| q.queue == Queue::Jobs).expect("jobs gauge");
    assert_eq!((jobs0.depth, jobs0.hwm), (2, 2));
    let jobs1 = samples[1].queues.iter().find(|q| q.queue == Queue::Jobs).expect("jobs gauge");
    assert_eq!((jobs1.depth, jobs1.hwm), (1, 2), "depth drops, hwm is cumulative");
    let cache0 = samples[0]
        .queues
        .iter()
        .find(|q| q.queue == Queue::RestoreCache)
        .expect("restore cache gauge");
    assert_eq!(cache0.depth, 1, "restore-cache occupancy is sampled");

    // First interval: pdf 3/1, mp3 0/1. Second: only mp3 moved.
    let pdf = samples[0].apps.iter().find(|a| a.label == "pdf").expect("pdf traffic");
    assert_eq!((pdf.hits, pdf.misses), (3, 1));
    assert_eq!(pdf.hit_rate(), 0.75);
    assert!(samples[1].apps.iter().all(|a| a.label != "pdf"), "idle app absent from delta");
    let mp3 = samples[1].apps.iter().find(|a| a.label == "mp3").expect("mp3 traffic");
    assert_eq!((mp3.hits, mp3.misses), (1, 0));
}

#[test]
fn scoped_series_keys_carry_dimensions_into_the_export() {
    let rec = Recorder::shared();
    let scope = Scope::session("backup-00042").with_tenant("acme");
    let mut core = SamplerCore::new(Arc::clone(&rec), scope.clone(), SamplerConfig::default());
    rec.count(Counter::SourceBytes, 1);
    core.tick(250, 250);
    let series = core.into_series();
    assert_eq!(
        series.series_key("source_bps"),
        "session=backup-00042,tenant=acme|source_bps"
    );
    assert_eq!(
        scope.with_app("pdf").series_key("hit_rate"),
        "session=backup-00042,app=pdf,tenant=acme|hit_rate"
    );
    let docs = json::parse_ndjson(&series.to_ndjson()).expect("NDJSON parses");
    assert_eq!(docs[0].get("scope").get("session").as_str(), Some("backup-00042"));
    assert_eq!(docs[0].get("scope").get("tenant").as_str(), Some("acme"));
}

#[test]
fn enabling_the_recorder_after_spawn_does_not_resurrect_an_inert_sampler() {
    let rec = Recorder::shared_disabled();
    let sampler = Sampler::spawn(Arc::clone(&rec), Scope::session("latch"), SamplerConfig::default());
    assert!(sampler.is_inert());
    rec.enable();
    rec.count(Counter::SourceBytes, 42);
    assert_eq!(sampler.latest(), None, "enabled-after-spawn stays inert");
    assert!(sampler.stop().is_empty());
}
