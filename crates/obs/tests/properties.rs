//! Integration tests for the observability crate: bucket-edge exactness,
//! concurrent recording, snapshot-while-recording consistency, trace
//! well-formedness, and the zero-cost-when-disabled overhead guard.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use aadedupe_obs::{
    bucket_bounds, bucket_index, json, Counter, Queue, Recorder, Sampler, SamplerConfig, Scope,
    Stage, BUCKETS,
};

#[test]
fn histogram_bucket_boundaries_cover_the_u64_range() {
    // Exhaustive edge check: for every bucket, its lower bound maps in,
    // the value one below maps out, and the exclusive upper bound maps to
    // the next bucket.
    assert_eq!(bucket_index(0), 0);
    for b in 1..BUCKETS {
        let (lo, hi) = bucket_bounds(b);
        assert_eq!(bucket_index(lo), b, "lower bound of bucket {b}");
        assert_ne!(bucket_index(lo - 1), b, "value below bucket {b}");
        match hi {
            Some(hi) => {
                assert_eq!(bucket_index(hi - 1), b, "last value of bucket {b}");
                assert_eq!(bucket_index(hi), b + 1, "upper bound exits bucket {b}");
            }
            None => {
                assert_eq!(b, BUCKETS - 1, "only the last bucket is unbounded");
                assert_eq!(bucket_index(u64::MAX), b, "overflow bucket catches u64::MAX");
            }
        }
    }
    // Every power of two lands exactly one bucket above its predecessor
    // value, until the overflow bucket absorbs the rest.
    for p in 0..63u32 {
        let v = 1u64 << p;
        assert_eq!(bucket_index(v), ((p + 1) as usize).min(BUCKETS - 1), "2^{p}");
    }
}

#[test]
fn concurrent_counter_increments_from_eight_threads_are_exact() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;
    let rec = Recorder::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let rec = &rec;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    rec.count(Counter::ChunkBytes, 1);
                    rec.count(Counter::ChunksCdc, 2);
                    rec.index_outcome(3, (t as u64 + i).is_multiple_of(2));
                    rec.record_duration(Stage::Hash, Duration::from_nanos(i % 1024));
                }
            });
        }
    });
    let s = rec.snapshot();
    let n = (THREADS as u64) * PER_THREAD;
    assert_eq!(s.counter(Counter::ChunkBytes), n);
    assert_eq!(s.counter(Counter::ChunksCdc), 2 * n);
    assert_eq!(s.apps[0].hits + s.apps[0].misses, n);
    assert_eq!(s.stage(Stage::Hash).hist.count, n);
    assert_eq!(
        s.stage(Stage::Hash).hist.buckets.iter().sum::<u64>(),
        n,
        "histogram count equals bucket sum"
    );
}

#[test]
fn snapshots_taken_while_recording_are_internally_consistent() {
    // Writers hammer one histogram and counter; a reader takes snapshots
    // concurrently. Every snapshot must be internally consistent (count ==
    // bucket sum by construction) and monotonically non-decreasing.
    let rec = Recorder::new();
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let rec = &rec;
            let stop = &stop;
            scope.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    rec.record_duration(Stage::Chunk, Duration::from_nanos(i % 4096));
                    rec.count(Counter::ChunkBytes, 1);
                    i += 1;
                }
            });
        }
        let rec = &rec;
        let stop = &stop;
        scope.spawn(move || {
            let mut last_count = 0u64;
            let mut last_counter = 0u64;
            for _ in 0..200 {
                let s = rec.snapshot();
                let h = &s.stage(Stage::Chunk).hist;
                assert_eq!(h.count, h.buckets.iter().sum::<u64>());
                assert!(h.count >= last_count, "histogram count went backwards");
                let c = s.counter(Counter::ChunkBytes);
                assert!(c >= last_counter, "counter went backwards");
                last_count = h.count;
                last_counter = c;
            }
            stop.store(true, Ordering::Relaxed);
        });
    });
}

/// Regression test for queue-gauge underflow: pops racing ahead of their
/// matching pushes (a legal interleaving when producer and consumer report
/// from different threads) must saturate the gauge at zero — never wrap to
/// 2^64-1 — and be counted in the underflow diagnostic.
#[test]
fn queue_pop_on_empty_gauge_saturates_at_zero() {
    // Deterministic single-threaded shape first: pop before any push.
    let rec = Recorder::new();
    rec.queue_pop(Queue::Shards);
    rec.queue_pop(Queue::Shards);
    rec.queue_push(Queue::Shards);
    let q = rec.snapshot().queue(Queue::Shards);
    assert_eq!(q.depth, 1, "pushes after spurious pops still count from zero");
    assert_eq!(q.underflow, 2, "both empty pops recorded");

    // Concurrent mismatched ordering: poppers run unsynchronized against
    // pushers, so some pops observe an empty gauge. Whatever the
    // interleaving, depth must end at exactly pushes - matched pops and
    // never wrap negative.
    const OPS: u64 = 10_000;
    let rec = Recorder::new();
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let rec = &rec;
            scope.spawn(move || {
                for _ in 0..OPS {
                    rec.queue_push(Queue::Jobs);
                }
            });
            scope.spawn(move || {
                for _ in 0..OPS {
                    rec.queue_pop(Queue::Jobs);
                }
            });
        }
    });
    let q = rec.snapshot().queue(Queue::Jobs);
    // pushes = 2*OPS; pops that found the gauge non-empty = 2*OPS - underflow.
    assert_eq!(q.depth, q.underflow, "depth = pushes - (pops - underflow)");
    assert!(q.depth < u64::MAX / 2, "gauge never wrapped negative");
}

#[test]
fn queue_gauges_track_high_water_marks_under_contention() {
    let rec = Recorder::new();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let rec = &rec;
            scope.spawn(move || {
                for _ in 0..1000 {
                    rec.queue_push(Queue::Appender);
                    rec.queue_pop(Queue::Appender);
                }
            });
        }
    });
    let q = rec.snapshot().queue(Queue::Appender);
    assert_eq!(q.depth, 0, "all pushes matched by pops");
    assert!(q.hwm >= 1 && q.hwm <= 4, "hwm bounded by concurrency, got {}", q.hwm);
}

#[test]
fn ndjson_trace_events_are_well_formed() {
    let rec = Recorder::new();
    rec.enable_tracing();
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let rec = &rec;
            scope.spawn(move || {
                for name in ["chunk_hash", "dedupe", "upload"] {
                    let t = rec.trace_start();
                    rec.trace_complete(name, t);
                }
            });
        }
    });
    let mut buf = Vec::new();
    rec.write_trace_ndjson(&mut buf).unwrap();
    let text = String::from_utf8(buf).expect("trace output is UTF-8");
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(lines.len(), 9);
    let mut last_ts = 0.0f64;
    for line in lines {
        let ev = json::parse(line).expect("each NDJSON line parses");
        assert_eq!(ev.get("ph").as_str(), Some("X"), "complete events only");
        assert!(ev.get("ts").as_f64().unwrap() >= last_ts, "events ordered by start");
        assert!(ev.get("dur").as_f64().unwrap() >= 0.0);
        assert!(ev.get("tid").as_u64().unwrap() < 3);
        assert!(matches!(
            ev.get("name").as_str(),
            Some("chunk_hash" | "dedupe" | "upload")
        ));
        last_ts = ev.get("ts").as_f64().unwrap();
    }
    assert!(rec.drain_trace().is_empty(), "write drains the buffer");
}

/// The zero-cost guard: the disabled recorder's entire API surface must
/// cost no more than a few relaxed atomic loads per call. The budget is
/// deliberately generous (500 ns per iteration of SEVEN recording calls,
/// ~100× the expected cost in a release build) so the guard only trips on
/// a real regression — an accidental mutex, clock read, or allocation on
/// the disabled path — not on a noisy CI machine.
#[test]
fn overhead_guard() {
    let rec = Recorder::shared_disabled();
    // The sampler is compiled in and attached, but the recorder is
    // disabled: spawn must cost one relaxed load, start no thread, and
    // leave the budget below untouched.
    let sampler = Sampler::spawn(
        std::sync::Arc::clone(&rec),
        Scope::session("overhead-guard"),
        SamplerConfig::default(),
    );
    assert!(sampler.is_inert(), "disabled recorder must yield an inert sampler");
    const ITERS: u64 = 1_000_000;
    // Warm-up pass so lazy init / cache effects don't bill the timed loop.
    for _ in 0..10_000 {
        rec.record(Stage::Chunk, rec.start());
    }
    let t = Instant::now();
    for i in 0..ITERS {
        let s = rec.start();
        rec.record(Stage::Chunk, s);
        rec.record_duration(Stage::Hash, Duration::from_nanos(i));
        rec.count(Counter::ChunkBytes, i);
        rec.index_outcome((i % 13) as u8, i % 2 == 0);
        rec.queue_push(Queue::Jobs);
        rec.queue_pop(Queue::Jobs);
        rec.trace_complete("noop", rec.trace_start());
    }
    let per_iter = t.elapsed().as_nanos() as f64 / ITERS as f64;
    assert!(
        per_iter < 500.0,
        "disabled recorder costs {per_iter:.0} ns per 7-call iteration (budget 500 ns)"
    );
    // And it really recorded nothing — recorder and sampler alike.
    let s = rec.snapshot();
    assert_eq!(s.stage(Stage::Chunk).hist.count, 0);
    assert_eq!(s.counter(Counter::ChunkBytes), 0);
    assert!(sampler.stop().is_empty(), "inert sampler sampled nothing");
}
