//! Property tests for the `obs::json` reader on malformed and truncated
//! input: parsing must never panic, and every failure must surface as the
//! typed `ParseError` / `NdjsonError` — byte offsets in range, no
//! `unwrap`-style aborts — because CI tooling feeds this parser artifacts
//! from failed runs, which are truncated by construction.

use proptest::prelude::*;

use aadedupe_obs::json::{self, Value};

/// A generator biased toward JSON-looking garbage: structural characters,
/// quotes, digits, escapes, and raw control bytes.
fn jsonish() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('{'),
            Just('}'),
            Just('['),
            Just(']'),
            Just('"'),
            Just(','),
            Just(':'),
            Just('\\'),
            Just('.'),
            Just('-'),
            Just('e'),
            Just('t'),
            Just('n'),
            Just('0'),
            Just('9'),
            Just(' '),
            Just('\n'),
            Just('\u{1}'),
            Just('é'),
        ],
        0..64,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    /// Arbitrary garbage: parse returns Ok or a typed error, never panics,
    /// and error offsets stay within the input.
    #[test]
    fn arbitrary_input_never_panics(input in jsonish()) {
        match json::parse(&input) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(e.at <= input.len(), "offset {} out of range {}", e.at, input.len());
                prop_assert!(!e.msg.is_empty());
                // The error is a real std::error::Error with a Display.
                let shown = format!("{e}");
                prop_assert!(shown.contains("byte"));
            }
        }
    }

    /// Every prefix of a valid document either parses or fails typed —
    /// truncation at any byte boundary must be safe.
    #[test]
    fn truncation_is_safe_at_every_boundary(
        n in 0usize..200,
    ) {
        let full = r#"{"schema_version": 2, "stages": {"chunk": {"count": 3, "buckets": [[1, 2]]}}, "label": "caf\u00e9 – x", "neg": -1.5e3, "t": true, "nil": null}"#;
        let cut = full.char_indices().map(|(i, _)| i).take_while(|&i| i <= n).last().unwrap_or(0);
        let prefix = &full[..cut];
        match json::parse(prefix) {
            Ok(v) => prop_assert!(matches!(v, Value::Obj(_)) || prefix.is_empty()),
            Err(e) => prop_assert!(e.at <= prefix.len()),
        }
    }

    /// NDJSON streams with a corrupted line report the 1-based line number
    /// of the failure and never panic.
    #[test]
    fn ndjson_errors_carry_line_numbers(
        good_lines in 0usize..5,
        garbage in jsonish(),
    ) {
        let mut text = String::new();
        for i in 0..good_lines {
            text.push_str(&format!("{{\"seq\": {i}}}\n"));
        }
        text.push_str(&garbage);
        text.push('\n');
        match json::parse_ndjson(&text) {
            Ok(docs) => prop_assert!(docs.len() >= good_lines),
            Err(e) => {
                prop_assert!(e.line >= 1 && e.line <= good_lines + garbage.lines().count().max(1),
                    "line {} outside stream", e.line);
                prop_assert!(format!("{e}").contains("NDJSON line"));
            }
        }
    }
}

/// Deterministic spot checks for shapes the fuzz strategies may not hit.
#[test]
fn pathological_documents_fail_typed() {
    for bad in [
        "",
        "{",
        "}",
        "[[[[[[[[",
        "\"\\u12",
        "\"\\u12zz\"",
        "\"\\udc00\"",
        "{\"a\":}",
        "{\"a\" \"b\"}",
        "[1 2]",
        "nul",
        "-",
        "1e",
        "\u{1}",
        "{\"k\": \"\u{1}\"}",
    ] {
        match json::parse(bad) {
            Ok(v) => panic!("{bad:?} unexpectedly parsed to {v:?}"),
            Err(e) => assert!(e.at <= bad.len(), "{bad:?}: offset out of range"),
        }
    }
}

/// Unknown keys are tolerated by construction: readers navigate with
/// `get`, which returns `Null` for absent members and ignores extras.
#[test]
fn unknown_keys_are_tolerated() {
    let doc = json::parse(
        r#"{"schema_version": 99, "future_field": {"nested": [1, 2]}, "counters": {"chunk_bytes": 7}}"#,
    )
    .expect("document with unknown keys parses");
    assert_eq!(doc.get("counters").get("chunk_bytes").as_u64(), Some(7));
    assert_eq!(doc.get("not_there"), &Value::Null);
    assert_eq!(doc.get("future_field").get("nested").at(1).as_u64(), Some(2));
}
