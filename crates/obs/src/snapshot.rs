//! Point-in-time metric snapshots and their export formats.
//!
//! A [`Snapshot`] is a plain-data copy of a
//! [`Recorder`](crate::Recorder)'s state. Two exports:
//!
//! * [`Snapshot::to_json`] — the machine-readable `--stats-json` document
//!   (top-level keys `stages`, `counters`, `apps`, `queues`, `workers`);
//! * [`Snapshot::render_table`] — the human `--stats` table.
//!
//! Snapshots also subtract ([`Snapshot::delta_since`]), which is how the
//! engine turns lifetime-cumulative histograms into per-session stage
//! times.

use crate::hist::HistogramSnapshot;
use crate::{Counter, Queue, Stage, WorkerRole};
use std::time::Duration;

/// Version of the `--stats-json` document layout. History:
///
/// * 1 — PR 2's original document (no version field).
/// * 2 — adds `schema_version`, per-queue `underflow`, and the
///   `source_bytes` / `stored_bytes` / `restored_bytes` counters.
///
/// Consumers must tolerate unknown keys (the `obs::json` reader does by
/// construction: unknown members are simply never asked for), so additive
/// changes do not bump the version; removals or retypings do.
pub const STATS_SCHEMA_VERSION: u32 = 2;

/// One stage's histogram at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Which stage.
    pub stage: Stage,
    /// Its latency histogram.
    pub hist: HistogramSnapshot,
}

/// One application partition's index hit/miss counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppIndexSnapshot {
    /// Application tag (see `aadedupe-filetype`).
    pub tag: u8,
    /// Registered label, or `app_NN` when unlabelled.
    pub label: String,
    /// Lookups that found the fingerprint.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
}

/// One queue gauge: instantaneous depth plus high-water mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueSnapshot {
    /// Which queue.
    pub queue: Queue,
    /// Depth at snapshot time (0 between sessions).
    pub depth: u64,
    /// Highest depth ever observed.
    pub hwm: u64,
    /// Pops observed while the gauge was already at zero (the gauge
    /// saturates instead of going negative).
    pub underflow: u64,
}

/// One pipeline thread's busy/idle split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// Thread role.
    pub role: WorkerRole,
    /// Index within the role (worker 0..N, shard = app tag index).
    pub id: usize,
    /// Time spent processing, nanoseconds.
    pub busy_ns: u64,
    /// Time spent blocked on a channel, nanoseconds.
    pub idle_ns: u64,
}

impl WorkerSnapshot {
    /// Busy fraction of the thread's observed lifetime (0 when idle+busy
    /// is zero).
    pub fn utilization(&self) -> f64 {
        let total = self.busy_ns + self.idle_ns;
        if total == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total as f64
        }
    }
}

/// A plain-data copy of every metric a recorder holds.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Every stage, in dataflow order (present even when empty).
    pub stages: Vec<StageSnapshot>,
    /// Every counter.
    pub counters: Vec<(Counter, u64)>,
    /// Per-application index hit/miss counts (only apps with traffic).
    pub apps: Vec<AppIndexSnapshot>,
    /// Queue gauges.
    pub queues: Vec<QueueSnapshot>,
    /// Pipeline thread busy/idle reports.
    pub workers: Vec<WorkerSnapshot>,
}

impl Snapshot {
    /// The snapshot of one stage.
    pub fn stage(&self, s: Stage) -> &StageSnapshot {
        // aalint: allow(unwrap-in-lib) -- Recorder::snapshot constructs one entry per Stage variant; absence is a construction bug, not an input error
        self.stages.iter().find(|x| x.stage == s).expect("all stages present")
    }

    /// Total recorded time in one stage.
    pub fn stage_total(&self, s: Stage) -> Duration {
        Duration::from_nanos(self.stage(s).hist.total_ns)
    }

    /// One counter's value.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.iter().find(|(x, _)| *x == c).map_or(0, |(_, v)| *v)
    }

    /// One queue's gauge.
    pub fn queue(&self, q: Queue) -> QueueSnapshot {
        // aalint: allow(unwrap-in-lib) -- Recorder::snapshot constructs one entry per Queue variant; absence is a construction bug, not an input error
        *self.queues.iter().find(|x| x.queue == q).expect("all queues present")
    }

    /// Sum of index hits across all applications.
    pub fn index_hits(&self) -> u64 {
        self.apps.iter().map(|a| a.hits).sum()
    }

    /// Sum of index misses across all applications.
    pub fn index_misses(&self) -> u64 {
        self.apps.iter().map(|a| a.misses).sum()
    }

    /// The growth of this snapshot relative to an earlier one from the
    /// same recorder: histogram counts/totals, counters, and hit/miss
    /// counts subtract; queue high-water marks and worker reports keep the
    /// later (cumulative) values.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let stages = self
            .stages
            .iter()
            .map(|s| {
                let e = &earlier.stage(s.stage).hist;
                StageSnapshot {
                    stage: s.stage,
                    hist: HistogramSnapshot {
                        count: s.hist.count.saturating_sub(e.count),
                        total_ns: s.hist.total_ns.saturating_sub(e.total_ns),
                        max_ns: s.hist.max_ns,
                        buckets: s
                            .hist
                            .buckets
                            .iter()
                            .zip(&e.buckets)
                            .map(|(a, b)| a.saturating_sub(*b))
                            .collect(),
                    },
                }
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|&(c, v)| (c, v.saturating_sub(earlier.counter(c))))
            .collect();
        let apps = self
            .apps
            .iter()
            .map(|a| {
                let e = earlier.apps.iter().find(|x| x.tag == a.tag);
                AppIndexSnapshot {
                    tag: a.tag,
                    label: a.label.clone(),
                    hits: a.hits.saturating_sub(e.map_or(0, |x| x.hits)),
                    misses: a.misses.saturating_sub(e.map_or(0, |x| x.misses)),
                }
            })
            .filter(|a| a.hits > 0 || a.misses > 0)
            .collect();
        Snapshot {
            stages,
            counters,
            apps,
            queues: self.queues.clone(),
            workers: self.workers.clone(),
        }
    }

    /// The machine-readable JSON document (`--stats-json`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!("{{\n  \"schema_version\": {STATS_SCHEMA_VERSION},\n  \"stages\": {{"));
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"mean_ns\": {:.1}, \"max_ns\": {}, \"buckets\": [",
                s.stage.name(),
                s.hist.count,
                s.hist.total_ns,
                s.hist.mean_ns(),
                s.hist.max_ns
            ));
            for (j, (bucket, n)) in s.hist.occupied().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{bucket}, {n}]"));
            }
            out.push_str("]}");
        }
        out.push_str("\n  },\n  \"counters\": {");
        for (i, (c, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {v}", c.name()));
        }
        out.push_str("\n  },\n  \"apps\": {");
        for (i, a) in self.apps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"tag\": {}, \"hits\": {}, \"misses\": {}}}",
                a.label, a.tag, a.hits, a.misses
            ));
        }
        out.push_str("\n  },\n  \"queues\": {");
        for (i, q) in self.queues.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"depth\": {}, \"hwm\": {}, \"underflow\": {}}}",
                q.queue.name(),
                q.depth,
                q.hwm,
                q.underflow
            ));
        }
        out.push_str("\n  },\n  \"workers\": [");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"role\": \"{}\", \"id\": {}, \"busy_ns\": {}, \"idle_ns\": {}, \"utilization\": {:.4}}}",
                w.role.name(),
                w.id,
                w.busy_ns,
                w.idle_ns,
                w.utilization()
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// The human-readable `--stats` table.
    pub fn render_table(&self) -> String {
        fn ms(ns: u64) -> String {
            format!("{:.2}", ns as f64 / 1e6)
        }
        let mut out = String::new();
        out.push_str("stage                 count   total_ms      mean_us     max_us\n");
        for s in &self.stages {
            if s.hist.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<18} {:>8}  {:>9}  {:>11.1}  {:>9.1}\n",
                s.stage.name(),
                s.hist.count,
                ms(s.hist.total_ns),
                s.hist.mean_ns() / 1e3,
                s.hist.max_ns as f64 / 1e3,
            ));
        }
        if !self.apps.is_empty() {
            out.push_str("\nindex partition      hits     misses   hit-rate\n");
            for a in &self.apps {
                let total = a.hits + a.misses;
                out.push_str(&format!(
                    "{:<16} {:>8}  {:>9}  {:>8.1}%\n",
                    a.label,
                    a.hits,
                    a.misses,
                    if total == 0 { 0.0 } else { 100.0 * a.hits as f64 / total as f64 }
                ));
            }
        }
        let active: Vec<&QueueSnapshot> = self.queues.iter().filter(|q| q.hwm > 0).collect();
        if !active.is_empty() {
            out.push_str("\nqueue        high-water\n");
            for q in active {
                out.push_str(&format!("{:<10} {:>11}\n", q.queue.name(), q.hwm));
            }
        }
        if !self.workers.is_empty() {
            out.push_str("\nthread           busy_ms    idle_ms   utilization\n");
            for w in &self.workers {
                out.push_str(&format!(
                    "{:<12} {:>11} {:>10}  {:>11.1}%\n",
                    format!("{}/{}", w.role.name(), w.id),
                    ms(w.busy_ns),
                    ms(w.idle_ns),
                    100.0 * w.utilization()
                ));
            }
        }
        let sealed = self.counter(Counter::ContainersSealed);
        let uploaded = self.counter(Counter::UploadBytes);
        out.push_str(&format!(
            "\ncontainers sealed {sealed}, uploaded {uploaded} bytes in {} objects\n",
            self.counter(Counter::UploadObjects)
        ));
        out.push_str(&format!(
            "upload retries {}, give-ups {}\n",
            self.counter(Counter::UploadRetries),
            self.counter(Counter::UploadGiveups)
        ));
        out.push_str(&format!(
            "restore retries {}, give-ups {}\n",
            self.counter(Counter::RestoreRetries),
            self.counter(Counter::RestoreGiveups)
        ));
        let orphans = self.counter(Counter::OrphansSwept);
        if orphans > 0 {
            out.push_str(&format!("orphaned containers swept {orphans}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{json, Recorder};

    #[test]
    fn json_export_parses_and_has_all_sections() {
        let r = Recorder::new();
        r.record_duration(Stage::Chunk, Duration::from_micros(10));
        r.count(Counter::ChunksCdc, 1);
        r.label_app(7, "pdf");
        r.index_outcome(7, true);
        r.queue_push(Queue::Jobs);
        r.worker_report(WorkerRole::Chunker, 0, Duration::from_millis(1), Duration::ZERO);
        let doc = json::parse(&r.snapshot().to_json()).expect("snapshot JSON parses");
        assert_eq!(doc.get("schema_version").as_u64(), Some(u64::from(STATS_SCHEMA_VERSION)));
        for stage in Stage::ALL {
            assert!(
                doc.get("stages").get(stage.name()).get("count").as_u64().is_some(),
                "missing stage {}",
                stage.name()
            );
        }
        assert_eq!(doc.get("counters").get("chunks_cdc").as_u64(), Some(1));
        assert_eq!(doc.get("apps").get("pdf").get("hits").as_u64(), Some(1));
        assert_eq!(doc.get("queues").get("jobs").get("hwm").as_u64(), Some(1));
        assert_eq!(doc.get("workers").at(0).get("role").as_str(), Some("chunker"));
    }

    #[test]
    fn delta_subtracts_counters_and_histograms() {
        let r = Recorder::new();
        r.record_duration(Stage::Hash, Duration::from_micros(5));
        r.count(Counter::UploadBytes, 100);
        r.index_outcome(3, false);
        let before = r.snapshot();
        r.record_duration(Stage::Hash, Duration::from_micros(7));
        r.count(Counter::UploadBytes, 50);
        r.index_outcome(3, false);
        r.index_outcome(3, true);
        let delta = r.snapshot().delta_since(&before);
        assert_eq!(delta.stage(Stage::Hash).hist.count, 1);
        assert_eq!(delta.stage(Stage::Hash).hist.total_ns, 7_000);
        assert_eq!(delta.counter(Counter::UploadBytes), 50);
        assert_eq!(delta.apps[0].hits, 1);
        assert_eq!(delta.apps[0].misses, 1);
    }

    #[test]
    fn table_renders_non_empty_sections() {
        let r = Recorder::new();
        r.record_duration(Stage::Index, Duration::from_micros(2));
        r.label_app(1, "avi");
        r.index_outcome(1, false);
        let table = r.snapshot().render_table();
        assert!(table.contains("index"));
        assert!(table.contains("avi"));
        assert!(table.contains("hit-rate"));
    }
}
