//! Background sampler: periodic delta-snapshots of a [`Recorder`] into a
//! bounded [`TimeSeries`].
//!
//! The sampler graduates observability from post-mortem aggregates to live
//! signals: every tick it snapshots the recorder, subtracts the previous
//! snapshot, and pushes one [`SamplePoint`] carrying per-interval byte
//! deltas (→ throughput), queue depths + high-water, retry counts, and
//! per-application index hit-rates. Ticks are [`Instant`]-based — no wall
//! clock — and all timing lives here in `obs`, outside the
//! dedup-decision crates.
//!
//! Two layers:
//!
//! * [`SamplerCore`] — the pure tick engine. `tick(t_ms, dt_ms)` is
//!   deterministic given the recorder's state, so tests drive it manually
//!   with synthetic time and assert exact deltas with no timing races.
//! * [`Sampler`] — [`SamplerCore`] plus the background thread. When the
//!   recorder is disabled, [`Sampler::spawn`] checks one relaxed load and
//!   returns an inert handle: no thread, no allocation beyond the empty
//!   struct, nothing for the hot path to pay (the `overhead_guard` test
//!   runs with an inert sampler attached to prove it).

use crate::series::{AppInterval, QueuePoint, SamplePoint, Scope, TimeSeries};
use crate::snapshot::Snapshot;
use crate::{Counter, Queue, Recorder};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sampler tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Nominal tick interval. Default 250ms.
    pub interval: Duration,
    /// Ring capacity in samples. Default 4096 (~17 minutes at 250ms);
    /// older samples are evicted and counted, never reallocated.
    pub capacity: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig { interval: Duration::from_millis(250), capacity: 4096 }
    }
}

/// The deterministic tick engine: snapshot → delta → sample.
///
/// Holds the previous snapshot and running byte totals; callers supply the
/// clock (`t_ms`, `dt_ms`), which is what makes delta-rate tests exact.
#[derive(Debug)]
pub struct SamplerCore {
    rec: Arc<Recorder>,
    prev: Snapshot,
    series: TimeSeries,
    cum_source: u64,
    cum_stored: u64,
    cum_restored: u64,
    seq: u64,
}

impl SamplerCore {
    /// A core whose baseline is the recorder's state right now: the first
    /// tick reports only activity after this call.
    pub fn new(rec: Arc<Recorder>, scope: Scope, cfg: SamplerConfig) -> SamplerCore {
        let prev = rec.snapshot();
        let interval_ms = u64::try_from(cfg.interval.as_millis()).unwrap_or(u64::MAX);
        SamplerCore {
            rec,
            prev,
            series: TimeSeries::new(scope, interval_ms, cfg.capacity),
            cum_source: 0,
            cum_stored: 0,
            cum_restored: 0,
            seq: 0,
        }
    }

    /// Takes one sample at `t_ms` (ms since the sampler's epoch) covering
    /// the last `dt_ms`, and pushes it onto the series.
    pub fn tick(&mut self, t_ms: u64, dt_ms: u64) {
        let now = self.rec.snapshot();
        let delta = now.delta_since(&self.prev);
        let source = delta.counter(Counter::SourceBytes);
        let stored = delta.counter(Counter::StoredBytes);
        let restored = delta.counter(Counter::RestoredBytes);
        self.cum_source += source;
        self.cum_stored += stored;
        self.cum_restored += restored;
        let sample = SamplePoint {
            seq: self.seq,
            t_ms,
            dt_ms,
            source_bytes: source,
            stored_bytes: stored,
            upload_bytes: delta.counter(Counter::UploadBytes),
            restored_bytes: restored,
            retries: delta.counter(Counter::UploadRetries)
                + delta.counter(Counter::RestoreRetries),
            cum_source_bytes: self.cum_source,
            cum_stored_bytes: self.cum_stored,
            cum_restored_bytes: self.cum_restored,
            queues: Queue::ALL
                .iter()
                .map(|&q| {
                    let g = now.queue(q);
                    QueuePoint { queue: q, depth: g.depth, hwm: g.hwm }
                })
                .collect(),
            apps: delta
                .apps
                .iter()
                .map(|a| AppInterval {
                    tag: a.tag,
                    label: a.label.clone(),
                    hits: a.hits,
                    misses: a.misses,
                })
                .collect(),
        };
        self.seq += 1;
        self.series.push(sample);
        self.prev = now;
    }

    /// The series accumulated so far.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Consumes the core, yielding its series.
    pub fn into_series(self) -> TimeSeries {
        self.series
    }
}

/// Handle to a running (or inert) background sampler.
///
/// Dropping without [`Sampler::stop`] detaches the thread; it parks on the
/// stop flag's `Arc` and exits at the next tick slice, so an early-exit
/// CLI path cannot hang on it. Call `stop()` to get the series back.
#[derive(Debug)]
pub struct Sampler {
    inner: Option<Running>,
    scope: Scope,
    interval_ms: u64,
}

#[derive(Debug)]
struct Running {
    stop: Arc<AtomicBool>,
    core: Arc<Mutex<SamplerCore>>,
    handle: JoinHandle<()>,
}

/// Sleep in slices this long so `stop()` latency stays low even with a
/// long sampling interval.
const SLICE: Duration = Duration::from_millis(20);

impl Sampler {
    /// Spawns the sampling thread against `rec`.
    ///
    /// When the recorder is disabled this is one relaxed load and an inert
    /// handle — no thread, no baseline snapshot, nothing sampled;
    /// [`Sampler::stop`] then returns an empty series. The recorder's
    /// enabled state is latched at spawn: enabling it later does not start
    /// a sampler retroactively.
    pub fn spawn(rec: Arc<Recorder>, scope: Scope, cfg: SamplerConfig) -> Sampler {
        let interval_ms = u64::try_from(cfg.interval.as_millis()).unwrap_or(u64::MAX);
        if !rec.is_enabled() {
            return Sampler { inner: None, scope, interval_ms };
        }
        let interval = cfg.interval.max(Duration::from_millis(1));
        let core = Arc::new(Mutex::new(SamplerCore::new(rec, scope.clone(), cfg)));
        let stop = Arc::new(AtomicBool::new(false));
        let thread_core = Arc::clone(&core);
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("obs-sampler".into())
            .spawn(move || run_loop(&thread_core, &thread_stop, interval))
            // aalint: allow(unwrap-in-lib) -- thread spawn fails only on OS
            // resource exhaustion; observability cannot degrade gracefully
            // past "no threads left" and the engine would be failing too
            .expect("spawn obs-sampler thread");
        Sampler { inner: Some(Running { stop, core, handle }), scope, interval_ms }
    }

    /// Whether this handle is inert (recorder was disabled at spawn).
    pub fn is_inert(&self) -> bool {
        self.inner.is_none()
    }

    /// A cheap cloneable probe another thread can poll for the newest
    /// sample (e.g. a live progress renderer) while this handle stays with
    /// the owner. Probes from an inert sampler always return `None`.
    pub fn probe(&self) -> SamplerProbe {
        SamplerProbe { core: self.inner.as_ref().map(|r| Arc::clone(&r.core)) }
    }

    /// The newest sample, cloned out of the running series (None while
    /// inert or before the first tick).
    pub fn latest(&self) -> Option<SamplePoint> {
        let running = self.inner.as_ref()?;
        let core = running.core.lock().unwrap_or_else(PoisonError::into_inner);
        core.series().latest().cloned()
    }

    /// Stops the thread, takes one final partial-interval sample so tail
    /// activity is never lost, and returns the full series.
    pub fn stop(mut self) -> TimeSeries {
        let Some(running) = self.inner.take() else {
            return TimeSeries::new(self.scope.clone(), self.interval_ms, 1);
        };
        running.stop.store(true, Relaxed);
        // aalint: allow(unwrap-in-lib) -- join propagates a sampler-thread
        // panic; the loop body only locks and snapshots, so a panic there
        // is a bug worth surfacing, not an input error
        running.handle.join().expect("obs-sampler thread panicked");
        let core = Arc::try_unwrap(running.core).map_or_else(
            |arc| {
                // The thread has exited, but clone defensively if another
                // handle still holds the Arc.
                let guard = arc.lock().unwrap_or_else(PoisonError::into_inner);
                guard.series().clone()
            },
            |mutex| mutex.into_inner().unwrap_or_else(PoisonError::into_inner).into_series(),
        );
        core
    }
}

/// A cloneable read-only view of a running sampler's newest sample.
#[derive(Debug, Clone)]
pub struct SamplerProbe {
    core: Option<Arc<Mutex<SamplerCore>>>,
}

impl SamplerProbe {
    /// The newest sample (None while inert or before the first tick).
    pub fn latest(&self) -> Option<SamplePoint> {
        let core = self.core.as_ref()?;
        let guard = core.lock().unwrap_or_else(PoisonError::into_inner);
        guard.series().latest().cloned()
    }
}

/// The thread body: tick every `interval`, sleeping in [`SLICE`] pieces so
/// stop latency is bounded, then take one final partial tick on shutdown.
fn run_loop(core: &Arc<Mutex<SamplerCore>>, stop: &Arc<AtomicBool>, interval: Duration) {
    let epoch = Instant::now();
    let mut last = Duration::ZERO;
    let mut next = interval;
    loop {
        let stopping = loop {
            if stop.load(Relaxed) {
                break true;
            }
            let elapsed = epoch.elapsed();
            if elapsed >= next {
                break false;
            }
            std::thread::sleep(SLICE.min(next - elapsed));
        };
        let now = epoch.elapsed();
        let t_ms = u64::try_from(now.as_millis()).unwrap_or(u64::MAX);
        let dt_ms = u64::try_from((now - last).as_millis()).unwrap_or(u64::MAX);
        if !stopping || dt_ms > 0 {
            let mut guard = core.lock().unwrap_or_else(PoisonError::into_inner);
            guard.tick(t_ms, dt_ms);
        }
        if stopping {
            return;
        }
        last = now;
        next += interval;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_on_disabled_recorder_is_inert() {
        let rec = Recorder::shared_disabled();
        let s = Sampler::spawn(rec, Scope::session("off"), SamplerConfig::default());
        assert!(s.is_inert());
        assert_eq!(s.latest(), None);
        let series = s.stop();
        assert!(series.is_empty());
        assert_eq!(series.scope().session, "off");
    }

    #[test]
    fn core_tick_reports_exact_deltas() {
        let rec = Recorder::shared();
        rec.count(Counter::SourceBytes, 500);
        let mut core =
            SamplerCore::new(Arc::clone(&rec), Scope::session("t"), SamplerConfig::default());
        // Baseline taken after the 500 above: first tick must not see it.
        rec.count(Counter::SourceBytes, 2_000);
        rec.count(Counter::StoredBytes, 800);
        rec.count(Counter::UploadRetries, 3);
        rec.label_app(7, "pdf");
        rec.index_outcome(7, true);
        rec.index_outcome(7, false);
        core.tick(250, 250);
        rec.count(Counter::SourceBytes, 1_000);
        core.tick(500, 250);
        let s0 = core.series().iter().next().expect("first sample").clone();
        assert_eq!(s0.source_bytes, 2_000);
        assert_eq!(s0.stored_bytes, 800);
        assert_eq!(s0.retries, 3);
        assert_eq!(s0.source_bps(), 8_000.0);
        assert_eq!(s0.apps.len(), 1);
        assert_eq!((s0.apps[0].hits, s0.apps[0].misses), (1, 1));
        let s1 = core.series().latest().expect("second sample");
        assert_eq!(s1.source_bytes, 1_000);
        assert_eq!(s1.cum_source_bytes, 3_000);
        assert!(s1.apps.is_empty(), "no app traffic in second interval");
    }

    #[test]
    fn background_sampler_captures_tail_on_stop() {
        let rec = Recorder::shared();
        let cfg = SamplerConfig { interval: Duration::from_secs(3600), capacity: 16 };
        let s = Sampler::spawn(Arc::clone(&rec), Scope::session("tail"), cfg);
        assert!(!s.is_inert());
        rec.count(Counter::SourceBytes, 4_096);
        // Interval is an hour; the final partial tick on stop must still
        // capture the bytes counted above.
        std::thread::sleep(Duration::from_millis(5));
        let series = s.stop();
        assert!(!series.is_empty());
        let total: u64 = series.iter().map(|p| p.source_bytes).sum();
        assert_eq!(total, 4_096);
    }
}
