#![forbid(unsafe_code)]
//! Observability for the AA-Dedupe pipeline — std-only, zero-cost when
//! disabled.
//!
//! The backup engine's per-session [`SessionReport`] aggregates say *what*
//! a session cost; this crate says *where*: per-stage latency histograms
//! (classify / chunk / hash / index / container / upload), per-application
//! index hit/miss counters, pipeline worker busy/idle time, and channel
//! queue-depth high-water marks. A [`Recorder`] is plumbed through the
//! engine, index, container store, and chunker; everything it records can
//! be exported as a human table, a machine-readable JSON snapshot, or a
//! `chrome://tracing`-compatible NDJSON event stream.
//!
//! # Zero-cost when disabled
//!
//! Every recording entry point first performs one relaxed atomic load of
//! the enabled flag and returns immediately when it is off — no clock
//! reads, no allocation, no locks. [`Recorder::start`] returns `None` when
//! disabled so callers skip their `Instant::now()` too. The
//! `overhead_guard` test enforces a generous per-op budget on the disabled
//! path so a regression (an accidental mutex or allocation) fails CI.
//!
//! # Determinism
//!
//! The recorder only *observes*: no code path consults it to make a
//! decision, so enabling observability cannot perturb the serial ↔
//! parallel determinism contract (the differential suite runs with it
//! enabled to prove this).
//!
//! [`SessionReport`]: https://docs.rs/aadedupe-metrics

pub mod hist;
pub mod json;
pub mod sampler;
pub mod series;
pub mod snapshot;
pub mod trace;

pub use hist::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS};
pub use sampler::{Sampler, SamplerConfig, SamplerCore, SamplerProbe};
pub use series::{
    AppInterval, QueuePoint, SamplePoint, Scope, TimeSeries, METRICS_SCHEMA_VERSION,
};
pub use snapshot::{
    AppIndexSnapshot, QueueSnapshot, Snapshot, StageSnapshot, WorkerSnapshot,
    STATS_SCHEMA_VERSION,
};
pub use trace::{TraceEvent, TraceSink};

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The instrumented stages of the backup pipeline, in dataflow order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Stage {
    /// File-type / application classification.
    Classify,
    /// Chunk boundary production (per chunk).
    Chunk,
    /// Fingerprint computation (per chunk).
    Hash,
    /// Index partition lookup (per chunk).
    Index,
    /// Appending a unique chunk to its stream's open container.
    ContainerAppend,
    /// Sealing a full (or end-of-session) container.
    ContainerSeal,
    /// Packing one tiny file (the size-filter bypass path).
    TinyPack,
    /// Shipping sealed containers, the manifest, and index snapshots.
    Upload,
    /// Downloading (and parsing) one container during a restore.
    RestoreFetch,
    /// Verifying the referenced chunks of one fetched container.
    RestoreVerify,
    /// Reassembling one file from cached containers, in manifest order.
    RestoreAssemble,
    /// Vacuum: fetching manifests/containers and computing live ratios.
    VacuumAnalyze,
    /// Vacuum: repacking surviving chunks into fresh containers.
    VacuumRewrite,
    /// Vacuum: the crash-ordered commit (puts, snapshot, deletes).
    VacuumCommit,
}

impl Stage {
    /// Every stage, in dataflow order.
    pub const ALL: [Stage; 14] = [
        Stage::Classify,
        Stage::Chunk,
        Stage::Hash,
        Stage::Index,
        Stage::ContainerAppend,
        Stage::ContainerSeal,
        Stage::TinyPack,
        Stage::Upload,
        Stage::RestoreFetch,
        Stage::RestoreVerify,
        Stage::RestoreAssemble,
        Stage::VacuumAnalyze,
        Stage::VacuumRewrite,
        Stage::VacuumCommit,
    ];

    /// Stable snake_case name (the JSON key).
    pub const fn name(self) -> &'static str {
        match self {
            Stage::Classify => "classify",
            Stage::Chunk => "chunk",
            Stage::Hash => "hash",
            Stage::Index => "index",
            Stage::ContainerAppend => "container_append",
            Stage::ContainerSeal => "container_seal",
            Stage::TinyPack => "tiny_pack",
            Stage::Upload => "upload",
            Stage::RestoreFetch => "restore_fetch",
            Stage::RestoreVerify => "restore_verify",
            Stage::RestoreAssemble => "restore_assemble",
            Stage::VacuumAnalyze => "vacuum_analyze",
            Stage::VacuumRewrite => "vacuum_rewrite",
            Stage::VacuumCommit => "vacuum_commit",
        }
    }
}

/// Monotonic counters with stable names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Files classified by the size filter / classifier.
    FilesClassified,
    /// Chunks produced by content-defined chunking.
    ChunksCdc,
    /// Chunks produced by static (fixed-size) chunking.
    ChunksSc,
    /// Chunks produced by whole-file chunking.
    ChunksWfc,
    /// Bytes that passed through a chunker.
    ChunkBytes,
    /// Index lookups that the storage model charged a disk probe for.
    IndexDiskProbes,
    /// Negative index lookups answered by the existence filter with zero
    /// disk probes (disk-backed partitions only).
    FilterHits,
    /// Index lookups the existence filter passed that then found nothing
    /// on disk — its false positives (disk-backed partitions only).
    FilterFalsePositives,
    /// Chunks appended to containers (unique chunks + tiny payloads).
    ContainerAppends,
    /// Containers sealed.
    ContainersSealed,
    /// Serialized bytes of sealed containers.
    SealedBytes,
    /// Tiny files packed (read + appended).
    TinyPacked,
    /// Tiny files carried forward by reference (unchanged since last
    /// session; no bytes moved).
    TinyCarried,
    /// Objects uploaded to the cloud namespace.
    UploadObjects,
    /// Bytes uploaded to the cloud namespace.
    UploadBytes,
    /// Upload attempts retried after a transient backend failure.
    UploadRetries,
    /// Uploads abandoned (permanent failure, attempts or budget exhausted).
    UploadGiveups,
    /// Unreferenced containers garbage-collected on engine open (crash
    /// leftovers from sessions whose manifest never committed).
    OrphansSwept,
    /// Restore downloads retried after a transient backend failure.
    RestoreRetries,
    /// Restore downloads abandoned (permanent failure, attempts or budget
    /// exhausted).
    RestoreGiveups,
    /// Bytes read from the source dataset into the pipeline (big files at
    /// chunk time, tiny files at pack time; carried-forward tiny files move
    /// no bytes and are not counted).
    SourceBytes,
    /// Unique chunk payload bytes appended to containers (post-dedup,
    /// pre-container framing) — the live numerator of the stored side of
    /// the dedup ratio.
    StoredBytes,
    /// Bytes assembled into restored files.
    RestoredBytes,
    /// Containers rewritten (repacked into fresh ids) by vacuum.
    ContainersRewritten,
    /// Stored bytes reclaimed by vacuum (old containers minus rewrites).
    BytesReclaimed,
}

impl Counter {
    /// Every counter.
    pub const ALL: [Counter; 25] = [
        Counter::FilesClassified,
        Counter::ChunksCdc,
        Counter::ChunksSc,
        Counter::ChunksWfc,
        Counter::ChunkBytes,
        Counter::IndexDiskProbes,
        Counter::FilterHits,
        Counter::FilterFalsePositives,
        Counter::ContainerAppends,
        Counter::ContainersSealed,
        Counter::SealedBytes,
        Counter::TinyPacked,
        Counter::TinyCarried,
        Counter::UploadObjects,
        Counter::UploadBytes,
        Counter::UploadRetries,
        Counter::UploadGiveups,
        Counter::OrphansSwept,
        Counter::RestoreRetries,
        Counter::RestoreGiveups,
        Counter::SourceBytes,
        Counter::StoredBytes,
        Counter::RestoredBytes,
        Counter::ContainersRewritten,
        Counter::BytesReclaimed,
    ];

    /// Stable snake_case name (the JSON key).
    pub const fn name(self) -> &'static str {
        match self {
            Counter::FilesClassified => "files_classified",
            Counter::ChunksCdc => "chunks_cdc",
            Counter::ChunksSc => "chunks_sc",
            Counter::ChunksWfc => "chunks_wfc",
            Counter::ChunkBytes => "chunk_bytes",
            Counter::IndexDiskProbes => "index_disk_probes",
            Counter::FilterHits => "filter_hits",
            Counter::FilterFalsePositives => "filter_false_positives",
            Counter::ContainerAppends => "container_appends",
            Counter::ContainersSealed => "containers_sealed",
            Counter::SealedBytes => "sealed_bytes",
            Counter::TinyPacked => "tiny_packed",
            Counter::TinyCarried => "tiny_carried",
            Counter::UploadObjects => "upload_objects",
            Counter::UploadBytes => "upload_bytes",
            Counter::UploadRetries => "upload_retries",
            Counter::UploadGiveups => "upload_giveups",
            Counter::OrphansSwept => "orphans_swept",
            Counter::RestoreRetries => "restore_retries",
            Counter::RestoreGiveups => "restore_giveups",
            Counter::SourceBytes => "source_bytes",
            Counter::StoredBytes => "stored_bytes",
            Counter::RestoredBytes => "restored_bytes",
            Counter::ContainersRewritten => "containers_rewritten",
            Counter::BytesReclaimed => "bytes_reclaimed",
        }
    }
}

/// The parallel pipeline's bounded channels, tracked as depth gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Queue {
    /// Feeder → chunk+hash workers job queue.
    Jobs,
    /// Workers → per-application dedup shards (aggregated over shards).
    Shards,
    /// Shards/tiny-packer → single-writer appender backlog.
    Appender,
    /// Containers resident in the restore assembler's bounded cache — the
    /// high-water mark proves the O(cache) restore memory bound.
    RestoreCache,
}

impl Queue {
    /// Every queue.
    pub const ALL: [Queue; 4] =
        [Queue::Jobs, Queue::Shards, Queue::Appender, Queue::RestoreCache];

    /// Stable snake_case name (the JSON key).
    pub const fn name(self) -> &'static str {
        match self {
            Queue::Jobs => "jobs",
            Queue::Shards => "shards",
            Queue::Appender => "appender",
            Queue::RestoreCache => "restore_cache",
        }
    }
}

/// Which pipeline thread a busy/idle report describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WorkerRole {
    /// A chunk+hash worker.
    Chunker,
    /// A per-application dedup shard.
    Shard,
    /// The single-writer container appender.
    Appender,
    /// A restore fetch/parse/verify worker.
    Restorer,
}

impl WorkerRole {
    /// Stable name.
    pub const fn name(self) -> &'static str {
        match self {
            WorkerRole::Chunker => "chunker",
            WorkerRole::Shard => "shard",
            WorkerRole::Appender => "appender",
            WorkerRole::Restorer => "restorer",
        }
    }
}

/// Highest application tag the per-app hit/miss table covers (AA-Dedupe
/// uses tags 1..=13).
pub const MAX_APP_TAG: usize = 32;

#[derive(Debug, Default)]
struct QueueGauge {
    depth: AtomicI64,
    hwm: AtomicI64,
    /// Pops that arrived while the gauge was already at zero. Concurrent
    /// producers and consumers can interleave push/pop arbitrarily, so the
    /// gauge saturates instead of going negative, and the mismatch is
    /// counted here rather than corrupting the depth.
    underflow: AtomicU64,
}

/// One thread's accumulated busy/idle time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WorkerTime {
    role: WorkerRole,
    id: usize,
    busy: Duration,
    idle: Duration,
}

/// The metrics sink every instrumented component records into.
///
/// Cheap to share (`Arc<Recorder>`); all methods take `&self` and are
/// thread-safe. Counters and histograms accumulate over the recorder's
/// lifetime — callers wanting per-session figures take a [`Snapshot`]
/// before and after and subtract.
pub struct Recorder {
    enabled: AtomicBool,
    tracing: AtomicBool,
    epoch: Instant,
    stages: [Histogram; Stage::ALL.len()],
    counters: [AtomicU64; Counter::ALL.len()],
    app_hits: [AtomicU64; MAX_APP_TAG],
    app_misses: [AtomicU64; MAX_APP_TAG],
    app_labels: Mutex<Vec<(u8, String)>>,
    queues: [QueueGauge; Queue::ALL.len()],
    workers: Mutex<Vec<WorkerTime>>,
    trace: TraceSink,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .field("tracing", &self.is_tracing())
            .finish_non_exhaustive()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    fn with_enabled(enabled: bool) -> Self {
        Recorder {
            enabled: AtomicBool::new(enabled),
            tracing: AtomicBool::new(false),
            epoch: Instant::now(),
            stages: std::array::from_fn(|_| Histogram::new()),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            app_hits: std::array::from_fn(|_| AtomicU64::new(0)),
            app_misses: std::array::from_fn(|_| AtomicU64::new(0)),
            app_labels: Mutex::new(Vec::new()),
            queues: std::array::from_fn(|_| QueueGauge::default()),
            workers: Mutex::new(Vec::new()),
            trace: TraceSink::default(),
        }
    }

    /// An enabled recorder.
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// A disabled recorder — every recording call is a no-op after one
    /// relaxed atomic load.
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    /// Shared enabled recorder.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Shared disabled recorder (the default everywhere).
    pub fn shared_disabled() -> Arc<Self> {
        Arc::new(Self::disabled())
    }

    /// Turns recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Relaxed);
    }

    /// Turns recording off (tracing too).
    pub fn disable(&self) {
        self.enabled.store(false, Relaxed);
        self.tracing.store(false, Relaxed);
    }

    /// Whether metrics are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Additionally buffer chrome-trace events (implies enabled).
    pub fn enable_tracing(&self) {
        self.enabled.store(true, Relaxed);
        self.tracing.store(true, Relaxed);
    }

    /// Whether trace events are being buffered.
    pub fn is_tracing(&self) -> bool {
        self.tracing.load(Relaxed)
    }

    /// Starts a stage/trace timer: `Some(now)` when enabled, `None` when
    /// disabled — so disabled callers never read the clock.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.is_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Records the elapsed time of a timer obtained from
    /// [`Recorder::start`] into `stage`'s histogram.
    #[inline]
    pub fn record(&self, stage: Stage, started: Option<Instant>) {
        if let Some(t) = started {
            self.record_duration(stage, t.elapsed());
        }
    }

    /// Records an externally measured duration into `stage`'s histogram.
    #[inline]
    pub fn record_duration(&self, stage: Stage, d: Duration) {
        if self.is_enabled() {
            // aalint: allow(panic-path) -- Stage discriminants index an array with one slot per variant
            self.stages[stage as usize].record(d.as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn count(&self, counter: Counter, n: u64) {
        if self.is_enabled() {
            // aalint: allow(panic-path) -- Counter discriminants index an array with one slot per variant
            self.counters[counter as usize].fetch_add(n, Relaxed);
        }
    }

    /// Registers a human-readable label for an application tag (idempotent;
    /// used by the snapshot exports).
    pub fn label_app(&self, tag: u8, label: impl Into<String>) {
        let mut g = self.app_labels.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if !g.iter().any(|(t, _)| *t == tag) {
            g.push((tag, label.into()));
        }
    }

    /// Records one index lookup outcome for an application partition.
    #[inline]
    pub fn index_outcome(&self, tag: u8, hit: bool) {
        if self.is_enabled() {
            let slot = (tag as usize).min(MAX_APP_TAG - 1);
            let table = if hit { &self.app_hits } else { &self.app_misses };
            // aalint: allow(panic-path) -- slot is clamped to MAX_APP_TAG - 1
            table[slot].fetch_add(1, Relaxed);
        }
    }

    /// Notes one item entering a queue (call *before* the blocking send, so
    /// the high-water mark counts producers waiting on a full channel).
    #[inline]
    pub fn queue_push(&self, q: Queue) {
        if self.is_enabled() {
            // aalint: allow(panic-path) -- Queue discriminants index an array with one slot per variant
            let g = &self.queues[q as usize];
            let depth = g.depth.fetch_add(1, Relaxed) + 1;
            g.hwm.fetch_max(depth, Relaxed);
        }
    }

    /// Notes one item leaving a queue. Saturates at zero: a pop that races
    /// ahead of its matching push (or a caller bug) increments the gauge's
    /// underflow counter instead of driving the depth negative — a negative
    /// depth would poison every later high-water reading.
    #[inline]
    pub fn queue_pop(&self, q: Queue) {
        if self.is_enabled() {
            // aalint: allow(panic-path) -- Queue discriminants index an array with one slot per variant
            let g = &self.queues[q as usize];
            if g.depth.fetch_update(Relaxed, Relaxed, |d| (d > 0).then(|| d - 1)).is_err() {
                g.underflow.fetch_add(1, Relaxed);
            }
        }
    }

    /// Reports a pipeline thread's accumulated busy/idle split (called once
    /// per thread at exit).
    pub fn worker_report(&self, role: WorkerRole, id: usize, busy: Duration, idle: Duration) {
        if self.is_enabled() {
            self.workers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(WorkerTime { role, id, busy, idle });
        }
    }

    /// Starts a trace timer: `Some(now)` only when tracing is on.
    #[inline]
    pub fn trace_start(&self) -> Option<Instant> {
        if self.is_tracing() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Buffers a complete trace event for a timer from
    /// [`Recorder::trace_start`].
    pub fn trace_complete(&self, name: &'static str, started: Option<Instant>) {
        let Some(t) = started else { return };
        if !self.is_tracing() {
            return;
        }
        let ts_ns = t.duration_since(self.epoch).as_nanos().min(u64::MAX as u128) as u64;
        let dur_ns = t.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.trace.push(TraceEvent { name, ts_ns, dur_ns, tid: self.trace.tid() });
    }

    /// Takes every buffered trace event, ordered by start time.
    pub fn drain_trace(&self) -> Vec<TraceEvent> {
        self.trace.drain()
    }

    /// Writes the buffered trace as NDJSON (one chrome-trace complete event
    /// per line), draining the buffer.
    pub fn write_trace_ndjson(&self, out: &mut dyn std::io::Write) -> std::io::Result<()> {
        for ev in self.drain_trace() {
            writeln!(out, "{}", ev.to_json())?;
        }
        Ok(())
    }

    /// Point-in-time copy of every metric. Safe to call while other
    /// threads record; each histogram snapshot is internally consistent
    /// (its count is the sum of its buckets).
    pub fn snapshot(&self) -> Snapshot {
        let labels = self.app_labels.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
        let label_of = |tag: u8| {
            labels
                .iter()
                .find(|(t, _)| *t == tag)
                .map_or_else(|| format!("app_{tag:02}"), |(_, l)| l.clone())
        };
        let mut apps = Vec::new();
        for tag in 0..MAX_APP_TAG {
            // aalint: allow(panic-path) -- tag ranges over 0..MAX_APP_TAG = app_hits.len()
            let hits = self.app_hits[tag].load(Relaxed);
            // aalint: allow(panic-path) -- tag ranges over 0..MAX_APP_TAG = app_misses.len()
            let misses = self.app_misses[tag].load(Relaxed);
            if hits > 0 || misses > 0 {
                apps.push(AppIndexSnapshot { tag: tag as u8, label: label_of(tag as u8), hits, misses });
            }
        }
        let mut workers: Vec<WorkerSnapshot> = self
            .workers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|w| WorkerSnapshot {
                role: w.role,
                id: w.id,
                busy_ns: w.busy.as_nanos().min(u64::MAX as u128) as u64,
                idle_ns: w.idle.as_nanos().min(u64::MAX as u128) as u64,
            })
            .collect();
        workers.sort_by_key(|w| (w.role, w.id));
        Snapshot {
            stages: Stage::ALL
                .iter()
                // aalint: allow(panic-path) -- Stage discriminants index an array with one slot per variant
                .map(|&s| StageSnapshot { stage: s, hist: self.stages[s as usize].snapshot() })
                .collect(),
            counters: Counter::ALL
                .iter()
                // aalint: allow(panic-path) -- Counter discriminants index an array with one slot per variant
                .map(|&c| (c, self.counters[c as usize].load(Relaxed)))
                .collect(),
            apps,
            queues: Queue::ALL
                .iter()
                .map(|&q| {
                    // aalint: allow(panic-path) -- Queue discriminants index an array with one slot per variant
                    let g = &self.queues[q as usize];
                    QueueSnapshot {
                        queue: q,
                        depth: g.depth.load(Relaxed).max(0) as u64,
                        hwm: g.hwm.load(Relaxed).max(0) as u64,
                        underflow: g.underflow.load(Relaxed),
                    }
                })
                .collect(),
            workers,
        }
    }

    /// Zeroes every metric and drops buffered trace events. Labels and the
    /// enabled/tracing flags are kept.
    pub fn reset(&self) {
        for h in &self.stages {
            h.reset();
        }
        for c in &self.counters {
            c.store(0, Relaxed);
        }
        for t in self.app_hits.iter().chain(&self.app_misses) {
            t.store(0, Relaxed);
        }
        for q in &self.queues {
            q.depth.store(0, Relaxed);
            q.hwm.store(0, Relaxed);
            q.underflow.store(0, Relaxed);
        }
        self.workers.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
        self.trace.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::disabled();
        assert_eq!(r.start(), None);
        r.record(Stage::Chunk, r.start());
        r.record_duration(Stage::Hash, Duration::from_millis(5));
        r.count(Counter::ChunkBytes, 100);
        r.index_outcome(1, true);
        r.queue_push(Queue::Jobs);
        r.worker_report(WorkerRole::Chunker, 0, Duration::from_secs(1), Duration::ZERO);
        r.trace_complete("x", r.trace_start());
        let s = r.snapshot();
        assert_eq!(s.stage(Stage::Chunk).hist.count, 0);
        assert_eq!(s.counter(Counter::ChunkBytes), 0);
        assert!(s.apps.is_empty());
        assert!(s.workers.is_empty());
        assert_eq!(s.queue(Queue::Jobs).hwm, 0);
        assert!(r.drain_trace().is_empty());
    }

    #[test]
    fn enabled_recorder_accumulates_everything() {
        let r = Recorder::new();
        r.record(Stage::Chunk, r.start());
        r.record_duration(Stage::Chunk, Duration::from_micros(3));
        r.count(Counter::ChunksCdc, 2);
        r.index_outcome(5, true);
        r.index_outcome(5, false);
        r.index_outcome(5, false);
        r.label_app(5, "rar");
        r.queue_push(Queue::Appender);
        r.queue_push(Queue::Appender);
        r.queue_pop(Queue::Appender);
        r.worker_report(WorkerRole::Shard, 4, Duration::from_millis(2), Duration::from_millis(1));
        let s = r.snapshot();
        assert_eq!(s.stage(Stage::Chunk).hist.count, 2);
        assert_eq!(s.counter(Counter::ChunksCdc), 2);
        let app = &s.apps[0];
        assert_eq!((app.tag, app.label.as_str(), app.hits, app.misses), (5, "rar", 1, 2));
        assert_eq!(s.queue(Queue::Appender).hwm, 2);
        assert_eq!(s.queue(Queue::Appender).depth, 1);
        assert_eq!(s.workers[0].role, WorkerRole::Shard);
        r.reset();
        assert_eq!(r.snapshot().counter(Counter::ChunksCdc), 0);
    }

    #[test]
    fn tracing_buffers_complete_events() {
        let r = Recorder::new();
        assert!(r.trace_start().is_none(), "tracing off by default");
        r.enable_tracing();
        let t = r.trace_start();
        std::thread::sleep(Duration::from_millis(1));
        r.trace_complete("span", t);
        let evs = r.drain_trace();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "span");
        assert!(evs[0].dur_ns >= 1_000_000);
    }
}
