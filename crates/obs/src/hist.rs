//! Thread-safe latency histogram with log2 buckets.
//!
//! Bucket layout (values are nanoseconds):
//!
//! * bucket 0 — the value `0` exactly;
//! * bucket `b` for `1 <= b < BUCKETS-1` — the half-open range
//!   `[2^(b-1), 2^b)`;
//! * bucket `BUCKETS-1` — the overflow range `[2^(BUCKETS-2), ∞)`.
//!
//! With `BUCKETS = 40` the last finite edge is `2^38` ns ≈ 4.6 minutes,
//! far beyond any single pipeline stage. Recording is three relaxed
//! atomic ops (bucket, total, max); the observed count of a histogram is
//! *defined* as the sum of its bucket counts, so a snapshot taken while
//! other threads record is always internally consistent — there is no
//! separate count field that could lag the buckets.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of log2 buckets (including the zero bucket and the overflow
/// bucket).
pub const BUCKETS: usize = 40;

/// The bucket a nanosecond value falls into.
pub fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        ((64 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive lower bound and exclusive upper bound of a bucket; the
/// overflow bucket has no upper bound.
pub fn bucket_bounds(bucket: usize) -> (u64, Option<u64>) {
    // aalint: allow(panic-path) -- internal-contract precondition: bucket indices come from bucket_index(), which is < BUCKETS
    assert!(bucket < BUCKETS, "bucket {bucket} out of range");
    match bucket {
        0 => (0, Some(1)),
        b if b == BUCKETS - 1 => (1 << (b - 1), None),
        b => (1 << (b - 1), Some(1 << b)),
    }
}

/// A lock-free log2 latency histogram.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one observation of `ns` nanoseconds.
    pub fn record(&self, ns: u64) {
        // aalint: allow(panic-path) -- bucket_index() returns < BUCKETS = counts.len()
        self.counts[bucket_index(ns)].fetch_add(1, Relaxed);
        self.total_ns.fetch_add(ns, Relaxed);
        self.max_ns.fetch_max(ns, Relaxed);
    }

    /// Consistent point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.counts.iter().map(|c| c.load(Relaxed)).collect();
        HistogramSnapshot {
            count: buckets.iter().sum(),
            total_ns: self.total_ns.load(Relaxed),
            max_ns: self.max_ns.load(Relaxed),
            buckets,
        }
    }

    /// Zeroes every bucket and the total/max accumulators.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Relaxed);
        }
        self.total_ns.store(0, Relaxed);
        self.max_ns.store(0, Relaxed);
    }
}

/// Plain-data copy of a [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded (sum of `buckets`).
    pub count: u64,
    /// Sum of all recorded values, nanoseconds.
    pub total_ns: u64,
    /// Largest recorded value, nanoseconds.
    pub max_ns: u64,
    /// Per-bucket observation counts (see module docs for edges).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean recorded value in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Non-empty `(bucket_index, count)` pairs — the sparse form used by
    /// the JSON export.
    pub fn occupied(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().copied().enumerate().filter(|&(_, n)| n > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        for b in 1..BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(b);
            assert_eq!(bucket_index(lo), b, "lower edge of bucket {b}");
            assert_eq!(bucket_index(hi.unwrap() - 1), b, "upper edge of bucket {b}");
            assert_ne!(bucket_index(hi.unwrap()), b, "exclusive upper bound of {b}");
        }
    }

    #[test]
    fn overflow_bucket_catches_everything_above_the_last_edge() {
        let (lo, hi) = bucket_bounds(BUCKETS - 1);
        assert_eq!(hi, None);
        assert_eq!(bucket_index(lo), BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(lo);
        assert_eq!(h.snapshot().buckets[BUCKETS - 1], 2);
    }

    #[test]
    fn count_is_bucket_sum_and_stats_accumulate() {
        let h = Histogram::new();
        for v in [0u64, 1, 7, 7, 1 << 20] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.count, s.buckets.iter().sum::<u64>());
        assert_eq!(s.total_ns, 15 + (1 << 20));
        assert_eq!(s.max_ns, 1 << 20);
        assert!((s.mean_ns() - (s.total_ns as f64 / 5.0)).abs() < 1e-9);
        h.reset();
        assert_eq!(h.snapshot(), HistogramSnapshot { buckets: vec![0; BUCKETS], ..Default::default() });
    }
}
