//! Dimensional time-series storage for the background sampler.
//!
//! A [`TimeSeries`] is a bounded ring buffer of [`SamplePoint`]s — one per
//! sampler tick — labelled by a [`Scope`]: the session id, an optional
//! application tag, and a reserved tenant field. The scope is the
//! *dimension set* of every series the sampler emits; the multi-tenant
//! fleet service (ROADMAP) will key admission-control signals by exactly
//! these labels, so they are first-class here even though a single-client
//! CLI only ever fills the session dimension.
//!
//! Memory is bounded by construction: the ring holds at most `capacity`
//! samples and evicts the oldest on overflow, counting evictions in
//! [`TimeSeries::dropped`] so exports are honest about truncation.

use crate::Queue;
use std::collections::VecDeque;

/// Version of the metrics NDJSON stream layout (header + sample lines).
/// Additive changes (new keys) do not bump this; removals or retypings do.
/// Consumers must tolerate unknown keys.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Dimensional labels attached to a sampler's series.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Scope {
    /// Session identifier (e.g. `backup-00003`, `restore-00001`).
    pub session: String,
    /// Application label for app-scoped series (`None` for pipeline-wide
    /// series; per-app entries inside a sample carry their own label).
    pub app: Option<String>,
    /// Reserved tenant dimension for the fleet-scale service. Always
    /// `None` from the single-client CLI today; serialized when present so
    /// downstream dashboards need no schema change when tenancy lands.
    pub tenant: Option<String>,
}

impl Scope {
    /// A scope labelling one session, with no app or tenant dimension.
    pub fn session(id: impl Into<String>) -> Scope {
        Scope { session: id.into(), app: None, tenant: None }
    }

    /// This scope narrowed to one application label.
    pub fn with_app(&self, app: impl Into<String>) -> Scope {
        Scope { app: Some(app.into()), ..self.clone() }
    }

    /// This scope narrowed to one tenant.
    pub fn with_tenant(&self, tenant: impl Into<String>) -> Scope {
        Scope { tenant: Some(tenant.into()), ..self.clone() }
    }

    /// The canonical series key for `metric` under this scope:
    /// `session=<s>[,app=<a>][,tenant=<t>]|<metric>`. Stable and ordered,
    /// so keys compare and sort deterministically.
    pub fn series_key(&self, metric: &str) -> String {
        let mut key = format!("session={}", self.session);
        if let Some(app) = &self.app {
            key.push_str(&format!(",app={app}"));
        }
        if let Some(tenant) = &self.tenant {
            key.push_str(&format!(",tenant={tenant}"));
        }
        key.push('|');
        key.push_str(metric);
        key
    }

    /// The scope as a JSON object fragment (absent dimensions omitted).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"session\": {}", json_str(&self.session));
        if let Some(app) = &self.app {
            out.push_str(&format!(", \"app\": {}", json_str(app)));
        }
        if let Some(tenant) = &self.tenant {
            out.push_str(&format!(", \"tenant\": {}", json_str(tenant)));
        }
        out.push('}');
        out
    }
}

/// Minimal JSON string escaping for label values (labels are short ASCII
/// identifiers in practice; escaping keeps arbitrary ones well-formed).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One queue gauge at sample time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuePoint {
    /// Which queue.
    pub queue: Queue,
    /// Instantaneous depth at the tick.
    pub depth: u64,
    /// Cumulative high-water mark at the tick.
    pub hwm: u64,
}

/// One application partition's index traffic within a sample interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppInterval {
    /// Application tag.
    pub tag: u8,
    /// Registered label.
    pub label: String,
    /// Index hits within the interval.
    pub hits: u64,
    /// Index misses within the interval.
    pub misses: u64,
}

impl AppInterval {
    /// Hit fraction of the interval's lookups (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One sampler tick: per-interval deltas plus cumulative progress totals.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplePoint {
    /// Tick sequence number (0-based, monotonic, survives ring eviction).
    pub seq: u64,
    /// End of the interval, milliseconds since the sampler's epoch
    /// (`Instant`-based; no wall clock anywhere).
    pub t_ms: u64,
    /// Measured interval length in milliseconds.
    pub dt_ms: u64,
    /// Source bytes read into the pipeline this interval.
    pub source_bytes: u64,
    /// Unique chunk payload bytes stored this interval.
    pub stored_bytes: u64,
    /// Bytes uploaded this interval.
    pub upload_bytes: u64,
    /// Bytes assembled into restored files this interval.
    pub restored_bytes: u64,
    /// Upload + restore retries this interval.
    pub retries: u64,
    /// Cumulative source bytes since the sampler started.
    pub cum_source_bytes: u64,
    /// Cumulative stored bytes since the sampler started.
    pub cum_stored_bytes: u64,
    /// Cumulative restored bytes since the sampler started.
    pub cum_restored_bytes: u64,
    /// Every queue gauge at the tick (depth + high-water).
    pub queues: Vec<QueuePoint>,
    /// Per-application index traffic within the interval (only apps with
    /// traffic; each entry is an app-dimensioned series under the scope).
    pub apps: Vec<AppInterval>,
}

impl SamplePoint {
    fn rate(bytes: u64, dt_ms: u64) -> f64 {
        if dt_ms == 0 {
            0.0
        } else {
            bytes as f64 * 1000.0 / dt_ms as f64
        }
    }

    /// Source-read throughput over the interval, bytes/s.
    pub fn source_bps(&self) -> f64 {
        Self::rate(self.source_bytes, self.dt_ms)
    }

    /// Stored-payload throughput over the interval, bytes/s.
    pub fn stored_bps(&self) -> f64 {
        Self::rate(self.stored_bytes, self.dt_ms)
    }

    /// Upload throughput over the interval, bytes/s.
    pub fn upload_bps(&self) -> f64 {
        Self::rate(self.upload_bytes, self.dt_ms)
    }

    /// Restore throughput over the interval, bytes/s.
    pub fn restored_bps(&self) -> f64 {
        Self::rate(self.restored_bytes, self.dt_ms)
    }

    /// Running dedup ratio: cumulative source over cumulative stored bytes
    /// (1.0 before any bytes moved — nothing read dedups to nothing).
    pub fn dedup_ratio_so_far(&self) -> f64 {
        if self.cum_source_bytes == 0 {
            1.0
        } else if self.cum_stored_bytes == 0 {
            f64::INFINITY
        } else {
            self.cum_source_bytes as f64 / self.cum_stored_bytes as f64
        }
    }

    /// One NDJSON sample line (`"kind": "sample"`).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"kind\": \"sample\", \"seq\": {}, \"t_ms\": {}, \"dt_ms\": {}, \
             \"source_bytes\": {}, \"source_bps\": {:.1}, \
             \"stored_bytes\": {}, \"stored_bps\": {:.1}, \
             \"upload_bytes\": {}, \"upload_bps\": {:.1}, \
             \"restored_bytes\": {}, \"restored_bps\": {:.1}, \
             \"retries\": {}, \"dedup_ratio\": {}, \
             \"cum\": {{\"source_bytes\": {}, \"stored_bytes\": {}, \"restored_bytes\": {}}}",
            self.seq,
            self.t_ms,
            self.dt_ms,
            self.source_bytes,
            self.source_bps(),
            self.stored_bytes,
            self.stored_bps(),
            self.upload_bytes,
            self.upload_bps(),
            self.restored_bytes,
            self.restored_bps(),
            self.retries,
            json_ratio(self.dedup_ratio_so_far()),
            self.cum_source_bytes,
            self.cum_stored_bytes,
            self.cum_restored_bytes,
        );
        out.push_str(", \"queues\": {");
        for (i, q) in self.queues.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{}\": {{\"depth\": {}, \"hwm\": {}}}",
                q.queue.name(),
                q.depth,
                q.hwm
            ));
        }
        out.push_str("}, \"apps\": [");
        for (i, a) in self.apps.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"app\": {}, \"tag\": {}, \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}}",
                json_str(&a.label),
                a.tag,
                a.hits,
                a.misses,
                a.hit_rate()
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Infinity is not valid JSON; the running dedup ratio is unbounded until
/// the first unique byte lands, so encode that state as `null`.
fn json_ratio(r: f64) -> String {
    if r.is_finite() {
        format!("{r:.4}")
    } else {
        "null".into()
    }
}

/// A bounded ring buffer of samples under one scope.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    scope: Scope,
    interval_ms: u64,
    capacity: usize,
    samples: VecDeque<SamplePoint>,
    dropped: u64,
}

impl TimeSeries {
    /// An empty series with the given scope, nominal sampling interval,
    /// and ring capacity (clamped to at least 1).
    pub fn new(scope: Scope, interval_ms: u64, capacity: usize) -> TimeSeries {
        let capacity = capacity.max(1);
        TimeSeries {
            scope,
            interval_ms,
            capacity,
            samples: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
        }
    }

    /// The series' scope.
    pub fn scope(&self) -> &Scope {
        &self.scope
    }

    /// The nominal sampling interval in milliseconds.
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples are held.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends a sample, evicting the oldest when the ring is full.
    pub fn push(&mut self, sample: SamplePoint) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(sample);
    }

    /// The newest sample.
    pub fn latest(&self) -> Option<&SamplePoint> {
        self.samples.back()
    }

    /// Oldest-to-newest iteration.
    pub fn iter(&self) -> impl Iterator<Item = &SamplePoint> {
        self.samples.iter()
    }

    /// The canonical key of one of this series' metrics (scope-labelled).
    pub fn series_key(&self, metric: &str) -> String {
        self.scope.series_key(metric)
    }

    /// The NDJSON header line (`"kind": "header"`): schema version, scope,
    /// nominal interval, ring capacity, and how many samples were evicted.
    pub fn header_json(&self) -> String {
        format!(
            "{{\"schema_version\": {METRICS_SCHEMA_VERSION}, \"kind\": \"header\", \
             \"scope\": {}, \"interval_ms\": {}, \"capacity\": {}, \"dropped\": {}}}",
            self.scope.to_json(),
            self.interval_ms,
            self.capacity,
            self.dropped
        )
    }

    /// The whole series as NDJSON: one header line, then one line per
    /// sample, oldest first.
    pub fn to_ndjson(&self) -> String {
        let mut out = self.header_json();
        out.push('\n');
        for s in &self.samples {
            out.push_str(&s.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes [`TimeSeries::to_ndjson`] to `out`.
    pub fn write_ndjson(&self, out: &mut dyn std::io::Write) -> std::io::Result<()> {
        out.write_all(self.to_ndjson().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample(seq: u64) -> SamplePoint {
        SamplePoint {
            seq,
            t_ms: 250 * (seq + 1),
            dt_ms: 250,
            source_bytes: 1000,
            stored_bytes: 400,
            upload_bytes: 500,
            restored_bytes: 0,
            retries: 0,
            cum_source_bytes: 1000 * (seq + 1),
            cum_stored_bytes: 400 * (seq + 1),
            cum_restored_bytes: 0,
            queues: vec![QueuePoint { queue: Queue::Jobs, depth: 2, hwm: 5 }],
            apps: vec![AppInterval { tag: 7, label: "pdf".into(), hits: 3, misses: 1 }],
        }
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let mut ts = TimeSeries::new(Scope::session("s"), 250, 4);
        for seq in 0..10 {
            ts.push(sample(seq));
        }
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.dropped(), 6);
        // Oldest survivors are the newest four, in order.
        let seqs: Vec<u64> = ts.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(ts.latest().map(|s| s.seq), Some(9));
    }

    #[test]
    fn scope_series_keys_are_canonical() {
        let base = Scope::session("backup-00001");
        assert_eq!(base.series_key("source_bps"), "session=backup-00001|source_bps");
        let app = base.with_app("pdf");
        assert_eq!(app.series_key("hit_rate"), "session=backup-00001,app=pdf|hit_rate");
        let tenant = app.with_tenant("t42");
        assert_eq!(
            tenant.series_key("hit_rate"),
            "session=backup-00001,app=pdf,tenant=t42|hit_rate"
        );
    }

    #[test]
    fn ndjson_round_trips_through_the_json_reader() {
        let mut ts = TimeSeries::new(Scope::session("s-0").with_tenant("acme"), 250, 8);
        ts.push(sample(0));
        ts.push(sample(1));
        let docs = json::parse_ndjson(&ts.to_ndjson()).expect("NDJSON parses");
        assert_eq!(docs.len(), 3);
        let header = &docs[0];
        assert_eq!(header.get("kind").as_str(), Some("header"));
        assert_eq!(
            header.get("schema_version").as_u64(),
            Some(u64::from(METRICS_SCHEMA_VERSION))
        );
        assert_eq!(header.get("scope").get("session").as_str(), Some("s-0"));
        assert_eq!(header.get("scope").get("tenant").as_str(), Some("acme"));
        let s = &docs[1];
        assert_eq!(s.get("kind").as_str(), Some("sample"));
        assert_eq!(s.get("source_bytes").as_u64(), Some(1000));
        assert_eq!(s.get("source_bps").as_f64(), Some(4000.0));
        assert_eq!(s.get("queues").get("jobs").get("hwm").as_u64(), Some(5));
        assert_eq!(s.get("apps").at(0).get("app").as_str(), Some("pdf"));
        assert_eq!(s.get("apps").at(0).get("hit_rate").as_f64(), Some(0.75));
        assert_eq!(s.get("dedup_ratio").as_f64(), Some(2.5));
    }

    #[test]
    fn unbounded_dedup_ratio_serializes_as_null() {
        let mut s = sample(0);
        s.cum_stored_bytes = 0;
        let doc = json::parse(&s.to_json()).expect("sample parses");
        assert_eq!(doc.get("dedup_ratio"), &json::Value::Null);
    }
}
