//! A minimal JSON reader for validating the observability exports.
//!
//! The workspace is offline (no serde); snapshots and trace events are
//! *written* by hand-formatted strings, and this parser closes the loop so
//! tests and tools can check the output actually parses and reach into it
//! (`value.get("stages").get("chunk").get("count").as_u64()`). It accepts
//! strict JSON; numbers are held as `f64`, which is exact for every
//! counter the exporter emits below 2^53.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object (or `Null` if absent / not an object).
    pub fn get(&self, key: &str) -> &Value {
        match self {
            Value::Obj(m) => m.get(key).unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }

    /// Element of an array.
    pub fn at(&self, i: usize) -> &Value {
        match self {
            Value::Arr(v) => v.get(i).unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object's map, if it is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array's elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse error for one line of an NDJSON stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NdjsonError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// The underlying document parse error.
    pub inner: ParseError,
}

impl fmt::Display for NdjsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NDJSON line {}: {}", self.line, self.inner)
    }
}

impl std::error::Error for NdjsonError {}

/// Parses an NDJSON stream (one JSON document per line; blank lines are
/// skipped — a truncated final line is an error, not silently dropped).
pub fn parse_ndjson(input: &str) -> Result<Vec<Value>, NdjsonError> {
    let mut docs = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        docs.push(parse(line).map_err(|inner| NdjsonError { line: i + 1, inner })?);
    }
    Ok(docs)
}

/// Parses one JSON document, requiring it to span the whole input.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let b = input.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.i, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn lit(&mut self, s: &str, v: Value) -> Result<Value, ParseError> {
        // aalint: allow(panic-path) -- i <= b.len() always; slicing from i is at worst the empty tail
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek().ok_or_else(|| self.err("unexpected end of input"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.lit("true", Value::Bool(true)),
            b'f' => self.lit("false", Value::Bool(false)),
            b'n' => self.lit("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            m.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.i += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.i += 1;
                    let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.i += 1;
                    match c {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err(self.err("short \\u escape"));
                            }
                            // aalint: allow(panic-path) -- i + 4 <= b.len() was checked above
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.i += 4;
                            // Surrogates are not paired here; the exporter
                            // never emits them.
                            s.push(char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("control character in string")),
                _ => {
                    // Consume one UTF-8 scalar.
                    let start = self.i;
                    self.i += 1;
                    // aalint: allow(panic-path) -- start <= i <= b.len(): i only advances while < b.len()
                    while self.i < self.b.len() && self.b[self.i] & 0xC0 == 0x80 {
                        self.i += 1;
                    }
                    s.push_str(
                        // aalint: allow(panic-path) -- start <= i <= b.len() as above
                        std::str::from_utf8(&self.b[start..self.i])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.i += 1;
        }
        // aalint: allow(panic-path) -- start <= i <= b.len(): i only advances while a digit byte is peeked
        let text = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| ParseError { at: start, msg: "bad number" })?;
        text.parse::<f64>().map(Value::Num).map_err(|_| ParseError { at: start, msg: "bad number" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, {"b": "x\n"}], "t": true, "n": null}"#).unwrap();
        assert_eq!(v.get("a").at(0).as_u64(), Some(1));
        assert_eq!(v.get("a").at(1).as_f64(), Some(2.5));
        assert_eq!(v.get("a").at(2).get("b").as_str(), Some("x\n"));
        assert_eq!(v.get("t"), &Value::Bool(true));
        assert_eq!(v.get("n"), &Value::Null);
        assert_eq!(v.get("missing"), &Value::Null);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2", "{\"a\":01x}"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn unicode_and_escapes_round_trip() {
        let v = parse(r#""café – déjà""#).unwrap();
        assert_eq!(v.as_str(), Some("café – déjà"));
    }
}
