//! Chrome-trace-compatible event collection.
//!
//! When tracing is enabled the recorder buffers complete events
//! (`ph: "X"`) with microsecond timestamps relative to the recorder's
//! epoch. Dumped as NDJSON (one JSON object per line), the stream loads
//! directly into `chrome://tracing` / Perfetto after wrapping the lines
//! in a JSON array — or as-is into any NDJSON-aware tool.

use std::collections::HashMap;
use std::sync::Mutex;
use std::thread::ThreadId;

/// One complete ("X"-phase) trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (span/stage label).
    pub name: &'static str,
    /// Start time, nanoseconds since the recorder's epoch.
    pub ts_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Small integer id of the emitting thread (assigned on first use).
    pub tid: u32,
}

impl TraceEvent {
    /// The event as one chrome-trace JSON object (`ts`/`dur` in
    /// microseconds, as the format requires).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}}}",
            self.name,
            self.ts_ns as f64 / 1e3,
            self.dur_ns as f64 / 1e3,
            self.tid
        )
    }
}

/// Buffered trace sink with a thread-id registry.
#[derive(Debug, Default)]
pub struct TraceSink {
    events: Mutex<Vec<TraceEvent>>,
    tids: Mutex<HashMap<ThreadId, u32>>,
}

impl TraceSink {
    /// The small integer id for the calling thread.
    pub fn tid(&self) -> u32 {
        let mut g = self.tids.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let next = g.len() as u32;
        *g.entry(std::thread::current().id()).or_insert(next)
    }

    /// Buffers one event.
    pub fn push(&self, ev: TraceEvent) {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(ev);
    }

    /// Takes every buffered event, ordered by start time.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut evs = std::mem::take(&mut *self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner));
        evs.sort_by_key(|e| e.ts_ns);
        evs
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_as_chrome_complete_events() {
        let ev = TraceEvent { name: "chunk", ts_ns: 1_500, dur_ns: 42_000, tid: 3 };
        assert_eq!(
            ev.to_json(),
            "{\"name\":\"chunk\",\"ph\":\"X\",\"ts\":1.500,\"dur\":42.000,\"pid\":1,\"tid\":3}"
        );
    }

    #[test]
    fn drain_orders_by_start_and_empties_the_sink() {
        let sink = TraceSink::default();
        sink.push(TraceEvent { name: "b", ts_ns: 20, dur_ns: 1, tid: 0 });
        sink.push(TraceEvent { name: "a", ts_ns: 10, dur_ns: 1, tid: 0 });
        let evs = sink.drain();
        assert_eq!(evs.iter().map(|e| e.name).collect::<Vec<_>>(), ["a", "b"]);
        assert!(sink.is_empty());
    }

    #[test]
    fn tids_are_stable_per_thread() {
        let sink = TraceSink::default();
        let t0 = sink.tid();
        assert_eq!(sink.tid(), t0);
        let other = std::thread::scope(|s| s.spawn(|| sink.tid()).join().unwrap());
        assert_ne!(other, t0);
    }
}
